"""Unit tests for the DSE policy internals: banding, degradation gating,
stop decisions."""

import pytest

from repro.config import SimulationParameters
from repro.core.dqs import DynamicQueryScheduler
from repro.core.fragments import FragmentKind
from repro.core.runtime import QueryRuntime, World
from repro.core.strategies import DsePolicy
from repro.mediator.queues import Message


def make_runtime(qep, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    world = World(params, seed=11)
    for name in qep.source_relations():
        world.cm.register_source(name)
    return QueryRuntime(world, qep)


def set_wait(rt, source, wait, tuples=100):
    """Teach the estimator that ``source`` delivers at ``wait`` s/tuple.

    Keeps the delivered count small so the chains still have plenty of
    undelivered tuples (the degradation guard skips nearly-exhausted
    sources).
    """
    rt.world.cm.estimator(source).on_arrival(
        tuples, production_seconds=wait * tuples)


# --------------------------------------------------------------------------
# Candidate selection and ordering
# --------------------------------------------------------------------------

def test_only_c_schedulable_selected(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1e12)  # degradation off
    policy = DsePolicy()
    names = {f.name for f in policy.select(rt)}
    # Only the dependency-free chains are candidates initially.
    assert names == {"pA", "pE"}


def test_sparse_fragment_outranks_dense(tiny_fig5):
    """A slow (sparse) source's fragment sorts above w_min (dense) ones."""
    rt = make_runtime(tiny_fig5.qep, bmt=1e12)
    set_wait(rt, "A", 500e-6)   # very slow: c/w tiny -> sparse band
    set_wait(rt, "E", 20e-6)    # w_min: dense band
    order = [f.name for f in DsePolicy().select(rt)]
    assert order.index("pA") < order.index("pE")


def test_dense_band_prefers_iterator_order(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1e12)
    set_wait(rt, "A", 20e-6)
    set_wait(rt, "E", 20e-6)
    order = [f.name for f in DsePolicy().select(rt)]
    assert order == ["pA", "pE"]


def test_local_fragments_sort_last(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep)
    chain = tiny_fig5.qep.chain("pB")
    mf = rt.degrade_chain(chain)
    # Finish the MF so the CF exists.
    queue = rt.world.cm.queue("B")
    queue.put(Message(queue.capacity_messages * 0 + 100, eof=True))
    rt.ensure_hash_table(mf)  # no table needed, but harmless

    def run_mf():
        outcome = yield from mf.process_batch(10_000)
        return outcome

    rt.world.sim.process(run_mf())
    rt.world.sim.run()
    rt.advance_degraded_chains()
    # pA must be completed for CF(pB) to be schedulable.
    pa = rt.fragments["pA"]
    rt.ensure_hash_table(pa)
    rt.world.cm.queue("A").put(Message(2000, eof=True))

    def run_pa():
        outcome = yield from pa.process_batch(10_000)
        return outcome

    rt.world.sim.process(run_pa())
    rt.world.sim.run()

    order = [f.name for f in DsePolicy().select(rt)]
    assert order[-1] == "CF(pB)"  # local replay: data always there, last


# --------------------------------------------------------------------------
# Degradation gating
# --------------------------------------------------------------------------

def test_no_degradation_when_not_critical(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep)
    for name in tiny_fig5.relation_names:
        set_wait(rt, name, 2e-6)  # faster than the engine: not critical
    DsePolicy().select(rt)
    assert rt.degraded_chains == set()


def test_no_degradation_below_bmt(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1e12)
    for name in tiny_fig5.relation_names:
        set_wait(rt, name, 100e-6)
    DsePolicy().select(rt)
    assert rt.degraded_chains == set()


def test_degrades_blocked_critical_chains(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1.0)
    for name in tiny_fig5.relation_names:
        set_wait(rt, name, 100e-6)  # slow: critical and bmi >> 1
    policy = DsePolicy()
    policy.select(rt)
    # Non-C-schedulable chains degraded; schedulable ones (pA, pE) not.
    # (pC's relation is smaller than two messages at this scale, so the
    # nearly-exhausted guard correctly skips it.)
    assert "pA" not in rt.degraded_chains
    assert "pE" not in rt.degraded_chains
    assert {"pB", "pF", "pD"} <= rt.degraded_chains


def test_no_degradation_for_nearly_exhausted_source(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1.0)
    # Everything already delivered: nothing left to materialize.
    for name in tiny_fig5.relation_names:
        cardinality = tiny_fig5.catalog.relation(name).cardinality
        set_wait(rt, name, 100e-6, tuples=cardinality)
    DsePolicy().select(rt)
    assert rt.degraded_chains == set()


def test_stop_requested_once_schedulable(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep)
    rt.degrade_chain(tiny_fig5.qep.chain("pB"))
    mf = rt.chain_fragments["pB"][0]
    assert mf.kind is FragmentKind.MATERIALIZATION
    policy = DsePolicy()
    policy.select(rt)
    assert not mf.stop_requested  # pA not complete yet
    rt.completed_chains.add("pA")
    policy.select(rt)
    assert mf.stop_requested


def test_priorities_exposed_for_tracing(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1e12)
    policy = DsePolicy()
    selected = policy.select(rt)
    priorities = policy.priorities(rt)
    assert set(priorities) == {f.name for f in selected}


def test_plan_snapshot_feeds_statistics(tiny_fig5):
    rt = make_runtime(tiny_fig5.qep, bmt=1e12)
    scheduler = DynamicQueryScheduler(rt, DsePolicy())
    scheduler.plan()
    assert len(rt.statistics.rate_history) == 1
