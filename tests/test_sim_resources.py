"""Tests for the resource models: Resource, Store, CPU, Disk, NetworkLink."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import CPU, Disk, NetworkLink, Resource, Store


# --------------------------------------------------------------------------
# Resource
# --------------------------------------------------------------------------

def test_resource_grants_up_to_capacity(sim):
    resource = Resource(sim, capacity=2)
    first = resource.request()
    second = resource.request()
    third = resource.request()
    sim.run()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert resource.queue_length == 1


def test_resource_release_wakes_waiter(sim):
    resource = Resource(sim, capacity=1)
    resource.request()
    waiting = resource.request()
    sim.run()
    assert not waiting.triggered
    resource.release()
    sim.run()
    assert waiting.triggered


def test_resource_release_idle_rejected(sim):
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_fifo_order(sim):
    resource = Resource(sim, capacity=1)
    resource.request()
    waiters = [resource.request() for _ in range(3)]
    resource.release()
    sim.run()
    assert waiters[0].triggered
    assert not waiters[1].triggered


def test_resource_capacity_validation(sim):
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


# --------------------------------------------------------------------------
# Store
# --------------------------------------------------------------------------

def test_store_put_get_fifo(sim):
    store = Store(sim)
    store.put("a")
    store.put("b")
    got = store.get()
    sim.run()
    assert got.value == "a"


def test_store_get_blocks_until_put(sim):
    store = Store(sim)
    got = store.get()
    sim.run()
    assert not got.triggered
    store.put("x")
    sim.run()
    assert got.value == "x"


def test_store_put_blocks_at_capacity(sim):
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    sim.run()
    assert first.triggered
    assert not second.triggered
    store.get()
    sim.run()
    assert second.triggered
    assert list(store.items) == ["b"]


def test_store_handoff_to_waiting_getter(sim):
    store = Store(sim, capacity=1)
    got = store.get()
    store.put("direct")
    sim.run()
    assert got.value == "direct"
    assert len(store) == 0


def test_store_try_get(sim):
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None
    store.put("v")
    ok, item = store.try_get()
    assert ok and item == "v"


# --------------------------------------------------------------------------
# CPU
# --------------------------------------------------------------------------

def test_cpu_work_duration(sim):
    cpu = CPU(sim, mips=100.0)

    def worker():
        yield from cpu.work(1_000_000)  # 1M instructions at 100 MIPS = 10 ms

    sim.process(worker())
    sim.run()
    assert sim.now == pytest.approx(0.01)
    assert cpu.busy_time == pytest.approx(0.01)


def test_cpu_serializes_concurrent_work(sim):
    cpu = CPU(sim, mips=100.0)

    def worker():
        yield from cpu.work(1_000_000)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert sim.now == pytest.approx(0.02)


def test_cpu_utilization(sim):
    cpu = CPU(sim, mips=100.0)

    def worker():
        yield from cpu.work(1_000_000)
        yield sim.timeout(0.01)  # idle period

    sim.process(worker())
    sim.run()
    assert cpu.utilization() == pytest.approx(0.5)


def test_cpu_invalid_mips(sim):
    with pytest.raises(SimulationError):
        CPU(sim, mips=0)


def test_cpu_negative_instructions(sim):
    cpu = CPU(sim, mips=100.0)
    with pytest.raises(SimulationError):
        cpu.seconds_for(-5)


# --------------------------------------------------------------------------
# Disk
# --------------------------------------------------------------------------

def _disk(sim, **overrides):
    settings = dict(latency=17e-3, seek_time=5e-3, transfer_rate=6_000_000,
                    page_size=8192)
    settings.update(overrides)
    return Disk(sim, **settings)


def test_disk_random_access_pays_positioning(sim):
    disk = _disk(sim)

    def worker():
        yield from disk.transfer(extent=1, start_page=0, num_pages=1)

    sim.process(worker())
    sim.run()
    expected = 17e-3 + 5e-3 + 8192 / 6_000_000
    assert sim.now == pytest.approx(expected)
    assert disk.seeks.value == 1


def test_disk_sequential_access_transfer_only(sim):
    disk = _disk(sim)

    def worker():
        yield from disk.transfer(1, 0, 4)
        yield from disk.transfer(1, 4, 4)  # continues where the head is

    sim.process(worker())
    sim.run()
    expected = (17e-3 + 5e-3) + 8 * 8192 / 6_000_000
    assert sim.now == pytest.approx(expected)
    assert disk.seeks.value == 1


def test_disk_interleaved_extents_seek(sim):
    disk = _disk(sim)

    def worker():
        yield from disk.transfer(1, 0, 1)
        yield from disk.transfer(2, 0, 1)
        yield from disk.transfer(1, 1, 1)

    sim.process(worker())
    sim.run()
    assert disk.seeks.value == 3


def test_disk_serializes_requests(sim):
    disk = _disk(sim, latency=0.0, seek_time=0.0)

    def worker():
        yield from disk.transfer(1, 0, 6)

    sim.process(worker())

    def worker2():
        yield from disk.transfer(2, 0, 6)

    sim.process(worker2())
    sim.run()
    assert sim.now == pytest.approx(12 * 8192 / 6_000_000)


def test_disk_zero_pages_rejected(sim):
    disk = _disk(sim)
    with pytest.raises(SimulationError):
        list(disk.transfer(1, 0, 0))


# --------------------------------------------------------------------------
# NetworkLink
# --------------------------------------------------------------------------

def test_link_transmission_time(sim):
    link = NetworkLink(sim, bandwidth=12_500_000)  # 100 Mb/s in bytes

    def worker():
        yield from link.transmit(12_500)

    sim.process(worker())
    sim.run()
    assert sim.now == pytest.approx(0.001)
    assert link.messages.value == 1


def test_link_serializes_messages(sim):
    link = NetworkLink(sim, bandwidth=1000)

    def worker():
        yield from link.transmit(500)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert sim.now == pytest.approx(1.0)


def test_link_negative_size_rejected(sim):
    link = NetworkLink(sim, bandwidth=1000)
    with pytest.raises(SimulationError):
        link.transmission_time(-1)
