"""Tests for memory accounting, hash tables and temp relations."""

import pytest

from repro.common.errors import SimulationError
from repro.config import SimulationParameters
from repro.core.runtime import World
from repro.mediator.buffer import HashTable, MemoryManager


def make_world(**overrides):
    params = SimulationParameters().with_overrides(**overrides)
    return World(params, seed=0)


# --------------------------------------------------------------------------
# MemoryManager
# --------------------------------------------------------------------------

def test_reserve_release_cycle():
    memory = MemoryManager(1000)
    memory.reserve("a", 600)
    assert memory.available_bytes == 400
    assert memory.held_by("a") == 600
    assert memory.release("a") == 600
    assert memory.available_bytes == 1000


def test_would_fit():
    memory = MemoryManager(1000)
    memory.reserve("a", 600)
    assert memory.would_fit(400)
    assert not memory.would_fit(401)


def test_over_reservation_rejected():
    memory = MemoryManager(100)
    with pytest.raises(SimulationError):
        memory.reserve("a", 200)


def test_duplicate_owner_rejected():
    memory = MemoryManager(1000)
    memory.reserve("a", 10)
    with pytest.raises(SimulationError):
        memory.reserve("a", 10)


def test_grow_success_and_failure():
    memory = MemoryManager(100)
    memory.reserve("a", 50)
    assert memory.try_grow("a", 50)
    assert not memory.try_grow("a", 1)
    assert memory.held_by("a") == 100


def test_release_unknown_owner():
    with pytest.raises(SimulationError):
        MemoryManager(100).release("ghost")


def test_peak_tracking():
    memory = MemoryManager(1000)
    memory.reserve("a", 700)
    memory.release("a")
    memory.reserve("b", 300)
    assert memory.peak_bytes == 700


# --------------------------------------------------------------------------
# HashTable
# --------------------------------------------------------------------------

def test_hash_table_reserves_estimate():
    memory = MemoryManager(10_000)
    table = HashTable("J1", memory, tuple_size=40, page_size=100,
                      estimated_tuples=100)
    assert memory.held_by("hash:J1") == 4000
    assert table.insert(100)
    table.seal()
    table.drop()
    assert memory.available_bytes == 10_000


def test_hash_table_grows_beyond_estimate():
    memory = MemoryManager(10_000)
    table = HashTable("J1", memory, tuple_size=40, page_size=100,
                      estimated_tuples=10)
    assert table.insert(50)  # 2000 bytes > 400 reserved; grows in pages
    assert memory.held_by("hash:J1") >= 2000


def test_hash_table_overflow_returns_false():
    memory = MemoryManager(1000)
    table = HashTable("J1", memory, tuple_size=40, page_size=100,
                      estimated_tuples=10)
    assert not table.insert(100)  # needs 4000 bytes, only 1000 exist
    assert table.tuples == 0      # failed insert rolled back


def test_hash_table_insert_after_seal_rejected():
    memory = MemoryManager(1000)
    table = HashTable("J1", memory, tuple_size=40, page_size=100,
                      estimated_tuples=5)
    table.seal()
    with pytest.raises(SimulationError):
        table.insert(1)


# --------------------------------------------------------------------------
# Temp relations: writer
# --------------------------------------------------------------------------

def test_temp_write_and_finish():
    world = make_world()
    writer = world.buffer.create_temp("t1")

    def producer():
        writer.write(1000)
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    temp = writer.temp
    assert temp.sealed
    assert temp.tuples == 1000
    expected_pages = -(-1000 // world.params.tuples_per_page)
    assert temp.pages == expected_pages
    assert world.disk.pages_transferred.value == expected_pages


def test_temp_write_behind_is_asynchronous():
    """write() must not advance the clock; the disk work is background."""
    world = make_world()
    writer = world.buffer.create_temp("t1")
    chunk = world.params.io_chunk_pages * world.params.tuples_per_page

    def producer():
        before = world.sim.now
        writer.write(3 * chunk)
        assert world.sim.now == before  # no time passed synchronously
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    assert world.disk.ios.value == 3


def test_temp_write_after_finish_rejected():
    world = make_world()
    writer = world.buffer.create_temp("t1")

    def producer():
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    with pytest.raises(SimulationError):
        writer.write(1)


def test_temp_double_finish_rejected():
    world = make_world()
    writer = world.buffer.create_temp("t1")

    def producer():
        yield from writer.finish()
        yield from writer.finish()

    proc = world.sim.process(producer())
    proc.defused = True
    world.sim.run()
    assert isinstance(proc.failure, SimulationError)


# --------------------------------------------------------------------------
# Temp relations: reader
# --------------------------------------------------------------------------

def _write_temp(world, tuples):
    writer = world.buffer.create_temp("t1")

    def producer():
        writer.write(tuples)
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    return writer.temp


def test_reader_roundtrip():
    world = make_world()
    temp = _write_temp(world, 5000)
    reader = world.buffer.reader(temp)

    def consumer():
        total = 0
        while not reader.exhausted:
            got = reader.read_now(700)
            if got == 0:
                yield reader.wait_event()
                continue
            total += got
        return total

    proc = world.sim.process(consumer())
    world.sim.run()
    assert proc.value == 5000


def test_reader_never_blocks_synchronously():
    world = make_world()
    temp = _write_temp(world, 5000)
    reader = world.buffer.reader(temp)
    # Nothing prefetched yet: read_now returns 0 instead of waiting.
    assert reader.read_now(100) == 0


def test_reader_unsealed_temp_rejected():
    world = make_world()
    writer = world.buffer.create_temp("t1")
    writer.write(10)
    reader = world.buffer.reader(writer.temp)
    assert not reader.exhausted  # unsealed: more data may come
    with pytest.raises(SimulationError):
        reader.read_now(5)


def test_reader_charges_disk_reads():
    world = make_world()
    temp = _write_temp(world, 5000)
    write_pages = world.disk.pages_transferred.value
    reader = world.buffer.reader(temp)

    def consumer():
        while not reader.exhausted:
            if reader.read_now(10_000) == 0:
                yield reader.wait_event()

    world.sim.process(consumer())
    world.sim.run()
    assert world.disk.pages_transferred.value > write_pages


def test_reader_empty_temp():
    world = make_world()
    temp = _write_temp(world, 0)
    reader = world.buffer.reader(temp)
    assert reader.exhausted


def test_chunk_io_uses_cache():
    world = make_world()
    temp = _write_temp(world, 100)  # 1 chunk, stays in cache after write
    reads_before = world.disk.ios.value
    reader = world.buffer.reader(temp)

    def consumer():
        while not reader.exhausted:
            if reader.read_now(10_000) == 0:
                yield reader.wait_event()

    world.sim.process(consumer())
    world.sim.run()
    # The single page was cached by the write; no disk read needed.
    assert world.disk.ios.value == reads_before
