"""Tests for the reproduction package generator and fragment timelines."""

import csv

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.cli import main
from repro.experiments import generate_all, slowdown_waits


# --------------------------------------------------------------------------
# generate_all
# --------------------------------------------------------------------------

def test_generate_all_writes_every_artifact(tmp_path):
    out = generate_all(tmp_path / "results", scale=0.02)
    names = {p.name for p in out.iterdir()}
    assert names == {"REPORT.txt", "table1.csv", "fig6.csv", "fig7.csv",
                     "fig8.csv", "multiquery.csv"}
    report = (out / "REPORT.txt").read_text()
    for marker in ["Table 1", "Figure 5", "Figure 6", "Figure 7",
                   "Figure 8", "concurrent queries"]:
        assert marker in report


def test_generate_all_csv_series_parse(tmp_path):
    out = generate_all(tmp_path / "r", scale=0.02)
    with (out / "fig6.csv").open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["retrieval_s", "SEQ", "MA", "DSE", "LWB"]
    assert len(rows) == 8  # header + 7 sweep points
    # Every cell is numeric.
    for row in rows[1:]:
        [float(cell) for cell in row]


def test_generate_all_progress_callback(tmp_path):
    steps = []
    generate_all(tmp_path / "r", scale=0.02, progress=steps.append)
    assert steps == ["table1", "fig5", "fig6", "fig7", "fig8",
                     "multiquery", "done"]


def test_cli_reproduce(tmp_path, capsys):
    assert main(["reproduce", "--scale", "0.02",
                 "--outdir", str(tmp_path / "out")]) == 0
    out = capsys.readouterr().out
    assert "written to" in out
    assert (tmp_path / "out" / "REPORT.txt").exists()


# --------------------------------------------------------------------------
# Fragment timelines
# --------------------------------------------------------------------------

def run_dse(workload, waits):
    params = SimulationParameters()
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                       delays, params=params, seed=1).run()


def test_timeline_covers_all_fragments(mini_fig5):
    params = SimulationParameters()
    waits = slowdown_waits(mini_fig5, "F", 1.0, params)
    result = run_dse(mini_fig5, waits)
    stats = result.fragment_stats
    # Every chain has at least its PC fragment recorded.
    chains = {stat.chain for stat in stats.values()}
    assert chains == {c.name for c in mini_fig5.qep.chains}
    # All fragments finished (the query completed).
    assert all(stat.finished_at is not None for stat in stats.values())


def test_timeline_ordering_and_duration(mini_fig5):
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    result = run_dse(mini_fig5, waits)
    timeline = result.timeline()
    starts = [s.started_at for s in timeline if s.started_at is not None]
    assert starts == sorted(starts)
    for stat in timeline:
        if stat.duration is not None:
            assert stat.duration >= 0
        assert stat.cpu_seconds >= 0


def test_timeline_mf_precedes_cf(mini_fig5):
    params = SimulationParameters()
    waits = slowdown_waits(mini_fig5, "F", 1.0, params)
    result = run_dse(mini_fig5, waits)
    stats = result.fragment_stats
    if "MF(pF)" in stats and "CF(pF)" in stats:
        assert stats["MF(pF)"].finished_at <= stats["CF(pF)"].started_at


def test_render_timeline_is_printable(mini_fig5):
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    text = run_dse(mini_fig5, waits).render_timeline()
    assert "fragment" in text.splitlines()[0]
    assert "pA" in text


def test_cpu_seconds_sum_below_busy_time(mini_fig5):
    """Fragment CPU is a subset of total CPU (receive/IO/planning add)."""
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    result = run_dse(mini_fig5, waits)
    fragment_cpu = sum(s.cpu_seconds for s in result.fragment_stats.values())
    assert 0 < fragment_cpu <= result.cpu_busy_time + 1e-9
