"""The live observability plane: /metrics, /healthz, /stream, repro top.

The acceptance behaviour pinned here: scraping ``/metrics`` *mid-flight*
returns valid Prometheus exposition text with per-fragment throughput
series, and the per-cause stall series re-summed in document order
reproduce ``repro_live_stall_time_seconds`` bit-for-bit.
"""

import asyncio
import http.client
import json
import threading

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.config import SimulationParameters
from repro.core.strategies import make_policy
from repro.exec.live import LiveQueryEngine, jittered_batches
from repro.experiments import figure5_workload
from repro.observability import (
    MetricsPublisher,
    build_live_snapshot,
    live_prometheus_text,
)
from repro.observability.top import _parse_endpoint, render_top


# --------------------------------------------------------------------------
# MetricsPublisher
# --------------------------------------------------------------------------

def test_publisher_latest_and_sequence():
    publisher = MetricsPublisher()
    assert publisher.latest() == (None, 0)
    assert publisher.publish({"now": 1.0}) == 1
    assert publisher.publish({"now": 2.0}) == 2
    snapshot, seq = publisher.latest()
    assert seq == 2 and snapshot["now"] == 2.0
    assert snapshot["seq"] == 2  # the published dict carries its seq


def test_publisher_wait_newer_times_out_and_wakes():
    publisher = MetricsPublisher()
    snapshot, seq = publisher.wait_newer(0, timeout=0.01)
    assert snapshot is None and seq == 0

    got = {}

    def waiter():
        got["snapshot"], got["seq"] = publisher.wait_newer(0, timeout=5.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    publisher.publish({"now": 3.0})
    thread.join(timeout=5.0)
    assert got["seq"] == 1 and got["snapshot"]["now"] == 3.0


def test_publisher_close_wakes_waiters_without_a_snapshot():
    publisher = MetricsPublisher()
    got = {}

    def waiter():
        got["snapshot"], got["seq"] = publisher.wait_newer(0, timeout=5.0)

    thread = threading.Thread(target=waiter)
    thread.start()
    publisher.close()
    thread.join(timeout=5.0)
    assert got["snapshot"] is None
    assert publisher.closed


def test_subscription_is_bounded_and_drops_oldest():
    publisher = MetricsPublisher()
    subscription = publisher.subscribe(capacity=3)
    for index in range(5):
        publisher.publish({"now": float(index)})
    # Capacity 3: frames 0 and 1 were dropped, 2..4 remain in order.
    assert subscription.dropped == 2
    assert publisher.dropped_total == 2
    got = [subscription.pop(timeout=0.1)[0]["now"] for _ in range(3)]
    assert got == [2.0, 3.0, 4.0]


def test_late_subscriber_gets_the_latest_frame_pre_queued():
    publisher = MetricsPublisher()
    publisher.publish({"now": 7.0})
    subscription = publisher.subscribe()
    snapshot, seq = subscription.pop(timeout=0.1)
    assert snapshot["now"] == 7.0 and seq == 1
    assert not subscription.finished


def test_subscription_finished_after_close_and_drain():
    publisher = MetricsPublisher()
    subscription = publisher.subscribe(capacity=2)
    publisher.publish({"now": 1.0})
    publisher.close()
    assert not subscription.finished  # one frame still queued
    snapshot, _seq = subscription.pop(timeout=0.1)
    assert snapshot is not None
    assert subscription.finished
    snapshot, _seq = subscription.pop(timeout=0.01)
    assert snapshot is None


def test_closed_subscription_detaches_from_the_publisher():
    publisher = MetricsPublisher()
    subscription = publisher.subscribe(capacity=1)
    subscription.close()
    publisher.publish({"now": 1.0})
    assert subscription.dropped == 0
    assert publisher.dropped_total == 0
    assert subscription.finished


def test_subscription_capacity_must_be_positive():
    publisher = MetricsPublisher()
    with pytest.raises(ValueError):
        publisher.subscribe(capacity=0)


def test_stalled_subscriber_sheds_without_affecting_publisher_or_peers():
    """A slow SSE client only loses *its own* frames (satellite: the
    drop-oldest path under a stalled subscriber, timing-free)."""
    publisher = MetricsPublisher()
    stalled = publisher.subscribe(capacity=3)    # never pops
    healthy = publisher.subscribe(capacity=3)    # keeps up
    seqs = []
    for index in range(10):
        seqs.append(publisher.publish({"now": float(index)}))
        snapshot, _seq = healthy.pop(timeout=0.1)
        assert snapshot["now"] == float(index)
    # publish() returned synchronously every time with increasing seq --
    # the stalled peer exerted no backpressure.
    assert seqs == list(range(1, 11))
    assert healthy.dropped == 0
    assert stalled.dropped == 7          # capacity 3 of 10 frames kept
    assert publisher.dropped_total == 7  # global shed counter
    latest, seq = publisher.latest()
    assert seq == 10 and latest["now"] == 9.0
    # The stalled queue holds exactly the newest three, in order.
    kept = [stalled.pop(timeout=0.1)[0]["now"] for _ in range(3)]
    assert kept == [7.0, 8.0, 9.0]


def test_publish_event_fans_out_without_replacing_the_snapshot():
    """Alert frames reach subscribers but never become ``latest()`` —
    /metrics and late subscribers must keep seeing a *service* snapshot,
    not the last alert."""
    publisher = MetricsPublisher()
    publisher.publish({"kind": "service", "now": 1.0})
    subscription = publisher.subscribe()
    subscription.pop(timeout=0.1)  # drain the pre-queued snapshot
    seq = publisher.publish_event({"kind": "alert", "state": "firing"})
    assert seq == 2
    frame, frame_seq = subscription.pop(timeout=0.1)
    assert frame["kind"] == "alert" and frame_seq == 2
    latest, latest_seq = publisher.latest()
    assert latest["kind"] == "service"  # unchanged by the event
    assert latest_seq == 2              # but the sequence did advance
    late = publisher.subscribe()
    pre_queued, _seq = late.pop(timeout=0.1)
    assert pre_queued["kind"] == "service"


# --------------------------------------------------------------------------
# Exposition text
# --------------------------------------------------------------------------

def test_prometheus_text_before_first_snapshot_is_just_up_zero():
    text = live_prometheus_text(None)
    assert "repro_live_up 0.0" in text
    assert text.endswith("\n")
    assert "repro_live_stall" not in text


def _parse_prometheus(text: str) -> list[tuple[str, float]]:
    samples = []
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name, value = line.rsplit(" ", 1)
        samples.append((name, float(value)))
    return samples


def test_prometheus_text_renders_a_synthetic_snapshot():
    snapshot = {
        "seq": 7, "strategy": "DSE", "now": 1.25, "result_tuples": 10,
        "batches": 42, "context_switches": 3, "decisions": 2,
        "stall_time": 0.5, "stalls": {"source-wait:A": 0.3, "timeout": 0.2},
        "samples": 5,
        "memory": {"used": 1024, "total": 4096, "peak": 2048},
        "fragments": [{"name": "pA", "kind": "MF", "chain": "C1",
                       "status": "running", "tuples_in": 100,
                       "tuples_out": 90, "batches": 4, "throughput": 72.0}],
        "queues": {"A": {"tuples": 12, "messages": 1, "rate": 500.0}},
    }
    samples = dict(_parse_prometheus(live_prometheus_text(snapshot)))
    assert samples["repro_live_up"] == 1.0
    assert samples["repro_live_batches_total"] == 42.0
    assert samples['repro_live_fragment_throughput_tuples_per_second'
                   '{fragment="pA",kind="MF"}'] == 72.0
    assert samples['repro_live_stall_seconds_total{cause="source-wait:A"}'] \
        == 0.3
    assert samples['repro_live_queue_depth_tuples{source="A"}'] == 12.0


# --------------------------------------------------------------------------
# repro top rendering
# --------------------------------------------------------------------------

def test_render_top_without_a_snapshot():
    assert render_top(None) == ["repro top — waiting for first snapshot..."]


def test_render_top_layout():
    snapshot = {
        "strategy": "DSE", "now": 2.5, "result_tuples": 1500,
        "batches": 30, "decisions": 4, "stall_time": 1.25,
        "stalls": {"source-wait:A": 1.0, "timeout": 0.25},
        "memory": {"used": 2e6, "total": 8e6, "peak": 3e6},
        "fragments": [
            {"name": "pA", "kind": "MF", "status": "running",
             "tuples_in": 100, "tuples_out": 90, "batches": 4,
             "throughput": 10.0},
            {"name": "pB", "kind": "MF", "status": "done",
             "tuples_in": 200, "tuples_out": 180, "batches": 8,
             "throughput": 99.0},
        ],
        "queues": {"A": {"tuples": 7, "messages": 1, "rate": 100.0}},
    }
    lines = render_top(snapshot, width=100)
    assert "DSE" in lines[0] and "t=2.50s" in lines[0]
    assert lines[1].startswith("memory [")
    assert "source-wait:A=1.00s" in lines[2]
    table = [line for line in lines if line.startswith(("pA", "pB"))]
    assert table[0].startswith("pB")  # sorted by throughput, descending
    assert any(line.startswith("SOURCE") for line in lines)
    assert all(len(line) <= 100 for line in lines)


def test_write_sse_event_names_alert_frames():
    import io

    from repro.observability.server import write_sse_event

    buffer = io.BytesIO()
    write_sse_event(buffer, {"kind": "alert", "state": "firing"}, 7,
                    event="alert")
    text = buffer.getvalue().decode("utf-8")
    assert text.startswith("event: alert\n")
    assert "id: 7\n" in text
    assert json.loads(text.split("data: ", 1)[1].strip())["state"] \
        == "firing"
    # Unnamed frames stay default `message` events.
    buffer = io.BytesIO()
    write_sse_event(buffer, {"kind": "service"}, 8)
    assert not buffer.getvalue().startswith(b"event:")


# --------------------------------------------------------------------------
# Auto-reconnect (satellite: watch/top survive a dropped stream)
# --------------------------------------------------------------------------

def _scripted_stream(script):
    """A stream_snapshots stand-in driven by a per-connection script.

    Each entry: {"frames": [...], "end": bool}; omitting "end" makes the
    connection die with ConfigurationError after its frames (a dropped
    TCP stream).  The last entry repeats forever.
    """
    calls = {"count": 0}

    def stream(endpoint, timeout, status):
        behavior = script[min(calls["count"], len(script) - 1)]
        calls["count"] += 1
        for frame in behavior.get("frames", ()):
            status.frames += 1
            yield frame
        if behavior.get("end"):
            status.ended = True
            return
        raise ConfigurationError("stream dropped")

    stream.calls = calls
    return stream


def test_reconnect_resumes_after_a_dropped_stream():
    from repro.observability.top import stream_snapshots_reconnect

    sleeps, notices = [], []
    stream = _scripted_stream([
        {"frames": [{"now": 1.0}, {"now": 2.0}]},           # drops
        {"frames": [{"now": 3.0}], "end": True},            # clean end
    ])
    frames = list(stream_snapshots_reconnect(
        "127.0.0.1:1", on_reconnect=lambda d, n: notices.append((d, n)),
        sleep=sleeps.append, _stream=stream))
    assert [f["now"] for f in frames] == [1.0, 2.0, 3.0]
    assert stream.calls["count"] == 2
    assert sleeps == [0.5]            # one backoff between connections
    assert notices == [(0.5, 1)]      # the CLI notice hook fired once


def test_reconnect_gives_up_after_max_consecutive_failures():
    from repro.observability.top import stream_snapshots_reconnect

    sleeps = []
    stream = _scripted_stream([{}])   # every connection dies frameless
    with pytest.raises(ConfigurationError):
        list(stream_snapshots_reconnect(
            "127.0.0.1:1", max_failures=2, sleep=sleeps.append,
            _stream=stream))
    # Attempts: fail, sleep, fail, sleep, fail -> give up (3 connections).
    assert stream.calls["count"] == 3
    assert sleeps == [0.5, 1.0]


def test_reconnect_backoff_doubles_caps_and_resets_on_a_frame():
    from repro.observability.top import stream_snapshots_reconnect

    sleeps = []
    stream = _scripted_stream([
        {}, {}, {}, {}, {}, {},                      # six dead connections
        {"frames": [{"now": 1.0}]},                  # one frame -> reset
        {},                                          # dies again
        {"frames": [{"now": 2.0}], "end": True},
    ])
    frames = list(stream_snapshots_reconnect(
        "127.0.0.1:1", max_failures=10, sleep=sleeps.append,
        _stream=stream))
    assert [f["now"] for f in frames] == [1.0, 2.0]
    # 0.5 doubles to the 8s cap, then the received frame resets it.
    assert sleeps == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0,  # dead streak
                      0.5, 1.0]  # post-frame drop restarts at 0.5


def test_reconnect_stops_cleanly_on_server_end_without_sleeping():
    from repro.observability.top import stream_snapshots_reconnect

    sleeps = []
    stream = _scripted_stream([{"frames": [{"now": 1.0}], "end": True}])
    frames = list(stream_snapshots_reconnect(
        "127.0.0.1:1", sleep=sleeps.append, _stream=stream))
    assert [f["now"] for f in frames] == [1.0]
    assert sleeps == []               # no reconnect machinery engaged


def test_parse_endpoint():
    assert _parse_endpoint("127.0.0.1:9100") == ("127.0.0.1", 9100)
    assert _parse_endpoint(":9100") == ("127.0.0.1", 9100)
    # The full-URL form printed by `repro serve` works too.
    assert _parse_endpoint("http://10.0.0.5:9131") == ("10.0.0.5", 9131)
    assert _parse_endpoint("http://10.0.0.5:9131/stream") == ("10.0.0.5", 9131)
    with pytest.raises(ConfigurationError):
        _parse_endpoint("no-port")


# --------------------------------------------------------------------------
# A real serving run, scraped mid-flight
# --------------------------------------------------------------------------

def _http_get(port: int, path: str) -> tuple[int, str]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


@pytest.fixture(scope="module")
def serving_run(tmp_path_factory):
    """One live DSE run with the plane armed, scraped while in flight.

    Collects /metrics and /healthz bodies during the run plus the first
    few SSE events, then dumps the armed flight recorder post-run so the
    ``repro top --replay`` tests read a *recorded* dump rather than a
    synthetic one (one wall-clock run shared by the whole module keeps
    the suite fast).
    """
    tmp = tmp_path_factory.mktemp("serving-run")
    workload = figure5_workload(scale=0.01)
    params = SimulationParameters(telemetry_enabled=True,
                                  telemetry_sample_interval=0.02)

    def factory(rel):
        def make():
            rng = np.random.default_rng([9, len(rel)])
            slow = 10.0 if rel == "A" else 1.0
            return jittered_batches(
                workload.catalog.relation(rel).cardinality,
                params.tuples_per_message, slow * 100e-6, rng)
        return make

    served = threading.Event()
    port = {}
    engine = LiveQueryEngine(
        workload.catalog, workload.qep, make_policy("DSE"),
        {rel: factory(rel) for rel in workload.relation_names},
        params=params, seed=9, serve_port=0,
        flight_dump=tmp / "flight.json",
        on_serve=lambda server: (port.update(value=server.port),
                                 served.set()))

    outcome = {}

    def run():
        try:
            outcome["result"] = asyncio.run(engine.run())
        except BaseException as exc:  # surfaced after join
            outcome["error"] = exc

    thread = threading.Thread(target=run)
    thread.start()
    assert served.wait(timeout=10.0), "server never came up"

    scrapes, healths = [], []
    stream_events = []
    try:
        conn = http.client.HTTPConnection("127.0.0.1", port["value"],
                                          timeout=10)
        conn.request("GET", "/stream",
                     headers={"Accept": "text/event-stream"})
        response = conn.getresponse()
        assert response.status == 200
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line.startswith("data:"):
                stream_events.append(json.loads(line.split(":", 1)[1]))
                if len(stream_events) >= 3:
                    break
        conn.close()
        while thread.is_alive() and len(scrapes) < 50:
            status, body = _http_get(port["value"], "/metrics")
            assert status == 200
            scrapes.append(body)
            status, body = _http_get(port["value"], "/healthz")
            assert status == 200
            healths.append(json.loads(body))
    finally:
        thread.join(timeout=60.0)
    assert not thread.is_alive()
    if "error" in outcome:
        raise outcome["error"]
    # The recorder stays attached after a green run: dump it now so the
    # --replay tests below read a genuinely *recorded* flight dump.
    dump_path = engine.recorder.dump(tmp / "recorded.json",
                                     reason="post-run test dump")
    return {"scrapes": scrapes, "healths": healths,
            "stream_events": stream_events, "result": outcome["result"],
            "dump_path": dump_path}


def test_midflight_scrapes_are_valid_exposition_text(serving_run):
    assert serving_run["scrapes"], "run finished before a single scrape"
    for body in serving_run["scrapes"]:
        samples = _parse_prometheus(body)  # every line parses
        names = dict(samples)
        assert names["repro_live_up"] == 1.0
        assert any(name.startswith("repro_live_fragment_throughput")
                   for name, _ in samples)
        assert any(name.startswith("repro_live_queue_depth_tuples")
                   for name, _ in samples)


def test_midflight_stall_series_sum_exactly_to_stall_time(serving_run):
    saw_nonzero = False
    for body in serving_run["scrapes"]:
        total = None
        causes = []
        for name, value in _parse_prometheus(body):
            if name == "repro_live_stall_time_seconds":
                total = value
            elif name.startswith("repro_live_stall_seconds_total"):
                causes.append(value)
        assert total is not None
        assert sum(causes) == total  # exact, not approx: order is pinned
        saw_nonzero = saw_nonzero or total > 0
    assert saw_nonzero, "slowed source never produced an attributed stall"


def test_healthz_reports_progressing_snapshots(serving_run):
    healths = serving_run["healths"]
    assert healths and all(h["status"] == "ok" for h in healths)
    assert healths[-1]["snapshots"] >= healths[0]["snapshots"] >= 1


def test_stream_first_event_is_a_complete_snapshot(serving_run):
    events = serving_run["stream_events"]
    assert events, "SSE stream delivered no events"
    event = events[0]
    assert event["strategy"] == "DSE"
    assert {"now", "fragments", "queues", "stalls",
            "stall_time", "memory", "seq"} <= set(event)


def test_stream_events_advance_monotonically(serving_run):
    """Each SSE event is a newer snapshot: strictly increasing seq and
    non-decreasing simulated time and batch counts."""
    events = serving_run["stream_events"]
    assert len(events) >= 2, "stream closed after a single event"
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(set(seqs)), f"seq not strictly increasing: {seqs}"
    for earlier, later in zip(events, events[1:]):
        assert later["now"] >= earlier["now"]
        assert later["batches"] >= earlier["batches"]


def test_top_replay_renders_the_recorded_flight_dump(serving_run, capsys):
    """`repro top --replay` over the dump recorded from the live run
    above renders the embedded final snapshot without any server."""
    from repro.cli import main

    assert main(["top", "--replay", str(serving_run["dump_path"])]) == 0
    out = capsys.readouterr().out
    assert "DSE" in out
    assert "memory [" in out
    # The replayed snapshot is the run's last sampler tick, so it shows
    # real progress from the recorded run.
    event = serving_run["stream_events"][0]
    header = out.splitlines()[0]
    assert "t=" in header and "batches" in header
    assert event["seq"] >= 1


def test_recorded_dump_roundtrips_through_the_loader(serving_run):
    from repro.observability.flight import load_flight_dump

    dump = load_flight_dump(serving_run["dump_path"])
    assert dump["reason"] == "post-run test dump"
    assert dump["entries"], "armed recorder captured no entries"
    assert dump["snapshot"] is not None
    times = [entry.time for entry in dump["entries"]]
    assert times == sorted(times)


def test_serving_run_still_returns_a_normal_result(serving_run):
    result = serving_run["result"]
    assert result.result_tuples > 0
    assert result.metrics is not None
    assert result.samples, "wall-clock sampler collected nothing"


def test_snapshot_stalls_are_name_sorted():
    """build_live_snapshot pins the cause order so document-order
    re-summation of the exported series reproduces the total exactly."""

    class _Stalls:
        def by_cause(self):
            return {"timeout": 0.2, "source-wait:A": 0.1, "memory-wait": 0.3}

    class _Telemetry:
        stalls = _Stalls()
        audit = []
        samples = []

    class _Memory:
        used_bytes = total_bytes = peak_bytes = 0

    class _CM:
        queues = {}
        estimators = {}

    class _Sim:
        now = 1.0

    class _World:
        sim = _Sim()
        telemetry = _Telemetry()
        memory = _Memory()
        cm = _CM()

    class _Runtime:
        fragments = {}
        result_tuples = 0

    class _Processor:
        batches_processed = 0
        context_switches = 0

    snapshot = build_live_snapshot(_World(), _Runtime(), _Processor(), "DSE")
    assert list(snapshot["stalls"]) == sorted(snapshot["stalls"])
    assert snapshot["stall_time"] == sum(snapshot["stalls"].values())
