"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog, JoinStatistics, Relation
from repro.common.rng import RandomStreams, derive_seed
from repro.common.units import bytes_to_pages
from repro.optimizer import CostModel, DynamicProgrammingOptimizer
from repro.plan import ancestor_closure, build_qep, validate_qep
from repro.plan.operators import MatOp, OutputOp
from repro.query import JoinTree, Query, QueryGenerator
from repro.sim import LRUPageCache, Simulator, WelfordStat
from repro.mediator.buffer import MemoryManager
from repro.mediator.queues import Message, SourceQueue


# --------------------------------------------------------------------------
# Units & RNG
# --------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10**12),
       st.integers(min_value=1, max_value=10**6))
def test_bytes_to_pages_is_ceiling(num_bytes, page_size):
    pages = bytes_to_pages(num_bytes, page_size)
    assert pages * page_size >= num_bytes
    assert (pages - 1) * page_size < num_bytes or pages == 0


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
def test_derive_seed_stable_and_in_range(root, label):
    seed = derive_seed(root, label)
    assert seed == derive_seed(root, label)
    assert 0 <= seed < 2**64


@given(st.integers(min_value=0, max_value=1000))
def test_random_streams_independent(root):
    streams = RandomStreams(root)
    a_first = streams.stream("a").random(3).tolist()
    # Drawing from "b" must not perturb "a"'s continuation.
    streams.stream("b").random(100)
    a_more = streams.stream("a").random(3).tolist()
    fresh = RandomStreams(root)
    expected = fresh.stream("a").random(6).tolist()
    assert a_first + a_more == pytest.approx(expected)


# --------------------------------------------------------------------------
# Simulator determinism / monotonic clock
# --------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30))
def test_clock_monotonic_under_any_timeouts(delays):
    sim = Simulator()
    observed = []

    def waiter(delay):
        yield sim.timeout(delay)
        observed.append(sim.now)

    for delay in delays:
        sim.process(waiter(delay))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


# --------------------------------------------------------------------------
# LRU cache invariants
# --------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=16),
       st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20)),
                max_size=200))
def test_cache_never_exceeds_capacity(capacity, operations):
    cache = LRUPageCache(capacity)
    for extent, page in operations:
        cache.insert(extent, page)
        assert len(cache) <= capacity
        assert cache.lookup(extent, page)  # just inserted: must be resident


@given(st.integers(min_value=2, max_value=8),
       st.lists(st.integers(0, 30), min_size=1, max_size=100))
def test_cache_eviction_is_lru_order(capacity, pages):
    cache = LRUPageCache(capacity)
    for page in pages:
        cache.insert(0, page)
    resident = list(cache.resident_pages())
    # The most recently inserted page is at the MRU end.
    assert resident[-1] == (0, pages[-1])


# --------------------------------------------------------------------------
# Welford matches numpy
# --------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=2, max_size=100))
def test_welford_matches_numpy(values):
    stat = WelfordStat()
    for value in values:
        stat.record(value)
    assert stat.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    assert stat.variance == pytest.approx(np.var(values, ddof=1),
                                          rel=1e-6, abs=1e-6)


# --------------------------------------------------------------------------
# Memory manager conservation
# --------------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["reserve", "release", "grow"]),
                          st.integers(0, 10), st.integers(0, 500)),
                max_size=100))
def test_memory_conservation(operations):
    memory = MemoryManager(10_000)
    held = {}
    for op, owner_id, amount in operations:
        owner = f"o{owner_id}"
        if op == "reserve" and owner not in held:
            if memory.would_fit(amount):
                memory.reserve(owner, amount)
                held[owner] = amount
        elif op == "release" and owner in held:
            memory.release(owner)
            del held[owner]
        elif op == "grow" and owner in held:
            if memory.try_grow(owner, amount):
                held[owner] += amount
        assert memory.used_bytes == sum(held.values())
        assert 0 <= memory.used_bytes <= memory.total_bytes


# --------------------------------------------------------------------------
# Source queue conservation
# --------------------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(), st.integers(1, 500)),
                min_size=1, max_size=100))
def test_queue_tuple_conservation(operations):
    sim = Simulator()
    queue = SourceQueue(sim, "W", capacity_messages=1000)
    put_total = 0
    taken_total = 0
    for is_put, amount in operations:
        if is_put:
            queue.put(Message(amount))
            put_total += amount
        else:
            taken_total += queue.take_batch(amount)
    assert queue.tuples_available == put_total - taken_total
    assert taken_total <= put_total


# --------------------------------------------------------------------------
# Query generator / plan / optimizer invariants
# --------------------------------------------------------------------------

@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=1, max_value=8),
       st.sampled_from(["chain", "star", "tree"]),
       st.integers(min_value=0, max_value=10_000))
def test_generated_plans_always_validate(num_relations, shape, seed):
    gen = QueryGenerator(np.random.default_rng(seed),
                         min_cardinality=100, max_cardinality=10_000)
    workload = gen.generate(num_relations, shape=shape)
    tree = DynamicProgrammingOptimizer(
        CostModel(workload.catalog)).optimize(workload.query)
    qep = build_qep(workload.catalog, tree)
    validate_qep(qep)
    # Exactly one chain per relation, each relation scanned once.
    assert sorted(qep.source_relations()) == sorted(workload.relation_names)
    # Ancestor closure is acyclic and the root depends on every other chain.
    closure = ancestor_closure(qep)
    root_deps = closure[qep.root.name]
    assert root_deps == {c.name for c in qep.chains} - {qep.root.name}


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=2, max_value=7),
       st.integers(min_value=0, max_value=10_000))
def test_optimizer_never_worse_than_left_deep(num_relations, seed):
    gen = QueryGenerator(np.random.default_rng(seed),
                         min_cardinality=100, max_cardinality=10_000)
    workload = gen.generate(num_relations, shape="chain")
    model = CostModel(workload.catalog)
    best = DynamicProgrammingOptimizer(model).optimize(workload.query)
    left_deep = JoinTree.left_deep(workload.relation_names)
    assert model.tree_cost(best) <= model.tree_cost(left_deep) * (1 + 1e-9)


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=10_000))
def test_plan_estimates_conserve_cardinality(num_relations, seed):
    """The root chain's output estimate equals the catalog estimate."""
    gen = QueryGenerator(np.random.default_rng(seed),
                         min_cardinality=100, max_cardinality=10_000)
    workload = gen.generate(num_relations, shape="tree")
    tree = DynamicProgrammingOptimizer(
        CostModel(workload.catalog)).optimize(workload.query)
    qep = build_qep(workload.catalog, tree)
    expected = workload.catalog.estimate_cardinality(workload.relation_names)
    assert qep.root.estimated_output_cardinality == pytest.approx(
        expected, rel=1e-9)


@settings(deadline=None, max_examples=20)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=1000))
def test_chain_terminals_are_mat_or_output(num_relations, seed):
    gen = QueryGenerator(np.random.default_rng(seed),
                         min_cardinality=100, max_cardinality=1000)
    workload = gen.generate(num_relations, shape="tree")
    tree = DynamicProgrammingOptimizer(
        CostModel(workload.catalog)).optimize(workload.query)
    qep = build_qep(workload.catalog, tree)
    for chain in qep.chains:
        assert isinstance(chain.terminal, (MatOp, OutputOp))
        # A mat before every blocking edge (Section 2.2).
        if not chain.is_root:
            assert isinstance(chain.terminal, MatOp)
            assert chain.terminal.join is not None
