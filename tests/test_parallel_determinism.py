"""Serial == parallel == cache-served, bit for bit.

The whole point of the sweep runner is that sharding runs across worker
processes or serving them from the run cache is an *implementation*
choice, invisible in the results.  These tests pin that: the same fig6
sweep point computed three ways produces identical measured payloads,
and the spec-based drivers match the classic in-process API exactly.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationParameters
from repro.experiments.runner import run_once
from repro.experiments.slowdown import (
    STRATEGIES,
    run_slowdown_experiment,
    slowdown_waits,
)
from repro.experiments.workloads import figure5_workload
from repro.parallel import SweepRunner, result_to_payload
from repro.parallel.spec import RunSpec, uniform_delay_specs
from repro.wrappers.delays import UniformDelay

SCALE = 0.05
RETRIEVAL_TIMES = [0.5, 1.0]


@pytest.fixture(scope="module")
def workload():
    return figure5_workload(scale=SCALE)


@pytest.fixture(scope="module")
def specs(workload):
    """One fig6 sweep point: every strategy, two seeds."""
    params = SimulationParameters()
    waits = slowdown_waits(workload, "A", 1.0, params)
    return [RunSpec(strategy=strategy, seed=seed, scale=SCALE,
                    delays=uniform_delay_specs(waits), params=params)
            for strategy in STRATEGIES for seed in (0, 1)]


def _payloads(results):
    return [result_to_payload(r) for r in results]


def test_parallel_results_identical_to_serial(specs):
    serial = SweepRunner(jobs=1).run(specs)
    parallel = SweepRunner(jobs=4).run(specs)
    assert _payloads(parallel) == _payloads(serial)


def test_cache_served_results_identical_to_serial(specs, tmp_path):
    serial = SweepRunner(jobs=1).run(specs)

    cold = SweepRunner(jobs=1, cache_dir=tmp_path)
    cold_results = cold.run(specs)
    assert cold.stats.stored == len(specs)
    assert _payloads(cold_results) == _payloads(serial)

    warm = SweepRunner(jobs=1, cache_dir=tmp_path)
    warm_results = warm.run(specs)
    assert warm.stats.cache_hits == len(specs)
    assert warm.stats.executed_inline == warm.stats.executed_pool == 0
    assert _payloads(warm_results) == _payloads(serial)


def test_spec_execution_matches_classic_api(workload, specs):
    """RunSpec.execute() rebuilds the exact same run as run_once()."""
    params = SimulationParameters()
    waits = slowdown_waits(workload, "A", 1.0, params)
    for spec in specs:
        classic = run_once(
            workload.catalog, workload.qep, spec.strategy,
            lambda: {n: UniformDelay(w) for n, w in waits.items()},
            params, seed=spec.seed)
        assert result_to_payload(spec.execute()) == result_to_payload(classic)


def test_sweep_driver_identical_across_runners(workload):
    params = SimulationParameters()
    kwargs = dict(repetitions=2, base_seed=1)
    serial = run_slowdown_experiment(
        workload, "A", RETRIEVAL_TIMES, params, **kwargs)
    parallel = run_slowdown_experiment(
        workload, "A", RETRIEVAL_TIMES, params,
        runner=SweepRunner(jobs=4), **kwargs)
    assert [p.response_times for p in parallel] == \
           [p.response_times for p in serial]
    assert [p.lwb for p in parallel] == [p.lwb for p in serial]


def test_pool_payload_equals_inline_payload(specs):
    """What a worker ships over the wire == what inline execution yields."""
    spec = specs[0]
    assert spec.execute_payload() == result_to_payload(spec.execute())
