"""Shared fixtures: small catalogs, scaled workloads, fast parameters."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, JoinStatistics, Relation
from repro.config import SimulationParameters
from repro.experiments import figure5_workload
from repro.plan import build_qep
from repro.query import JoinTree, Query
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def params() -> SimulationParameters:
    """Default Table 1 parameters."""
    return SimulationParameters()


@pytest.fixture
def small_catalog() -> Catalog:
    """Three tiny relations joined in a chain R-S-T."""
    stats = JoinStatistics({
        ("R", "S"): 1.0 / 1000,
        ("S", "T"): 1.0 / 2000,
    })
    return Catalog([
        Relation("R", 1000),
        Relation("S", 2000),
        Relation("T", 1500),
    ], stats)


@pytest.fixture
def small_query(small_catalog) -> Query:
    return Query(small_catalog, ["R", "S", "T"])


@pytest.fixture
def small_tree() -> JoinTree:
    """((R ⋈ S) ⋈ T) with builds on the left."""
    return JoinTree.join(
        JoinTree.join(JoinTree.leaf("R"), JoinTree.leaf("S")),
        JoinTree.leaf("T"))


@pytest.fixture
def small_qep(small_catalog, small_tree):
    return build_qep(small_catalog, small_tree)


@pytest.fixture
def tiny_fig5():
    """The Figure 5 workload at 2% scale (runs in milliseconds)."""
    return figure5_workload(scale=0.02)


@pytest.fixture
def mini_fig5():
    """The Figure 5 workload at 10% scale (still fast, more realistic)."""
    return figure5_workload(scale=0.1)
