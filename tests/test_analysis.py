"""Tests for the post-run analysis (time breakdown, comparison report)."""

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.experiments import (
    comparison_report,
    slowdown_waits,
    time_breakdown,
)


def run(workload, strategy, waits, seed=1):
    params = SimulationParameters()
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delays, params=params, seed=seed).run()


def test_breakdown_components_sum_to_response(mini_fig5):
    params = SimulationParameters()
    waits = slowdown_waits(mini_fig5, "F", 1.0, params)
    result = run(mini_fig5, "SEQ", waits)
    breakdown = time_breakdown(result)
    total = (breakdown.fragment_cpu + breakdown.overhead_cpu
             + breakdown.stall_time + breakdown.other_time)
    # Stalls can overlap CPU work done by the communication manager, so
    # the parts cover at least the whole response (and the non-stall
    # parts alone never exceed it).
    assert total >= result.response_time - 1e-9
    assert (breakdown.fragment_cpu + breakdown.overhead_cpu
            + breakdown.other_time) <= result.response_time + 1e-9


def test_breakdown_fragment_cpu_is_pure_work(mini_fig5):
    """Fragment CPU must be identical across strategies doing the same
    pipeline work (SEQ vs DSE-ND: same operators, no materialization)."""
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    seq = time_breakdown(run(mini_fig5, "SEQ", waits))
    nd = time_breakdown(run(mini_fig5, "DSE-ND", waits))
    assert nd.fragment_cpu == pytest.approx(seq.fragment_cpu, rel=1e-6)


def test_breakdown_dse_extra_work_is_materialization(mini_fig5):
    params = SimulationParameters()
    waits = slowdown_waits(mini_fig5, "F", 1.0, params)
    seq = time_breakdown(run(mini_fig5, "SEQ", waits))
    dse_result = run(mini_fig5, "DSE", waits)
    dse = time_breakdown(dse_result)
    assert dse.fragment_cpu > seq.fragment_cpu  # spill/replay moves
    assert dse.stall_time < seq.stall_time      # that is what it buys


def test_useful_fraction_in_unit_range(mini_fig5):
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    breakdown = time_breakdown(run(mini_fig5, "DSE", waits))
    assert 0.0 < breakdown.useful_fraction <= 1.0


def test_comparison_report_renders(mini_fig5):
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    results = {s: run(mini_fig5, s, waits) for s in ("SEQ", "DSE")}
    text = comparison_report(results, title="anatomy")
    assert "anatomy" in text
    assert "SEQ" in text and "DSE" in text
    assert "response time (s)" in text
    assert "result tuples" in text


def test_comparison_report_empty_rejected():
    with pytest.raises(ValueError):
        comparison_report({})
