"""The always-on multi-tenant query service (`repro serve`).

Pins the service core: strict submission validation, the bounded
latency window, one real multi-tenant service session on the wall-clock
kernel (submissions complete, tenants account, snapshots stay JSON-safe
and bounded, drain refuses new work and flushes the flight recorder),
and the fleet view `repro top` renders from a service snapshot.
"""

import asyncio
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SimulationParameters
from repro.observability.flight import load_flight_dump
from repro.observability.top import render_service_top, render_top
from repro.resources import QuotaExceeded, TenantSpec
from repro.service import (
    SERVICE_SNAPSHOT_VERSION,
    LatencyWindow,
    QueryService,
    ServiceDraining,
    SubmissionRequest,
    service_prometheus_text,
)
from repro.service.stats import percentile

#: small-and-fast submission shape used by every live test here.
FAST = dict(scale=0.0005, wait_us=20.0, memory_bytes=1 << 20)


# --------------------------------------------------------------------------
# SubmissionRequest validation
# --------------------------------------------------------------------------

def test_from_json_round_trips_a_full_body():
    request = SubmissionRequest.from_json({
        "tenant": "acme", "strategy": "MA", "scale": 0.01, "seed": 3,
        "wait_us": 50, "jitter": 0.5, "slow": {"A": 10},
        "priority": 1.5, "memory_bytes": 1 << 20})
    assert request.tenant == "acme"
    assert request.strategy == "MA"
    assert request.slow == {"A": 10.0}
    assert request.priority == 1.5
    # to_dict -> from_json is stable.
    assert SubmissionRequest.from_json(request.to_dict()) == request


@pytest.mark.parametrize("body", [
    [],                                       # not an object
    {"bogus": 1},                             # unknown field
    {"seed": "7"},                            # wrong type
    {"seed": True},                           # bool is not an int here
    {"scale": -1.0},
    {"strategy": "NOPE"},
    {"jitter": 2.0},
    {"tenant": ""},
    {"slow": {"A": "x"}},
    {"memory_bytes": 0},
    {"min_memory_bytes": 2048, "max_memory_bytes": 1024},
])
def test_from_json_rejects_bad_bodies(body):
    with pytest.raises(ConfigurationError):
        SubmissionRequest.from_json(body)


def test_resolved_budgets_defaults_and_clamping():
    params = SimulationParameters()
    initial, lo, hi = SubmissionRequest().resolved_budgets(params)
    assert initial == lo == hi == params.query_memory_bytes
    initial, lo, hi = SubmissionRequest(
        min_memory_bytes=10, max_memory_bytes=100).resolved_budgets(params)
    assert (initial, lo, hi) == (100, 10, 100)  # default clamped into range


# --------------------------------------------------------------------------
# LatencyWindow
# --------------------------------------------------------------------------

def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile([], 0.5) == 0.0
    assert percentile(values, 0.5) == 2.0
    assert percentile(values, 0.99) == 4.0
    with pytest.raises(ValueError):
        percentile(values, 1.5)


def test_percentile_empty_and_single_element_pins():
    # The quiet-service case: an empty ring yields 0.0 for any valid
    # fraction instead of raising.
    for fraction in (0.0, 0.5, 0.99, 1.0):
        assert percentile([], fraction) == 0.0
    # ...but a bad fraction is a caller bug even when the list is empty.
    with pytest.raises(ValueError):
        percentile([], 1.5)
    with pytest.raises(ValueError):
        percentile([], -0.1)
    # A one-element list answers that element for every fraction.
    for fraction in (0.0, 0.5, 0.99, 1.0):
        assert percentile([7.0], fraction) == 7.0


def test_latency_window_summary_is_all_zero_when_empty():
    summary = LatencyWindow().summary(now=10.0)
    assert summary["count"] == 0
    for key in ("p50_s", "p95_s", "p99_s", "mean_s", "max_s",
                "throughput_qps"):
        assert summary[key] == 0.0, key


def test_latency_window_is_bounded_but_counts_everything():
    window = LatencyWindow(capacity=4)
    for index in range(10):
        window.observe(float(index), at=float(index))
    assert len(window) == 4
    assert window.observed == 10
    summary = window.summary()
    assert summary["count"] == 4 and summary["observed"] == 10
    # Only the newest four (6..9) remain in the ring.
    assert summary["max_s"] == 9.0 and summary["p50_s"] == 7.0


def test_latency_window_throughput_uses_the_recent_horizon():
    window = LatencyWindow(capacity=100)
    for at in (1.0, 2.0, 3.0):
        window.observe(0.1, at=at)
    # All three within the horizon: 3 completions over ~29s of lookback.
    assert window.throughput(now=4.0, horizon_s=30.0) == pytest.approx(1.0)
    # Far in the future nothing is recent.
    assert window.throughput(now=1000.0, horizon_s=30.0) == 0.0
    assert "throughput_qps" in window.summary(now=4.0)


def test_latency_window_rejects_bad_capacity():
    with pytest.raises(ValueError):
        LatencyWindow(capacity=0)


# --------------------------------------------------------------------------
# One real service session (wall-clock kernel, governed pool)
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service_session(tmp_path_factory):
    """Start, exercise, drain and stop one governed two-tenant service.

    Collected into a dict so many tests can assert against a single
    wall-clock session (the expensive part is the kernel lifetime).
    """
    tmp = tmp_path_factory.mktemp("service")
    flight_path = tmp / "flight.json"
    span_path = tmp / "spans.json"
    out = {"flight_path": flight_path, "span_path": span_path}

    async def scenario():
        service = QueryService(
            seed=11, global_memory_bytes=2 << 20,
            tenants=[TenantSpec("gold", priority=2.0),
                     TenantSpec("capped", priority=0.0, max_active=1)],
            history=2, publish_interval_s=0.05,
            flight_dump=flight_path, span_dump=span_path)
        await service.start()

        records = [service.submit(SubmissionRequest(
            tenant="gold", seed=index, **FAST)) for index in range(3)]
        records.append(service.submit(SubmissionRequest(
            tenant="walkin", **FAST)))  # auto-registered tenant

        # The capped tenant admits one submission; the second is refused
        # while the first is still in flight.
        capped = service.submit(SubmissionRequest(tenant="capped", **FAST))
        with pytest.raises(QuotaExceeded):
            service.submit(SubmissionRequest(tenant="capped", seed=1,
                                             **FAST))
        records.append(capped)

        await asyncio.gather(*(r.done.wait() for r in records))
        out["mid_snapshot"] = service.snapshot()
        out["records"] = records
        out["record_ids"] = [r.id for r in records]
        out["kept_ids"] = sorted(service.records)

        # Drain with one submission still in flight: it must finish,
        # new work is refused, and stop() flushes the recorders.
        straggler = service.submit(SubmissionRequest(
            tenant="gold", seed=99, **FAST))
        service.drain()
        with pytest.raises(ServiceDraining):
            service.submit(SubmissionRequest(tenant="gold", **FAST))
        await service.stop()
        out["straggler"] = straggler
        out["final_snapshot"] = service.snapshot()
        out["service"] = service

    asyncio.run(scenario())
    return out


def test_submissions_complete_with_outcomes(service_session):
    for record in service_session["records"]:
        assert record.state == "done", record.error
        assert record.outcome["result_tuples"] > 0
        assert record.finished_at >= record.submitted_at
        assert record.latency(0.0) > 0


def test_snapshot_shape_and_counters(service_session):
    snapshot = service_session["mid_snapshot"]
    assert snapshot["version"] == SERVICE_SNAPSHOT_VERSION
    assert snapshot["kind"] == "service"
    assert snapshot["submitted"] == 5
    assert snapshot["completed"] == 5
    assert snapshot["failed"] == 0
    assert snapshot["rejected"] == 1  # the quota refusal
    assert snapshot["batches"] > 0
    assert snapshot["pool"]["total"] == 2 << 20
    assert snapshot["latency"]["count"] == 5
    json.dumps(snapshot)  # JSON-safe end to end


def test_tenant_accounting_in_snapshot(service_session):
    tenants = {t["name"]: t for t in
               service_session["mid_snapshot"]["tenants"]}
    assert tenants["gold"]["completed"] == 3
    assert tenants["gold"]["priority"] == 2.0
    assert tenants["walkin"]["completed"] == 1  # auto-registered
    assert tenants["capped"]["completed"] == 1
    assert tenants["capped"]["rejected"] == 1


def test_finished_history_is_pruned_to_the_ring(service_session):
    # history=2: only the two newest finished submissions stay queryable.
    assert len(service_session["kept_ids"]) == 2
    assert set(service_session["kept_ids"]) \
        <= set(service_session["record_ids"])


def test_drain_finishes_stragglers_and_refuses_new_work(service_session):
    straggler = service_session["straggler"]
    assert straggler.state == "done", straggler.error
    final = service_session["final_snapshot"]
    assert final["draining"] is True
    assert final["active"] == 0
    assert final["rejected"] == 2  # quota refusal + drain refusal


def test_stop_flushes_flight_recorder_and_spans(service_session):
    dump = load_flight_dump(service_session["flight_path"])
    assert dump["reason"] == "drain"
    assert dump["entries"], "machine flight recorder captured nothing"
    assert dump["snapshot"]["kind"] == "service"
    spans = json.loads(service_session["span_path"].read_text())
    assert spans["spans"], "span recorder captured nothing"


def test_submitted_at_uses_the_wall_clock_not_the_dispatch_clock(
        service_session):
    # The straggler was submitted after a gather over earlier queries;
    # its timestamp must be at (or after) the moment the earlier work
    # finished — a stale dispatch-clock stamp would predate it.
    straggler = service_session["straggler"]
    earlier = max(r.finished_at for r in service_session["records"])
    assert straggler.submitted_at >= earlier - 1e-6


def test_service_prometheus_text_renders_the_real_snapshot(service_session):
    text = service_prometheus_text(service_session["final_snapshot"])
    samples = {}
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    assert samples["repro_service_up"] == 1.0
    assert samples["repro_service_draining"] == 1.0
    assert samples["repro_service_completed_total"] == 6.0
    assert samples['repro_service_tenant_completed_total{tenant="gold"}'] \
        == 4.0
    assert 'repro_service_latency_seconds{quantile="0.99"}' in samples
    assert service_prometheus_text(None).startswith(
        "# HELP repro_service_up")


def test_render_service_top_fleet_view(service_session):
    lines = render_top(service_session["final_snapshot"], width=100)
    assert lines == render_service_top(service_session["final_snapshot"],
                                       width=100)
    assert "DRAINING" in lines[0]
    assert any(line.startswith("TENANT") for line in lines)
    assert any(line.startswith("gold") for line in lines)
    assert any(line.startswith("QUERY") for line in lines)
    assert all(len(line) <= 100 for line in lines)


# --------------------------------------------------------------------------
# Construction-time guards
# --------------------------------------------------------------------------

def test_strict_tenants_refuses_walk_ins():
    async def scenario():
        service = QueryService(tenants=[TenantSpec("known")],
                               strict_tenants=True)
        await service.start()
        try:
            with pytest.raises(QuotaExceeded):
                service.submit(SubmissionRequest(tenant="nobody", **FAST))
            assert service.rejected == 1
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_submission_larger_than_the_pool_is_refused_up_front():
    async def scenario():
        service = QueryService(global_memory_bytes=1 << 20)
        await service.start()
        try:
            with pytest.raises(ConfigurationError):
                service.submit(SubmissionRequest(
                    tenant="big", memory_bytes=2 << 20))
            assert service.rejected == 1
        finally:
            await service.stop()

    asyncio.run(scenario())


def test_submit_before_start_is_an_error():
    from repro.common.errors import SimulationError

    service = QueryService()
    with pytest.raises(SimulationError):
        service.submit(SubmissionRequest(**FAST))


def test_bad_admission_policy_is_rejected():
    with pytest.raises(ConfigurationError):
        QueryService(global_memory_bytes=1 << 20, admission="bogus")


# --------------------------------------------------------------------------
# Durable archive + SLO plane wired into a live session
# --------------------------------------------------------------------------

def test_service_archives_outcomes_and_tracks_slos(tmp_path):
    from repro.observability.archive import read_archive
    from repro.service.slo import parse_slo_specs

    archive_dir = tmp_path / "archive"
    out = {}

    async def scenario():
        service = QueryService(
            seed=7, global_memory_bytes=2 << 20,
            tenants=[TenantSpec("gold", priority=2.0)],
            publish_interval_s=0.05, archive_dir=archive_dir,
            span_dump=tmp_path / "spans.json",  # span records ride along
            slos=parse_slo_specs(["gold:p99<=30s@99.5%",
                                  "*:p99<=30s@99%"]))
        await service.start()
        records = [service.submit(SubmissionRequest(
            tenant="gold", seed=index, **FAST)) for index in range(3)]
        await asyncio.gather(*(r.done.wait() for r in records))
        out["mid_snapshot"] = service.snapshot()
        service.drain()
        await service.stop()
        out["service"] = service

    asyncio.run(scenario())
    snapshot = out["mid_snapshot"]

    # The live snapshot carries the new planes (all JSON-safe).
    assert snapshot["uptime_s"] >= 0.0
    assert snapshot["alerts"] == 0  # nothing breached a 30s threshold
    assert snapshot["archive"]["dropped_total"] == 0
    objectives = {o["objective"]: o for o in snapshot["slo"]}
    assert set(objectives) == {"gold:p99<=30s@99.5%", "*:p99<=30s@99%"}
    for status in objectives.values():
        assert status["events"] == 3
        assert status["bad"] == 0
        assert status["compliance"] == 1.0
        assert status["alerting"] is False
    json.dumps(snapshot)

    # Every completed submission became a durable outcome record, and
    # stop() flushed the queue so nothing is lost.
    outcomes, reader = read_archive(archive_dir, kinds=("outcome",))
    assert reader.skipped_lines == 0
    assert len(outcomes) == 3
    for record in outcomes:
        assert record["tenant"] == "gold"
        assert record["ok"] is True
        assert record["latency_s"] > 0.0
        assert record["strategy"] == "DSE"
    # Per-query span summaries and scheduler decisions ride along, and
    # the final drain snapshot is archived too.
    spans, _ = read_archive(archive_dir, kinds=("span",))
    assert len(spans) == 3
    decisions, _ = read_archive(archive_dir, kinds=("decision",))
    assert decisions
    snapshots, _ = read_archive(archive_dir, kinds=("snapshot",))
    assert snapshots

    # The Prometheus rendering gains the slo/archive families.
    text = service_prometheus_text(snapshot)
    assert "repro_service_slo_compliance" in text
    assert "repro_service_slo_burn_rate" in text
    assert "repro_service_archive_records_total" in text
    assert "repro_service_archive_dropped_total 0.0" in text
