"""Cross-PR bench regression tracking (`repro.parallel.trend`)."""

import json
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError
from repro.parallel.bench import SUITE
from repro.parallel.trend import (
    TREND_METRICS,
    compare_reports,
    find_bench_reports,
    format_trend,
    load_bench_report,
    parse_percent,
    trend_rows,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def _report(**derived) -> dict:
    values = {"dqp_batches_per_sec": 10_000.0,
              "kernel_events_per_sec": 500_000.0,
              "parallel_speedup": 2.0,
              "warm_cache_fraction": 0.05,
              "service_qps": 30.0,
              "service_p50_latency_s": 1.5,
              "service_p99_latency_s": 12.0,
              "service_worker_speedup": 1.6}
    values.update(derived)
    return {"suite": SUITE, "schema_version": 1, "derived": values}


# --------------------------------------------------------------------------
# parse_percent
# --------------------------------------------------------------------------

def test_parse_percent_accepts_both_spellings():
    assert parse_percent("10%") == pytest.approx(0.10)
    assert parse_percent(" 2.5% ") == pytest.approx(0.025)
    assert parse_percent("0.1") == pytest.approx(0.1)
    assert parse_percent("0") == 0.0


def test_parse_percent_rejects_garbage_and_out_of_range():
    for bad in ["ten percent", "%", "-5%", "100%", "1.5"]:
        with pytest.raises(ConfigurationError):
            parse_percent(bad)


# --------------------------------------------------------------------------
# load_bench_report
# --------------------------------------------------------------------------

def test_load_bench_report_friendly_errors(tmp_path):
    with pytest.raises(ConfigurationError, match="not found"):
        load_bench_report(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{truncated")
    with pytest.raises(ConfigurationError, match="unreadable"):
        load_bench_report(bad)
    alien = tmp_path / "alien.json"
    alien.write_text('{"suite": "something-else", "derived": {}}')
    with pytest.raises(ConfigurationError, match="not a"):
        load_bench_report(alien)


# --------------------------------------------------------------------------
# compare_reports and the regression direction per metric
# --------------------------------------------------------------------------

def test_self_compare_never_regresses():
    report = _report()
    comparisons = compare_reports(report, report, 0.10)
    assert len(comparisons) == len(TREND_METRICS)
    assert all(c.change_fraction == 0.0 for c in comparisons)
    assert not any(c.regressed(0.0) for c in comparisons)


def test_throughput_drop_beyond_budget_regresses():
    baseline = _report()
    current = _report(dqp_batches_per_sec=8_500.0)  # -15%
    by_name = {c.metric: c for c in compare_reports(baseline, current, 0.10)}
    slowed = by_name["dqp_batches_per_sec"]
    assert slowed.change_fraction == pytest.approx(-0.15)
    assert slowed.regressed(0.10)
    assert not slowed.regressed(0.20)  # looser budget tolerates it
    assert not by_name["parallel_speedup"].regressed(0.10)


def test_warm_cache_fraction_regresses_when_it_grows():
    baseline = _report()
    current = _report(warm_cache_fraction=0.06)  # +20% = worse
    by_name = {c.metric: c for c in compare_reports(baseline, current, 0.10)}
    cache = by_name["warm_cache_fraction"]
    assert cache.change_fraction == pytest.approx(-0.20)
    assert cache.regressed(0.10)
    # ... and an *improvement* (smaller fraction) never regresses.
    better = {c.metric: c for c in compare_reports(
        baseline, _report(warm_cache_fraction=0.01), 0.10)}
    assert better["warm_cache_fraction"].change_fraction > 0
    assert not better["warm_cache_fraction"].regressed(0.0)


def test_sweep_shape_metrics_are_advisory_across_configs():
    # warm_cache_fraction and parallel_speedup depend on the sweep
    # shape; when the configs differ (CI's reduced run vs the committed
    # full-config baseline) they are reported but never gated.
    baseline = dict(_report(), config={"scale": 0.2, "repetitions": 1})
    current = dict(_report(warm_cache_fraction=0.5, parallel_speedup=0.1),
                   config={"scale": 0.05, "repetitions": 2})
    by_name = {c.metric: c for c in compare_reports(baseline, current, 0.10)}
    assert by_name["warm_cache_fraction"].advisory
    assert not by_name["warm_cache_fraction"].regressed(0.10)
    assert not by_name["parallel_speedup"].regressed(0.10)
    assert "advisory" in " ".join(by_name["parallel_speedup"].row())
    # The service figures depend on the arrival schedule, so they are
    # config-sensitive too: a reduced CI load test never gates them.
    worse_service = {c.metric: c for c in compare_reports(
        baseline, dict(current, derived=dict(
            current["derived"], service_p99_latency_s=999.0)), 0.10)}
    assert worse_service["service_p99_latency_s"].advisory
    assert not worse_service["service_p99_latency_s"].regressed(0.10)
    # ... but a rate collapse still gates even across configs.
    slowed = {c.metric: c for c in compare_reports(
        baseline, dict(current, derived=dict(
            current["derived"], dqp_batches_per_sec=100.0)), 0.10)}
    assert slowed["dqp_batches_per_sec"].regressed(0.10)
    # Same config keeps everything gated.
    same = {c.metric: c for c in compare_reports(
        baseline, dict(baseline, derived=dict(
            baseline["derived"], warm_cache_fraction=0.5)), 0.10)}
    assert same["warm_cache_fraction"].regressed(0.10)


def test_metrics_missing_from_either_side_are_skipped():
    baseline = _report()
    del baseline["derived"]["parallel_speedup"]
    comparisons = compare_reports(baseline, _report(), 0.10)
    assert "parallel_speedup" not in {c.metric for c in comparisons}


# --------------------------------------------------------------------------
# The BENCH_PR*.json series
# --------------------------------------------------------------------------

def test_find_bench_reports_sorts_by_pr_number(tmp_path):
    for name in ["BENCH_PR10.json", "BENCH_PR2.json", "BENCH_PR4.json"]:
        (tmp_path / name).write_text(json.dumps(_report()))
    (tmp_path / "BENCH_notes.json").write_text("{}")  # no PR number: ignored
    paths = find_bench_reports(tmp_path)
    assert [p.name for p in paths] == [
        "BENCH_PR2.json", "BENCH_PR4.json", "BENCH_PR10.json"]


def test_trend_rows_and_format_trend(tmp_path):
    (tmp_path / "BENCH_PR3.json").write_text(json.dumps(_report()))
    (tmp_path / "BENCH_PR4.json").write_text(json.dumps(
        _report(dqp_batches_per_sec=12_000.0)))
    paths = find_bench_reports(tmp_path)
    series = trend_rows(paths)
    assert series["dqp_batches_per_sec"] == [10_000.0, 12_000.0]

    table = format_trend(paths)
    assert "PR3 -> PR4" in table
    assert "dqp_batches_per_sec" in table
    assert "+20.0%" in table  # first -> last trajectory


def test_format_trend_with_no_reports():
    assert "no BENCH_PR*.json" in format_trend([])


# --------------------------------------------------------------------------
# The committed baseline for this PR
# --------------------------------------------------------------------------

def test_committed_bench_pr10_is_a_loadable_nonregressing_baseline():
    report = load_bench_report(REPO_ROOT / "BENCH_PR10.json")
    for metric in TREND_METRICS:
        assert metric in report["derived"], f"{metric} missing from baseline"
    comparisons = compare_reports(report, report, 0.10)
    assert not any(c.regressed(0.10) for c in comparisons)


def test_committed_series_includes_this_pr_in_order():
    paths = find_bench_reports(REPO_ROOT)
    names = [p.name for p in paths]
    assert "BENCH_PR4.json" in names
    assert names == sorted(
        names, key=lambda n: int(n[len("BENCH_PR"):-len(".json")]))
