"""Tests for the command-line interface and CSV export."""

import csv

import pytest

from repro.cli import build_parser, main
from repro.experiments.report import write_csv


# --------------------------------------------------------------------------
# CSV export
# --------------------------------------------------------------------------

def test_write_csv_roundtrip(tmp_path):
    target = tmp_path / "out" / "series.csv"
    written = write_csv(target, ["a", "b"], [["1", "2"], ["3", "4"]])
    assert written.exists()
    with written.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]


def test_write_csv_rejects_ragged(tmp_path):
    with pytest.raises(ValueError):
        write_csv(tmp_path / "x.csv", ["a", "b"], [["1"]])


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_accepts_all_commands():
    parser = build_parser()
    for argv in [["table1"], ["plan"], ["fig6"], ["fig8"],
                 ["run"], ["live"], ["multiquery"]]:
        args = parser.parse_args(argv)
        assert args.command == argv[0]


# --------------------------------------------------------------------------
# Commands (tiny scales so they run in milliseconds)
# --------------------------------------------------------------------------

def test_cmd_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "CPU Speed" in out and "100 Mips" in out


def test_cmd_plan(capsys):
    assert main(["plan", "--scale", "0.02"]) == 0
    out = capsys.readouterr().out
    assert "pA: scan(A)" in out
    assert "blocking" in out


def test_cmd_fig6(capsys, tmp_path):
    target = tmp_path / "fig6.csv"
    assert main(["fig6", "--scale", "0.02", "--retrieval-times", "0.1",
                 "--csv", str(target)]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert target.exists()


def test_cmd_fig6_relation_f_is_fig7(capsys):
    assert main(["fig6", "--scale", "0.02", "--relation", "F",
                 "--retrieval-times", "0.1"]) == 0
    assert "Figure 7" in capsys.readouterr().out


def test_cmd_fig8(capsys, tmp_path):
    target = tmp_path / "fig8.csv"
    assert main(["fig8", "--scale", "0.02", "--waits-us", "10", "40",
                 "--csv", str(target)]) == 0
    out = capsys.readouterr().out
    assert "Figure 8" in out
    with target.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["w_min_us", "SEQ_s", "DSE_s", "gain_pct", "LWB_s"]
    assert len(rows) == 3


def test_cmd_run(capsys):
    assert main(["run", "--scale", "0.02", "--strategy", "SEQ"]) == 0
    out = capsys.readouterr().out
    assert "SEQ:" in out and "LWB" in out


def test_cmd_run_with_slow_source(capsys):
    assert main(["run", "--scale", "0.02", "--strategy", "DSE",
                 "--slow", "F:10", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "DSE:" in out


def test_cmd_run_bad_slow_spec():
    with pytest.raises(SystemExit):
        main(["run", "--scale", "0.02", "--slow", "nonsense"])


def test_cmd_run_unknown_relation():
    with pytest.raises(SystemExit):
        main(["run", "--scale", "0.02", "--slow", "Z:10"])


def test_cmd_run_dphj(capsys):
    assert main(["run", "--scale", "0.02", "--strategy", "DPHJ"]) == 0
    out = capsys.readouterr().out
    assert "DPHJ:" in out and "peak" in out


def test_cmd_run_with_error_and_reopt(capsys):
    assert main(["run", "--scale", "0.02", "--strategy", "SEQ",
                 "--error", "J1:3", "--reopt"]) == 0
    out = capsys.readouterr().out
    assert "misestimates detected" in out
    assert "joins swapped" in out


def test_cmd_run_unknown_error_join():
    with pytest.raises(SystemExit):
        main(["run", "--scale", "0.02", "--error", "J9:3"])


def test_cmd_fig6_unknown_relation():
    with pytest.raises(SystemExit):
        main(["fig6", "--scale", "0.02", "--relation", "Z",
              "--retrieval-times", "0.1"])


def test_cmd_multiquery(capsys):
    assert main(["multiquery", "--scale", "0.02", "--queries", "2",
                 "--waits-us", "20"]) == 0
    out = capsys.readouterr().out
    assert "concurrent queries" in out


def test_cmd_live_runs_both_strategies(capsys):
    # Tiny and fast sources: this hits the real asyncio backend but only
    # for a fraction of a second of wall clock.
    assert main(["live", "--scale", "0.005", "--wait-us", "30",
                 "--slow", "A:5", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "SEQ:" in out and "DSE:" in out
    assert "DSE vs SEQ:" in out
    assert "stalls:" in out


def test_cmd_live_unknown_relation():
    with pytest.raises(SystemExit):
        main(["live", "--scale", "0.005", "--slow", "Z:10"])


def test_cmd_live_assert_needs_both_strategies():
    with pytest.raises(SystemExit):
        main(["live", "--scale", "0.005", "--strategy", "dse",
              "--assert-dse-not-slower"])


# --------------------------------------------------------------------------
# Parallel sweeps and the bench suite
# --------------------------------------------------------------------------

def test_cmd_fig6_parallel_and_cached_match_serial(capsys, tmp_path):
    argv = ["fig6", "--scale", "0.02", "--retrieval-times", "0.1", "0.2"]
    assert main(argv) == 0
    serial_out = capsys.readouterr().out

    assert main(argv + ["--jobs", "2"]) == 0
    assert capsys.readouterr().out == serial_out

    cache = str(tmp_path / "cache")
    assert main(argv + ["--cache-dir", cache]) == 0
    assert capsys.readouterr().out == serial_out
    assert main(argv + ["--cache-dir", cache]) == 0  # warm
    assert capsys.readouterr().out == serial_out
    assert main(argv + ["--cache-dir", cache, "--no-cache"]) == 0
    assert capsys.readouterr().out == serial_out


def test_cmd_multiquery_accepts_jobs(capsys):
    assert main(["multiquery", "--scale", "0.02", "--queries", "2",
                 "--waits-us", "20", "--jobs", "2"]) == 0
    assert "concurrent queries" in capsys.readouterr().out


def test_cmd_bench_writes_report(capsys, tmp_path):
    import json

    target = tmp_path / "bench.json"
    assert main(["bench", "--scale", "0.02", "--retrieval-times", "0.1",
                 "--best-of", "1", "--jobs", "2",
                 "--service-submissions", "40", "--service-rate", "400",
                 "--out", str(target)]) == 0
    out = capsys.readouterr().out
    assert "parallel sweep" in out and "warm cache" in out
    assert "service" in out

    report = json.loads(target.read_text())
    assert report["suite"] == "repro-parallel-bench"
    assert report["schema_version"] == 1
    assert report["host"]["cpu_count"] >= 1
    names = [case["name"] for case in report["cases"]]
    assert names == ["dqp_batch_loop", "kernel_dispatch",
                     "fig6_sweep_jobs1", "fig6_sweep_jobsN",
                     "fig6_sweep_warm_cache", "service_loadtest",
                     "service_loadtest_archive",
                     "service_loadtest_workers"]
    worker_case = report["cases"][-1]
    assert worker_case["workers"] == 2
    assert sum(worker_case["worker_completed"]) == 40
    assert worker_case["steals"] >= 0
    worker_speedup = report["derived"]["service_worker_speedup"]
    if report["host"]["cpu_count"] >= 4:
        assert worker_speedup > 0
    else:
        # Below 4 cores the coordinator and the workers just contend;
        # the ratio is explicitly null rather than a misleading number.
        assert worker_speedup is None
    assert report["derived"]["service_qps"] > 0
    assert report["derived"]["service_archive_qps_ratio"] > 0
    assert report["derived"]["service_p99_latency_s"] >= \
        report["derived"]["service_p50_latency_s"] > 0
    speedup = report["derived"]["parallel_speedup"]
    if report["host"]["cpu_count"] > 1:
        assert speedup > 0
    else:
        # A single-core host cannot demonstrate parallelism: the metric
        # is explicitly null rather than a misleading ~1.0.
        assert speedup is None
    assert 0 < report["derived"]["warm_cache_fraction"] < 1


def test_cmd_bench_assert_speedup_can_fail(capsys, tmp_path):
    import os

    # An impossible bar: guarantees the gate path is exercised -- except
    # on a single-core host, where the gate is explicitly skipped.
    code = main(["bench", "--scale", "0.02", "--retrieval-times", "0.1",
                 "--best-of", "1", "--jobs", "1",
                 "--service-submissions", "40", "--service-rate", "400",
                 "--out", str(tmp_path / "b.json"),
                 "--assert-speedup", "1000"])
    if os.cpu_count() and os.cpu_count() > 1:
        assert code == 1
    else:
        assert code == 0
        assert "skipping --assert-speedup" in capsys.readouterr().out


# --------------------------------------------------------------------------
# Offline telemetry loading (--from), repro top, and the regression gate
# --------------------------------------------------------------------------

def test_cmd_metrics_from_missing_file_exits_2(capsys, tmp_path):
    assert main(["metrics", "--from", str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cmd_metrics_from_truncated_file_exits_2(capsys, tmp_path):
    bad = tmp_path / "truncated.json"
    bad.write_text('{"metrics": {')
    assert main(["metrics", "--from", str(bad)]) == 2
    assert "unreadable" in capsys.readouterr().err


def test_cmd_metrics_from_roundtrips_a_previous_export(capsys, tmp_path):
    exported = tmp_path / "metrics.json"
    assert main(["metrics", "--scale", "0.02", "--strategy", "DSE",
                 "--json", str(exported)]) == 0
    capsys.readouterr()

    prom = tmp_path / "reexport.prom"
    assert main(["metrics", "--from", str(exported),
                 "--prom", str(prom)]) == 0
    out = capsys.readouterr().out
    assert "DSE:" in out and "metrics" in out
    assert prom.read_text().startswith("# HELP repro_response_time_seconds")


def test_cmd_trace_from_missing_file_exits_2(capsys, tmp_path):
    assert main(["trace", "--from", str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cmd_trace_from_summarizes_a_chrome_trace(capsys, tmp_path):
    target = tmp_path / "trace.json"
    assert main(["trace", "--scale", "0.02", "--out", str(target)]) == 0
    capsys.readouterr()
    assert main(["trace", "--from", str(target)]) == 0
    assert "chrome trace:" in capsys.readouterr().out


def _write_flight_dump(tmp_path, with_snapshot=True):
    from repro.observability import ENTRY_BATCH, ENTRY_STALL, FlightRecorder

    recorder = FlightRecorder(capacity=16)
    recorder.record(ENTRY_BATCH, 0.1, fragment="pA", tuples=128)
    recorder.record(ENTRY_STALL, 0.4, cause="source-wait:A", duration=0.2)
    if with_snapshot:
        recorder.latest_snapshot = {
            "strategy": "DSE", "now": 0.4, "result_tuples": 128,
            "batches": 1, "decisions": 0, "stall_time": 0.2,
            "stalls": {"source-wait:A": 0.2},
            "memory": {"used": 0, "total": 8e6, "peak": 0},
            "fragments": [], "queues": {}}
    return recorder.dump(tmp_path / "flight.json", reason="stall")


def test_cmd_trace_from_summarizes_a_flight_dump(capsys, tmp_path):
    dump = _write_flight_dump(tmp_path)
    assert main(["trace", "--from", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "flight-recorder dump: reason=stall" in out
    assert "batch" in out and "stall" in out


def test_cmd_top_replay_renders_the_dump_snapshot(capsys, tmp_path):
    dump = _write_flight_dump(tmp_path)
    assert main(["top", "--replay", str(dump)]) == 0
    out = capsys.readouterr().out
    assert "repro top — DSE" in out
    assert "source-wait:A" in out


def test_cmd_top_replay_without_snapshot_exits_2(capsys, tmp_path):
    dump = _write_flight_dump(tmp_path, with_snapshot=False)
    assert main(["top", "--replay", str(dump)]) == 2
    assert "no live snapshot" in capsys.readouterr().err


def test_cmd_top_replay_missing_dump_exits_2(capsys, tmp_path):
    assert main(["top", "--replay", str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cmd_top_once_with_nothing_listening_exits_2(capsys):
    assert main(["top", "--connect", "127.0.0.1:1", "--once"]) == 2
    assert "cannot stream" in capsys.readouterr().err


def test_bench_default_out_is_this_prs_report():
    args = build_parser().parse_args(["bench"])
    assert args.out == "BENCH_PR10.json"
    assert args.max_regression == "10%"


def test_cmd_bench_compare_bad_baseline_fails_fast(capsys, tmp_path):
    # Exit 2 *before* running the suite: no [case] progress printed.
    assert main(["bench", "--compare", str(tmp_path / "nope.json"),
                 "--out", str(tmp_path / "b.json")]) == 2
    captured = capsys.readouterr()
    assert "not found" in captured.err
    assert "[dqp_batch_loop]" not in captured.out


def test_cmd_bench_compare_bad_budget_fails_fast(capsys, tmp_path):
    import json as _json

    baseline = tmp_path / "base.json"
    baseline.write_text(_json.dumps(
        {"suite": "repro-parallel-bench", "derived": {}}))
    assert main(["bench", "--compare", str(baseline),
                 "--max-regression", "lots",
                 "--out", str(tmp_path / "b.json")]) == 2
    assert "percentage" in capsys.readouterr().err


def test_cmd_bench_compare_gates_an_injected_regression(capsys, tmp_path):
    import json as _json

    argv = ["bench", "--scale", "0.02", "--retrieval-times", "0.1",
            "--best-of", "1", "--jobs", "2",
            "--service-submissions", "40", "--service-rate", "400"]

    # A baseline far slower than any real run: the gate passes.
    modest = {"suite": "repro-parallel-bench", "derived": {
        "dqp_batches_per_sec": 1.0, "kernel_events_per_sec": 1.0}}
    baseline = tmp_path / "modest.json"
    baseline.write_text(_json.dumps(modest))
    assert main(argv + ["--out", str(tmp_path / "pass.json"),
                        "--compare", str(baseline)]) == 0
    assert "REGRESSION" not in capsys.readouterr().out

    # A baseline claiming impossible throughput: every real run is a
    # >=10% regression against it and the gate must fail.
    inflated = {"suite": "repro-parallel-bench", "derived": {
        "dqp_batches_per_sec": 1e12, "kernel_events_per_sec": 1e12}}
    baseline.write_text(_json.dumps(inflated))
    assert main(argv + ["--out", str(tmp_path / "fail.json"),
                        "--compare", str(baseline),
                        "--max-regression", "10%"]) == 1
    out = capsys.readouterr().out
    assert "<< REGRESSION" in out
    assert "FAIL:" in out


# --------------------------------------------------------------------------
# repro explain: the critical-path analyzer
# --------------------------------------------------------------------------

def test_cmd_explain_prints_an_exact_critical_path(capsys):
    assert main(["explain", "--scale", "0.02", "--slow", "C:6",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "critical path:" in out and "(DSE)" in out
    assert "(exact)" in out and "residual" not in out
    assert "longest critical-path segments:" in out


def test_cmd_explain_vs_prints_both_paths_and_the_diff(capsys):
    assert main(["explain", "--scale", "0.02", "--slow", "C:6",
                 "--seed", "5", "--vs", "SEQ"]) == 0
    out = capsys.readouterr().out
    assert "(DSE)" in out and "(SEQ)" in out
    assert "span diff:" in out
    assert "largest contributor to the delta:" in out


def test_cmd_explain_spans_out_export_feeds_explain_from(capsys, tmp_path):
    target = tmp_path / "spans.json"
    assert main(["explain", "--scale", "0.02", "--seed", "5",
                 "--spans-out", str(target)]) == 0
    live_out = capsys.readouterr().out
    assert target.exists()
    assert target.with_suffix(".trace.json").exists()

    assert main(["explain", "--from", str(target)]) == 0
    replay_out = capsys.readouterr().out
    assert "(exact)" in replay_out
    # The export carries the full tree, so the offline attribution
    # reproduces the live category table line for line (the headers
    # differ only in the strategy tag, which the export doesn't carry).
    def table(text):
        return [line for line in text.splitlines()
                if "%" in line or "= response time" in line]

    assert table(replay_out) == table(live_out)
    assert table(replay_out), "no category table rendered"


def test_cmd_explain_from_missing_file_exits_2(capsys, tmp_path):
    assert main(["explain", "--from", str(tmp_path / "nope.json")]) == 2
    assert "not found" in capsys.readouterr().err


def test_cmd_explain_unknown_slow_relation_fails_fast():
    with pytest.raises(SystemExit):
        main(["explain", "--scale", "0.02", "--slow", "ZZ:4"])


def test_cmd_explain_bench_diff(capsys, tmp_path):
    import json as _json

    base = {"suite": "repro-parallel-bench",
            "cases": [{"name": "dqp_hot_loop", "wall_s": 1.0}],
            "derived": {"dqp_batches_per_sec": 20000.0,
                        "parallel_speedup": None}}
    current = {"suite": "repro-parallel-bench",
               "cases": [{"name": "dqp_hot_loop", "wall_s": 1.1}],
               "derived": {"dqp_batches_per_sec": 22000.0,
                           "parallel_speedup": 1.7}}
    base_path = tmp_path / "base.json"
    current_path = tmp_path / "current.json"
    base_path.write_text(_json.dumps(base))
    current_path.write_text(_json.dumps(current))

    assert main(["explain", "--bench-diff", str(base_path),
                 str(current_path)]) == 0
    out = capsys.readouterr().out
    assert "bench diff:" in out
    assert "dqp_hot_loop" in out and "+10.0%" in out
    assert "n/a" in out  # None-valued derived metric renders as n/a


def test_cmd_explain_bench_diff_bad_report_exits_2(capsys, tmp_path):
    bogus = tmp_path / "bogus.json"
    bogus.write_text("{}")
    assert main(["explain", "--bench-diff", str(bogus), str(bogus)]) == 2
    assert "error:" in capsys.readouterr().err


def test_cmd_run_spans_out_writes_a_loadable_export(capsys, tmp_path):
    from repro.observability import explain_spans, load_spans

    target = tmp_path / "run-spans.json"
    assert main(["run", "--scale", "0.02", "--strategy", "DSE",
                 "--seed", "5", "--spans-out", str(target)]) == 0
    assert "spans:" in capsys.readouterr().out
    spans = load_spans(target)
    explanation = explain_spans(spans)
    assert explanation.accounted == explanation.response_time


def test_cmd_run_spans_out_rejects_dphj():
    with pytest.raises(SystemExit, match="DQP engine"):
        main(["run", "--scale", "0.02", "--strategy", "DPHJ",
              "--spans-out", "nope.json"])


# --------------------------------------------------------------------------
# repro history (offline archive queries)
# --------------------------------------------------------------------------

def _write_history_archive(directory, times):
    from repro.observability.archive import SegmentedLog

    log = SegmentedLog(directory)
    for t in times:
        log.write({"kind": "outcome", "t": t, "tenant": "gold",
                   "latency_s": 0.01, "wait_s": 0.0, "ok": True})
    log.close()


def test_cmd_history_missing_archive_exits_2(capsys, tmp_path):
    assert main(["history", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cmd_history_slo_report_needs_an_objective(capsys, tmp_path):
    _write_history_archive(tmp_path / "arch", [1.0])
    assert main(["history", str(tmp_path / "arch"), "--slo-report"]) == 2
    assert "--slo" in capsys.readouterr().err


def test_cmd_history_renders_summary_slo_and_alerts(capsys, tmp_path):
    _write_history_archive(tmp_path / "arch", [float(i) for i in range(5)])
    assert main(["history", str(tmp_path / "arch"), "--slo-report",
                 "--slo", "gold:p99<=1s@99%", "--alerts"]) == 0
    out = capsys.readouterr().out
    assert "5 outcomes (5 ok, 0 failed)" in out
    assert "tenant gold" in out
    assert "slo gold:p99<=1s@99%" in out and "MET" in out


def test_cmd_history_diff_windows(capsys, tmp_path):
    _write_history_archive(tmp_path / "arch",
                           [1.0, 2.0, 11.0, 12.0])
    assert main(["history", str(tmp_path / "arch"),
                 "--diff", "0.5..9", "10..13"]) == 0
    out = capsys.readouterr().out
    assert "window_a" in out and "window_b" in out
    assert "p99_s" in out and "throughput_qps" in out
