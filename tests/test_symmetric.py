"""Tests for double-pipelined (symmetric) hash joins — the operator-level
adaptation comparator of Section 1.1."""

import pytest

from repro import (
    ConfigurationError,
    MemoryOverflowError,
    QueryEngine,
    SimulationParameters,
    SymmetricHashJoinEngine,
    UniformDelay,
    make_policy,
)
from repro.core.symmetric import LEFT, RIGHT, SymmetricPlan
from repro.query import JoinTree


# --------------------------------------------------------------------------
# SymmetricPlan structure
# --------------------------------------------------------------------------

def test_plan_one_join_per_tree_node(tiny_fig5):
    plan = SymmetricPlan(tiny_fig5.catalog, tiny_fig5.tree)
    assert len(plan.joins) == 5
    assert set(plan.paths) == set(tiny_fig5.relation_names)


def test_paths_are_leaf_to_root(tiny_fig5):
    plan = SymmetricPlan(tiny_fig5.catalog, tiny_fig5.tree)
    root = plan.joins[-1]
    for path in plan.paths.values():
        # Every path ends at the root join.
        assert path.steps[-1][0] is root
        # Relation sets widen monotonically along the path.
        sizes = [len(join.left_relations) + len(join.right_relations)
                 for join, _ in path.steps]
        assert sizes == sorted(sizes)


def test_path_sides_match_tree(small_catalog, small_tree):
    plan = SymmetricPlan(small_catalog, small_tree)
    j1 = plan.joins[0]
    assert plan.paths["R"].steps[0] == (j1, LEFT)
    assert plan.paths["S"].steps[0] == (j1, RIGHT)
    root = plan.joins[-1]
    assert plan.paths["T"].steps == [(root, RIGHT)]


def test_plan_rejects_cross_product(small_catalog):
    tree = JoinTree.join(JoinTree.leaf("R"), JoinTree.leaf("T"))
    with pytest.raises(ConfigurationError):
        SymmetricPlan(small_catalog, tree)


def test_total_table_bytes(small_catalog, small_tree):
    plan = SymmetricPlan(small_catalog, small_tree)
    # J1: R(1000) + S(2000); root: RS(2000) + T(1500); x 40 bytes.
    assert plan.total_table_bytes() == (1000 + 2000 + 2000 + 1500) * 40


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------

def run_dphj(workload, waits=None, seed=1, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    if waits is None:
        waits = {name: params.w_min for name in workload.relation_names}
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}
    return SymmetricHashJoinEngine(workload.catalog, workload.tree, delays,
                                   params=params, seed=seed).run()


def test_result_count_matches_asymmetric(tiny_fig5):
    result = run_dphj(tiny_fig5)
    # The expectation model converges to the exact count up to the
    # rounding carried at each level.
    assert result.result_tuples == pytest.approx(1000, abs=5)


def test_result_independent_of_delays(tiny_fig5):
    waits = {name: 20e-6 for name in tiny_fig5.relation_names}
    waits["A"] = 400e-6
    slowed = run_dphj(tiny_fig5, waits=waits)
    normal = run_dphj(tiny_fig5)
    assert slowed.result_tuples == pytest.approx(normal.result_tuples, abs=5)


def test_dphj_absorbs_slow_source_like_dse(mini_fig5):
    """Under a slow source, DPHJ avoids SEQ's stalls (that is its point)."""
    waits = {name: 20e-6 for name in mini_fig5.relation_names}
    waits["A"] = 200e-6
    params = SimulationParameters()
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    seq = QueryEngine(mini_fig5.catalog, mini_fig5.qep, make_policy("SEQ"),
                      delays, params=params, seed=1).run()
    dphj = run_dphj(mini_fig5, waits=waits)
    assert dphj.response_time < seq.response_time


def test_dphj_memory_is_both_sides_everywhere(tiny_fig5):
    """DPHJ's known weakness: every table of both sides stays resident."""
    dphj = run_dphj(tiny_fig5)
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in tiny_fig5.relation_names}
    dse = QueryEngine(tiny_fig5.catalog, tiny_fig5.qep, make_policy("DSE"),
                      delays, params=params, seed=1).run()
    assert dphj.memory_peak_bytes > 2 * dse.memory_peak_bytes


def test_dphj_refuses_insufficient_memory(tiny_fig5):
    plan_bytes = SymmetricPlan(tiny_fig5.catalog,
                               tiny_fig5.tree).total_table_bytes()
    with pytest.raises(MemoryOverflowError):
        run_dphj(tiny_fig5, query_memory_bytes=plan_bytes // 2)


def test_dphj_missing_delay_model(tiny_fig5):
    with pytest.raises(ConfigurationError):
        SymmetricHashJoinEngine(tiny_fig5.catalog, tiny_fig5.tree,
                                {"A": UniformDelay(1e-5)})


def test_dphj_deterministic(tiny_fig5):
    first = run_dphj(tiny_fig5, seed=9)
    second = run_dphj(tiny_fig5, seed=9)
    assert first.response_time == second.response_time
    assert first.result_tuples == second.result_tuples


def test_dphj_single_relation(small_catalog):
    params = SimulationParameters()
    engine = SymmetricHashJoinEngine(
        small_catalog, JoinTree.leaf("R"),
        {"R": UniformDelay(params.w_min)}, params=params)
    result = engine.run()
    assert result.result_tuples == 1000
