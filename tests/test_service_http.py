"""The daemon's HTTP front door and the graceful SIGTERM drain.

Two layers:

* an in-process :class:`~repro.service.http.ServiceServer` exercised
  over real sockets — submit (202/400/429/503), healthz, metrics,
  submissions, the SSE stream;
* a subprocess ``repro serve`` sent a real SIGTERM mid-flight — the
  acceptance shape for graceful drain: in-flight submissions finish,
  new ones get 503, the flight recorder and span log land on disk, and
  the daemon exits 0.
"""

import asyncio
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.resources import TenantSpec
from repro.service import QueryService, ServiceServer, SubmissionRequest

FAST = dict(scale=0.0005, wait_us=20.0, memory_bytes=1 << 20)


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body) if body is not None else None
        conn.request(method, path, payload,
                     {"Content-Type": "application/json"}
                     if payload else {})
        response = conn.getresponse()
        raw = response.read().decode("utf-8")
        try:
            return response.status, json.loads(raw)
        except json.JSONDecodeError:
            return response.status, raw
    finally:
        conn.close()


@pytest.fixture(scope="module")
def http_session(tmp_path_factory):
    """One served service session; every HTTP interaction collected."""
    out = {}
    archive_dir = tmp_path_factory.mktemp("http-archive")
    out["archive_dir"] = archive_dir

    async def scenario():
        from repro.service import parse_slo_specs

        service = QueryService(
            seed=3, global_memory_bytes=4 << 20,
            tenants=[TenantSpec("vip", priority=1.0),
                     TenantSpec("capped", memory_limit_bytes=1024)],
            publish_interval_s=0.05, archive_dir=archive_dir,
            slos=parse_slo_specs(["vip:p99<=60s@99%"]))
        await service.start()
        server = ServiceServer(service).start()
        loop = asyncio.get_running_loop()

        def client_side():
            port = server.port
            out["submit"] = _request(port, "POST", "/submit",
                                     dict(FAST, tenant="vip"))
            out["bad_json"] = _request(port, "POST", "/submit", "nonsense")
            out["bad_field"] = _request(port, "POST", "/submit",
                                        {"bogus": 1})
            out["quota"] = _request(port, "POST", "/submit",
                                    dict(FAST, tenant="capped"))
            out["not_found"] = _request(port, "GET", "/submissions/s-999999")
            out["unknown"] = _request(port, "GET", "/nope")
            submission_id = out["submit"][1]["id"]
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                status, record = _request(port, "GET",
                                          f"/submissions/{submission_id}")
                assert status == 200
                if record["state"] in ("done", "failed"):
                    break
                time.sleep(0.05)
            out["record"] = record
            # Let a publish tick fold the completion into the snapshot.
            time.sleep(0.15)
            out["healthz"] = _request(port, "GET", "/healthz")
            out["slo"] = _request(port, "GET", "/slo")
            out["metrics"] = _request(port, "GET", "/metrics")
            out["submissions"] = _request(port, "GET", "/submissions")
            _request(port, "POST", "/drain")
            out["post_drain_submit"] = _request(port, "POST", "/submit",
                                                dict(FAST, tenant="vip"))

        def read_stream():
            # Runs concurrently with stop(): the end marker only arrives
            # once the publisher closes during the service's shutdown.
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=10)
            conn.request("GET", "/stream",
                         headers={"Accept": "text/event-stream"})
            response = conn.getresponse()
            assert response.status == 200
            frames, saw_end = [], False
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith("data:"):
                    frames.append(json.loads(line.split(":", 1)[1]))
                elif line.startswith("event:") and "end" in line:
                    saw_end = True
                    break
            conn.close()
            out["frames"], out["saw_end"] = frames, saw_end

        stream_task = None
        try:
            await loop.run_in_executor(None, client_side)
            stream_task = loop.run_in_executor(None, read_stream)
            await service.wait_drained()
            await service.stop()
            await stream_task
            stream_task = None
        finally:
            if stream_task is not None:
                await service.stop()
                await stream_task
            server.stop()

    asyncio.run(scenario())
    return out


def test_submit_is_accepted_with_an_id(http_session):
    status, body = http_session["submit"]
    assert status == 202
    assert re.fullmatch(r"s-\d{6}", body["id"])
    assert body["tenant"] == "vip"


def test_submission_record_is_queryable_until_done(http_session):
    record = http_session["record"]
    assert record["state"] == "done", record
    assert record["outcome"]["result_tuples"] > 0
    assert record["latency_s"] > 0


def test_malformed_bodies_get_400(http_session):
    assert http_session["bad_json"][0] == 400
    assert http_session["bad_field"][0] == 400
    assert "unknown submission field" in http_session["bad_field"][1]["error"]


def test_quota_exhaustion_gets_429_with_the_tenant(http_session):
    status, body = http_session["quota"]
    assert status == 429
    assert body["tenant"] == "capped"


def test_unknown_paths_and_ids_get_404(http_session):
    assert http_session["not_found"][0] == 404
    assert http_session["unknown"][0] == 404


def test_healthz_and_metrics_reflect_the_session(http_session):
    status, health = http_session["healthz"]
    assert status == 200 and health["status"] == "ok"
    assert health["snapshots"] >= 1
    status, text = http_session["metrics"]
    assert status == 200
    assert "repro_service_up 1.0" in text
    assert 'repro_service_tenant_completed_total{tenant="vip"} 1.0' in text


def test_healthz_reports_uptime_drain_state_and_archive(http_session):
    _status, health = http_session["healthz"]
    assert health["uptime_s"] >= 0.0
    assert health["state"] == "serving"
    assert health["draining"] is False
    assert health["alerts"] == 0
    archive = health["archive"]
    assert archive["directory"] == str(http_session["archive_dir"])
    assert archive["segments"] >= 1          # the active segment exists
    assert archive["dropped_total"] == 0
    assert archive["records_written"] >= 1   # the finished submission
    assert archive["last_write_age_s"] is not None


def test_slo_endpoint_reports_the_declared_objective(http_session):
    status, body = http_session["slo"]
    assert status == 200
    assert body["alerts"] == 0
    objectives = {o["objective"]: o for o in body["objectives"]}
    assert set(objectives) == {"vip:p99<=60s@99%"}
    status = objectives["vip:p99<=60s@99%"]
    assert status["events"] >= 1             # the completed submission
    assert status["bad"] == 0
    assert status["alerting"] is False
    assert set(status["windows"]) == {"fast", "slow"}


def test_archive_replays_the_session_outcomes(http_session):
    from repro.service import load_outcomes

    records, reader = load_outcomes(http_session["archive_dir"])
    assert reader.skipped_lines == 0
    finished_id = http_session["record"]["id"]
    assert finished_id in [r["id"] for r in records]
    assert all(r["tenant"] == "vip" for r in records)


def test_submissions_listing_has_the_finished_record(http_session):
    status, listing = http_session["submissions"]
    assert status == 200
    submission_id = http_session["submit"][1]["id"]
    assert submission_id in [r["id"] for r in listing["recent"]]


def test_submit_during_drain_gets_503(http_session):
    status, body = http_session["post_drain_submit"]
    assert status == 503
    assert "draining" in body["error"]


def test_stream_delivers_service_frames_then_ends(http_session):
    assert http_session["frames"], "SSE stream delivered no frames"
    frame = http_session["frames"][0]
    assert frame["kind"] == "service"
    assert {"version", "latency", "tenants", "pool"} <= set(frame)
    assert http_session["saw_end"], "stream never sent the end marker"


# --------------------------------------------------------------------------
# Graceful SIGTERM drain, end to end (a real `repro serve` subprocess)
# --------------------------------------------------------------------------

@pytest.mark.skipif(os.name == "nt", reason="POSIX signals")
def test_sigterm_drains_in_flight_work_and_flushes_recorders(
        tmp_path, capsys):
    flight = tmp_path / "flight.json"
    spans = tmp_path / "spans.json"
    archive_dir = tmp_path / "archive"
    repo = Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--global-memory", "64M", "--tenant", "gold:2",
         "--publish-interval", "0.1",
         "--archive-dir", str(archive_dir),
         "--slo", "gold:p99<=60s@99%",
         "--flight-dump", str(flight), "--span-dump", str(spans)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=repo)
    try:
        url = None
        for line in daemon.stdout:
            match = re.search(r"serving on http://\S+:(\d+)", line)
            if match:
                url, port = match.group(0), int(match.group(1))
                break
        assert url is not None, "daemon never printed its address"

        # One slow-ish submission that will still be in flight at SIGTERM.
        status, body = _request(port, "POST", "/submit", {
            "tenant": "gold", "scale": 0.002, "wait_us": 2000.0,
            "memory_bytes": 1 << 20})
        assert status == 202, body

        daemon.send_signal(signal.SIGTERM)
        # The daemon keeps serving while draining: the in-flight query
        # finishes, but new submissions are refused with 503.  Wait for
        # the signal handler to land before probing.
        deadline = time.monotonic() + 10.0
        draining = False
        while time.monotonic() < deadline and not draining:
            try:
                status, health = _request(port, "GET", "/healthz")
                draining = status == 200 and health["draining"]
            except OSError:
                pass
            if not draining:
                time.sleep(0.05)
        assert draining, "daemon never reported draining after SIGTERM"
        refused = _request(port, "POST", "/submit",
                           dict(FAST, tenant="gold"))
        assert refused[0] == 503, refused

        stdout, _ = daemon.communicate(timeout=60.0)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate()

    assert daemon.returncode == 0, stdout
    assert "SIGTERM: draining" in stdout
    summary = re.search(r"drained: (\d+) completed, (\d+) failed, "
                        r"(\d+) rejected", stdout)
    assert summary is not None, stdout
    completed, failed, rejected = map(int, summary.groups())
    assert completed == 1, stdout     # the in-flight query finished
    assert failed == 0, stdout
    assert rejected >= 1, stdout      # the 503'd submission

    dump = json.loads(flight.read_text())
    assert dump["reason"] == "drain"
    assert dump["snapshot"]["draining"] is True
    span_export = json.loads(spans.read_text())
    assert span_export["spans"], "span log flushed empty"

    # The SIGTERM drain flushed the durable archive: `repro history`
    # replays the completed outcome (with its SLO report) offline, from
    # the files alone -- the daemon is gone.
    from repro.cli import main

    assert main(["history", str(archive_dir), "--json", "--slo-report",
                 "--slo", "gold:p99<=60s@99%"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["skipped_lines"] == 0
    assert report["summary"]["completed"] == 1
    assert report["summary"]["tenants"]["gold"]["completed"] == 1
    (slo,) = report["slo"]
    assert slo["objective"] == "gold:p99<=60s@99%"
    assert slo["met"] is True
