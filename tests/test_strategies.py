"""Tests for the SEQ / MA / DSE policies and the LWB."""

import pytest

from repro.config import SimulationParameters
from repro.core.engine import QueryEngine
from repro.core.strategies import (
    DsePolicy,
    MaterializeAllPolicy,
    SequentialPolicy,
    lower_bound,
    make_policy,
)
from repro.wrappers import ConstantDelay, UniformDelay


def run(workload, strategy, waits=None, seed=1, trace=False, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    if waits is None:
        waits = {name: params.w_min for name in workload.relation_names}
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}
    engine = QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                         delays, params=params, seed=seed, trace=trace)
    return engine.run()


# --------------------------------------------------------------------------
# make_policy
# --------------------------------------------------------------------------

def test_make_policy_by_name():
    assert isinstance(make_policy("SEQ"), SequentialPolicy)
    assert isinstance(make_policy("ma"), MaterializeAllPolicy)
    assert isinstance(make_policy("DSE"), DsePolicy)


def test_make_policy_unknown():
    with pytest.raises(ValueError):
        make_policy("TURBO")


# --------------------------------------------------------------------------
# Correctness: every strategy computes the same result
# --------------------------------------------------------------------------

def test_all_strategies_same_result_count(tiny_fig5):
    expected = round(50_000 * 0.02)
    for strategy in ["SEQ", "MA", "DSE"]:
        result = run(tiny_fig5, strategy)
        assert result.result_tuples == expected, strategy


def test_results_independent_of_delays(tiny_fig5):
    slow = {name: 20e-6 for name in tiny_fig5.relation_names}
    slow["F"] = 500e-6
    for strategy in ["SEQ", "MA", "DSE"]:
        result = run(tiny_fig5, strategy, waits=slow)
        assert result.result_tuples == 1000, strategy


# --------------------------------------------------------------------------
# SEQ behaviour
# --------------------------------------------------------------------------

def test_seq_never_degrades(tiny_fig5):
    result = run(tiny_fig5, "SEQ")
    assert result.degradations == 0
    assert result.tuples_spilled == 0


def test_seq_processes_chains_in_iterator_order(tiny_fig5):
    result = run(tiny_fig5, "SEQ", trace=True)
    completions = [e.message for e in result.tracer.filter("chain-complete")]
    assert completions == ["pA", "pB", "pF", "pE", "pD", "pC"]


def test_seq_stalls_on_slow_source(tiny_fig5):
    slow = {name: 20e-6 for name in tiny_fig5.relation_names}
    slow["A"] = 2e-3
    result = run(tiny_fig5, "SEQ", waits=slow)
    assert result.stall_time > 0.5 * result.response_time


# --------------------------------------------------------------------------
# MA behaviour
# --------------------------------------------------------------------------

def test_ma_degrades_every_chain(tiny_fig5):
    result = run(tiny_fig5, "MA")
    assert result.degradations == len(tiny_fig5.qep.chains)
    total_tuples = sum(r.cardinality for r in tiny_fig5.catalog)
    assert result.tuples_spilled == total_tuples
    assert result.tuples_reloaded == total_tuples


def test_ma_materializes_before_processing(tiny_fig5):
    result = run(tiny_fig5, "MA", trace=True)
    seals = [e for e in result.tracer.filter("temp-seal")]
    completions = [e for e in result.tracer.filter("chain-complete")]
    assert max(s.time for s in seals) <= min(c.time for c in completions)


def test_ma_overlaps_delivery_delays(tiny_fig5):
    """Two slowed relations: MA pays their retrieval only once (overlap)."""
    waits = {name: 20e-6 for name in tiny_fig5.relation_names}
    waits["A"] = 1e-3
    waits["F"] = 1e-3
    result = run(tiny_fig5, "MA", waits=waits)
    card_a = tiny_fig5.catalog.relation("A").cardinality
    card_f = tiny_fig5.catalog.relation("F").cardinality
    both_retrievals = (card_a + card_f) * 1e-3
    assert result.response_time < both_retrievals


# --------------------------------------------------------------------------
# DSE behaviour
# --------------------------------------------------------------------------

def test_dse_beats_seq_with_slow_source(mini_fig5):
    waits = {name: 20e-6 for name in mini_fig5.relation_names}
    waits["F"] = 400e-6
    seq = run(mini_fig5, "SEQ", waits=waits)
    dse = run(mini_fig5, "DSE", waits=waits)
    assert dse.response_time < seq.response_time


def test_dse_no_degradation_on_fast_network(tiny_fig5):
    fast = {name: 2e-6 for name in tiny_fig5.relation_names}
    result = run(tiny_fig5, "DSE", waits=fast, w_min=2e-6)
    assert result.degradations == 0


def test_dse_degrades_blocked_critical_chains(mini_fig5):
    waits = {name: 20e-6 for name in mini_fig5.relation_names}
    waits["F"] = 400e-6
    result = run(mini_fig5, "DSE", waits=waits, trace=True)
    degraded = [e.message for e in result.tracer.filter("degrade")]
    assert "pF" in degraded


def test_dse_partial_materialization_stops_mf(mini_fig5):
    waits = {name: 20e-6 for name in mini_fig5.relation_names}
    waits["F"] = 100e-6
    result = run(mini_fig5, "DSE", waits=waits, trace=True)
    stops = [e.message for e in result.tracer.filter("mf-stop")]
    assert stops, "expected at least one MF to be stopped early"
    # A stopped MF means F was only partially spilled.
    card_f = mini_fig5.catalog.relation("F").cardinality
    if "MF(pF)" in stops:
        spilled_f = next(
            e.payload["tuples_in"] for e in result.tracer.filter("fragment-done")
            if e.message == "MF(pF)")
        assert spilled_f < card_f


def test_dse_rate_change_triggers_replanning(mini_fig5):
    """A source that suddenly slows mid-run fires RateChange events."""
    from repro.wrappers.delays import BurstyDelay
    params = SimulationParameters()
    delays = {name: UniformDelay(20e-6) for name in mini_fig5.relation_names}
    # F: normal for the first burst, then long gaps (rate collapses).
    delays["F"] = BurstyDelay(burst_tuples=5000, gap=0.5,
                              within_burst_wait=20e-6)
    engine = QueryEngine(mini_fig5.catalog, mini_fig5.qep, make_policy("DSE"),
                         delays, params=params, seed=2)
    result = engine.run()
    assert result.rate_change_events >= 1
    assert result.result_tuples == 5000


def test_dse_keeps_engine_busy(mini_fig5):
    waits = {name: 20e-6 for name in mini_fig5.relation_names}
    seq = run(mini_fig5, "SEQ", waits=waits)
    dse = run(mini_fig5, "DSE", waits=waits)
    assert dse.stall_time < seq.stall_time


# --------------------------------------------------------------------------
# LWB
# --------------------------------------------------------------------------

def test_lwb_below_all_strategies(tiny_fig5):
    params = SimulationParameters()
    waits = {name: params.w_min for name in tiny_fig5.relation_names}
    bound = lower_bound(tiny_fig5.qep, waits, params)
    for strategy in ["SEQ", "MA", "DSE"]:
        result = run(tiny_fig5, strategy)
        # 1% slack: the bound is on expected delays, runs are sampled.
        assert bound <= result.response_time * 1.01, strategy


def test_lwb_retrieval_term_dominates_when_slow(tiny_fig5):
    params = SimulationParameters()
    waits = {name: params.w_min for name in tiny_fig5.relation_names}
    waits["F"] = 10e-3
    bound = lower_bound(tiny_fig5.qep, waits, params)
    card_f = tiny_fig5.catalog.relation("F").cardinality
    assert bound == pytest.approx(card_f * 10e-3)


def test_lwb_cpu_term_dominates_when_fast(tiny_fig5):
    params = SimulationParameters()
    waits = {name: 1e-9 for name in tiny_fig5.relation_names}
    bound = lower_bound(tiny_fig5.qep, waits, params)
    assert bound > 0
    # Must equal the total CPU term: much larger than any retrieval.
    slowest = max(tiny_fig5.catalog.relation(n).cardinality * 1e-9
                  for n in tiny_fig5.relation_names)
    assert bound > slowest


def test_lwb_missing_source_rejected(tiny_fig5):
    from repro.common.errors import SchedulingError
    params = SimulationParameters()
    with pytest.raises(SchedulingError):
        lower_bound(tiny_fig5.qep, {"A": 1e-5}, params)


def test_engine_lower_bound_uses_delay_means(tiny_fig5):
    params = SimulationParameters()
    delays = {name: ConstantDelay(5e-5) for name in tiny_fig5.relation_names}
    engine = QueryEngine(tiny_fig5.catalog, tiny_fig5.qep, make_policy("SEQ"),
                         delays, params=params)
    waits = {name: 5e-5 for name in tiny_fig5.relation_names}
    assert engine.lower_bound() == pytest.approx(
        lower_bound(tiny_fig5.qep, waits, params))
