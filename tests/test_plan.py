"""Tests for macro-expansion, pipeline chains and plan validation."""

import pytest

from repro.common.errors import PlanError
from repro.plan import (
    MatOp,
    OutputOp,
    ProbeOp,
    ScanOp,
    ancestor_closure,
    build_qep,
    direct_ancestors,
    iterator_order,
    validate_qep,
)
from repro.plan.operators import JoinSpec
from repro.plan.qep import QEP, PipelineChain
from repro.query import JoinTree


# --------------------------------------------------------------------------
# Macro-expansion (builder)
# --------------------------------------------------------------------------

def test_left_deep_expansion(small_qep):
    assert [c.name for c in small_qep.chains] == ["pR", "pS", "pT"]
    assert small_qep.chain("pR").describe() == "pR: scan(R) -> mat[J1]"
    assert small_qep.chain("pS").describe() == "pS: scan(S) -> probe[J1] -> mat[J2]"
    assert small_qep.chain("pT").describe() == "pT: scan(T) -> probe[J2] -> output"


def test_exactly_one_root(small_qep):
    assert small_qep.root.name == "pT"
    assert sum(1 for c in small_qep.chains if c.is_root) == 1


def test_bushy_expansion_iterator_order(tiny_fig5):
    # Build sides expand before probe sides: {pA, pB, pF, pE, pD, pC}.
    assert [c.name for c in tiny_fig5.qep.chains] == [
        "pA", "pB", "pF", "pE", "pD", "pC"]


def test_fig5_dependency_constraints(tiny_fig5):
    closure = ancestor_closure(tiny_fig5.qep)
    # pA blocks pB and pF (Section 5.2).
    assert "pA" in closure["pB"]
    assert "pA" in closure["pF"]
    # pC blocks no other PC.
    assert all("pC" not in ancestors for name, ancestors in closure.items()
               if name != "pC")
    # The root depends on everything.
    assert closure["pC"] == {"pA", "pB", "pD", "pE", "pF"}


def test_cardinality_annotations_flow(small_catalog, small_tree):
    qep = build_qep(small_catalog, small_tree)
    j1 = qep.joins["J1"]
    assert j1.estimated_build_cardinality == pytest.approx(1000)
    assert j1.estimated_output_cardinality == pytest.approx(2000)
    j2 = qep.joins["J2"]
    assert j2.estimated_build_cardinality == pytest.approx(2000)
    assert j2.estimated_output_cardinality == pytest.approx(1500)


def test_scan_selectivity_applies(small_catalog, small_tree):
    qep = build_qep(small_catalog, small_tree,
                    scan_selectivities={"S": 0.5})
    scan = qep.chain("pS").scan
    assert scan.estimated_output_cardinality == pytest.approx(1000)
    # Downstream estimates shrink accordingly.
    assert qep.joins["J1"].estimated_output_cardinality == pytest.approx(1000)


def test_actual_output_factors(small_catalog, small_tree):
    qep = build_qep(small_catalog, small_tree,
                    actual_output_factors={"J1": 2.0})
    j1 = qep.joins["J1"]
    assert j1.estimated_output_cardinality == pytest.approx(2000)
    assert j1.actual_output_cardinality == pytest.approx(4000)
    # The error propagates into J2's actual build cardinality.
    j2 = qep.joins["J2"]
    assert j2.actual_build_cardinality == pytest.approx(4000)
    assert j2.estimated_build_cardinality == pytest.approx(2000)


def test_unknown_factor_rejected(small_catalog, small_tree):
    with pytest.raises(PlanError):
        build_qep(small_catalog, small_tree, actual_output_factors={"J9": 2.0})


def test_cross_product_rejected(small_catalog):
    tree = JoinTree.join(JoinTree.leaf("R"), JoinTree.leaf("T"))  # no edge
    with pytest.raises(PlanError, match="cross product"):
        build_qep(small_catalog, tree)


def test_memory_annotation_is_build_size(small_catalog, small_tree):
    qep = build_qep(small_catalog, small_tree)
    mat = qep.chain("pR").terminal
    assert isinstance(mat, MatOp)
    assert mat.memory_bytes == 1000 * 40
    probe = qep.chain("pS").operators[1]
    assert isinstance(probe, ProbeOp)
    assert probe.memory_bytes == 1000 * 40


# --------------------------------------------------------------------------
# Chains / dependency analysis
# --------------------------------------------------------------------------

def test_direct_ancestors(small_qep):
    direct = direct_ancestors(small_qep)
    assert direct == {"pR": set(), "pS": {"pR"}, "pT": {"pS"}}


def test_ancestor_closure_transitive(small_qep):
    closure = ancestor_closure(small_qep)
    assert closure["pT"] == {"pR", "pS"}


def test_iterator_order_valid(small_qep):
    assert iterator_order(small_qep) == ["pR", "pS", "pT"]


def test_iterator_order_rejects_misordering(small_qep):
    reordered = QEP(list(reversed(small_qep.chains)), small_qep.joins)
    with pytest.raises(PlanError, match="appears before"):
        iterator_order(reordered)


def test_chain_memory_requirement(small_qep):
    chain = small_qep.chain("pS")
    # probe J1 table (40 KB) + mat J2 table (80 KB)
    assert chain.memory_requirement() == 1000 * 40 + 2000 * 40


def test_chain_accessors(small_qep):
    chain = small_qep.chain("pS")
    assert chain.feeds.name == "J2"
    assert [j.name for j in chain.probe_joins()] == ["J1"]
    assert not chain.is_root
    assert len(chain) == 3
    assert small_qep.chain_feeding(small_qep.joins["J1"]).name == "pR"
    assert small_qep.chain_probing(small_qep.joins["J1"]).name == "pS"


def test_unknown_chain_rejected(small_qep):
    with pytest.raises(PlanError):
        small_qep.chain("pZ")


# --------------------------------------------------------------------------
# Validation
# --------------------------------------------------------------------------

def test_validate_accepts_built_plans(small_qep, tiny_fig5):
    validate_qep(small_qep)
    validate_qep(tiny_fig5.qep)


def _chain(name, source, ops):
    return PipelineChain(name, source, ops)


def test_validate_rejects_duplicate_scan(small_catalog):
    join = JoinSpec("J1", ("R",), ("S",), crossing_selectivity=0.001,
                    estimated_build_cardinality=10)
    chains = [
        _chain("p1", "R", [ScanOp(name="s", relation="R"),
                           MatOp(name="m", join=join)]),
        _chain("p2", "R", [ScanOp(name="s", relation="R"),
                           ProbeOp(name="p", join=join),
                           OutputOp(name="o")]),
    ]
    qep = QEP(chains, {"J1": join})
    with pytest.raises(PlanError, match="scanned"):
        validate_qep(qep)


def test_validate_rejects_chain_without_terminal():
    with pytest.raises(PlanError):
        validate_chain_shape = PipelineChain(
            "p1", "R", [ScanOp(name="s", relation="R")])
        qep = QEP([validate_chain_shape], {})
        validate_qep(qep)


def test_validate_rejects_cardinality_mismatch(small_qep):
    small_qep.chain("pS").operators[1].estimated_input_cardinality = 99.0
    with pytest.raises(PlanError, match="does not match upstream"):
        validate_qep(small_qep)


def test_pipeline_chain_requires_scan_head():
    with pytest.raises(PlanError):
        PipelineChain("p", "R", [OutputOp(name="o")])


def test_qep_requires_single_root(small_catalog):
    join = JoinSpec("J1", ("R",), ("S",), crossing_selectivity=0.001)
    chains = [
        _chain("p1", "R", [ScanOp(name="s", relation="R"),
                           OutputOp(name="o")]),
        _chain("p2", "S", [ScanOp(name="s", relation="S"),
                           OutputOp(name="o")]),
    ]
    with pytest.raises(PlanError, match="root"):
        QEP(chains, {"J1": join})
