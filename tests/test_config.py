"""Tests for SimulationParameters (Table 1 + engine knobs)."""

import pytest

from repro.common.errors import ConfigurationError
from repro.config import SimulationParameters, W_MIN_DEFAULT


def test_defaults_match_table1():
    params = SimulationParameters()
    assert params.cpu_mips == 100.0
    assert params.disk_latency == pytest.approx(17e-3)
    assert params.disk_seek_time == pytest.approx(5e-3)
    assert params.disk_transfer_rate == 6_000_000
    assert params.io_cache_pages == 8
    assert params.io_cpu_instructions == 3000
    assert params.num_local_disks == 1
    assert params.tuple_size == 40
    assert params.page_size == 8192
    assert params.move_tuple_instructions == 100
    assert params.hash_search_instructions == 100
    assert params.produce_tuple_instructions == 50
    assert params.network_bandwidth_bits == 100e6
    assert params.message_instructions == 200_000


def test_w_min_default_20us():
    assert W_MIN_DEFAULT == pytest.approx(20e-6)
    assert SimulationParameters().w_min == pytest.approx(20e-6)


def test_derived_tuples_per_page():
    params = SimulationParameters()
    assert params.tuples_per_page == 8192 // 40
    assert params.tuples_per_message == params.tuples_per_page * params.message_pages


def test_effective_batch_defaults_to_message():
    params = SimulationParameters()
    assert params.effective_batch_tuples == params.tuples_per_message
    custom = params.with_overrides(batch_tuples=50)
    assert custom.effective_batch_tuples == 50


def test_instructions_seconds():
    params = SimulationParameters()
    assert params.instructions_seconds(100e6) == pytest.approx(1.0)


def test_receive_cpu_share():
    params = SimulationParameters()
    per_message = 200_000 / 100e6
    assert params.receive_cpu_seconds_per_tuple() == pytest.approx(
        per_message / params.tuples_per_message)


def test_io_seconds_per_tuple_amortizes_positioning():
    params = SimulationParameters()
    transfer_only = params.tuple_size / params.disk_transfer_rate
    full = params.io_seconds_per_tuple()
    assert full > transfer_only
    chunk_tuples = params.io_chunk_pages * params.tuples_per_page
    assert full == pytest.approx(
        transfer_only + (params.disk_latency + params.disk_seek_time) / chunk_tuples)


def test_with_overrides_returns_validated_copy():
    params = SimulationParameters()
    other = params.with_overrides(cpu_mips=200.0)
    assert other.cpu_mips == 200.0
    assert params.cpu_mips == 100.0
    with pytest.raises(ConfigurationError):
        params.with_overrides(cpu_mips=-1)


@pytest.mark.parametrize("field,value", [
    ("cpu_mips", 0), ("page_size", 0), ("tuple_size", -1),
    ("queue_capacity_messages", 0), ("bmt", -1.0), ("timeout", 0),
    ("message_pages", 0), ("w_min", -1e-6), ("repetitions", 0),
])
def test_validation_rejects_bad_values(field, value):
    with pytest.raises(ConfigurationError):
        SimulationParameters(**{field: value})


def test_page_smaller_than_tuple_rejected():
    with pytest.raises(ConfigurationError):
        SimulationParameters(page_size=8, tuple_size=40)


def test_table1_rows_render():
    rows = SimulationParameters().table1_rows()
    labels = [label for label, _ in rows]
    assert "CPU Speed" in labels
    assert "Network Bandwidth" in labels
    assert len(rows) == 11
    values = dict(rows)
    assert values["CPU Speed"] == "100 Mips"
    assert values["Tuple Size - Page Size"] == "40 bytes - 8 Kb"
