"""Tests for multi-query execution on a shared mediator."""

import pytest

from repro import (
    ConfigurationError,
    MultiQueryEngine,
    QuerySubmission,
    SimulationParameters,
    UniformDelay,
    make_policy,
)


def submission(workload, params, name="Q1", strategy="SEQ", start=0.0,
               memory=None, wait=None):
    wait = wait if wait is not None else params.w_min
    return QuerySubmission(
        name=name, catalog=workload.catalog, qep=workload.qep,
        policy=make_policy(strategy),
        delay_models={n: UniformDelay(wait)
                      for n in workload.relation_names},
        start_time=start, memory_bytes=memory)


@pytest.fixture
def params():
    return SimulationParameters()


def test_single_query_matches_single_engine(tiny_fig5, params):
    from repro import QueryEngine
    multi = MultiQueryEngine(params=params, seed=1)
    multi.submit(submission(tiny_fig5, params))
    result = multi.run()
    assert len(result.outcomes) == 1
    assert result.outcomes[0].result_tuples == 1000
    assert result.makespan == result.outcomes[0].response_time


def test_no_submissions_rejected(params):
    with pytest.raises(ConfigurationError):
        MultiQueryEngine(params=params).run()


def test_duplicate_names_rejected(tiny_fig5, params):
    engine = MultiQueryEngine(params=params)
    engine.submit(submission(tiny_fig5, params, name="Q"))
    with pytest.raises(ConfigurationError):
        engine.submit(submission(tiny_fig5, params, name="Q"))


def test_concurrent_queries_all_complete(tiny_fig5, params):
    engine = MultiQueryEngine(params=params, seed=2)
    for i in range(3):
        engine.submit(submission(tiny_fig5, params, name=f"Q{i}",
                                 strategy="DSE"))
    result = engine.run()
    assert len(result.outcomes) == 3
    assert all(o.result_tuples == 1000 for o in result.outcomes)
    assert result.throughput > 0


def test_contention_slows_queries_down(tiny_fig5, params):
    solo = MultiQueryEngine(params=params, seed=3)
    solo.submit(submission(tiny_fig5, params, name="alone"))
    alone = solo.run().outcomes[0].response_time

    crowd = MultiQueryEngine(params=params, seed=3)
    for i in range(4):
        crowd.submit(submission(tiny_fig5, params, name=f"Q{i}"))
    slowest = crowd.run().max_response_time
    assert slowest > alone  # shared CPU: somebody waits


def test_staggered_start_times(tiny_fig5, params):
    engine = MultiQueryEngine(params=params, seed=4)
    engine.submit(submission(tiny_fig5, params, name="early", start=0.0))
    engine.submit(submission(tiny_fig5, params, name="late", start=0.5))
    result = engine.run()
    late = result.outcome("late")
    assert late.start_time == pytest.approx(0.5)
    assert late.completion_time > 0.5
    assert result.makespan >= late.completion_time - 1e-9


def test_negative_start_rejected(tiny_fig5, params):
    with pytest.raises(ConfigurationError):
        submission(tiny_fig5, params, start=-1.0)


def test_per_query_memory_budgets(tiny_fig5, params):
    """One query gets a tight budget and must split; the other is roomy."""
    engine = MultiQueryEngine(params=params, seed=5)
    engine.submit(submission(tiny_fig5, params, name="roomy"))
    # At 2% scale the peak residency is ~176 KB (J2+J3 during pF) and the
    # floor ~144 KB; 150 KB forces at least one split but stays feasible.
    engine.submit(submission(tiny_fig5, params, name="tight",
                             memory=150 * 1024))
    result = engine.run()
    assert result.outcome("tight").memory_splits >= 1
    assert result.outcome("roomy").memory_splits == 0
    assert all(o.result_tuples == 1000 for o in result.outcomes)


def test_mixed_strategies(tiny_fig5, params):
    engine = MultiQueryEngine(params=params, seed=6)
    engine.submit(submission(tiny_fig5, params, name="seq", strategy="SEQ"))
    engine.submit(submission(tiny_fig5, params, name="dse", strategy="DSE"))
    result = engine.run()
    assert result.outcome("seq").strategy == "SEQ"
    assert result.outcome("dse").strategy == "DSE"
    assert all(o.result_tuples == 1000 for o in result.outcomes)


def test_deterministic(tiny_fig5, params):
    def run():
        engine = MultiQueryEngine(params=params, seed=7)
        for i in range(2):
            engine.submit(submission(tiny_fig5, params, name=f"Q{i}",
                                     strategy="DSE"))
        result = engine.run()
        return [(o.name, o.response_time) for o in result.outcomes]

    assert run() == run()


def test_unknown_outcome_name(tiny_fig5, params):
    engine = MultiQueryEngine(params=params, seed=8)
    engine.submit(submission(tiny_fig5, params))
    result = engine.run()
    with pytest.raises(KeyError):
        result.outcome("ghost")
