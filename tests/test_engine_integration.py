"""End-to-end integration tests for the query engine."""

import pytest

from repro import (
    ConfigurationError,
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    make_policy,
)
from repro.wrappers import ConstantDelay, InitialDelay, BurstyDelay


def make_engine(workload, strategy="DSE", seed=1, trace=False,
                delay_models=None, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    if delay_models is None:
        delay_models = {name: UniformDelay(params.w_min)
                        for name in workload.relation_names}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delay_models, params=params, seed=seed, trace=trace)


def test_missing_delay_model_rejected(tiny_fig5):
    with pytest.raises(ConfigurationError, match="no delay model"):
        QueryEngine(tiny_fig5.catalog, tiny_fig5.qep, make_policy("SEQ"),
                    {"A": UniformDelay(1e-5)})


def test_result_is_deterministic_per_seed(tiny_fig5):
    first = make_engine(tiny_fig5, seed=7).run()
    second = make_engine(tiny_fig5, seed=7).run()
    assert first.response_time == second.response_time
    assert first.result_tuples == second.result_tuples
    assert first.batches_processed == second.batches_processed


def test_different_seeds_vary_response(tiny_fig5):
    first = make_engine(tiny_fig5, seed=1).run()
    second = make_engine(tiny_fig5, seed=2).run()
    # Same result count, (almost surely) different timings.
    assert first.result_tuples == second.result_tuples
    assert first.response_time != second.response_time


def test_engine_reusable_across_runs(tiny_fig5):
    engine = make_engine(tiny_fig5)
    first = engine.run()
    second = engine.run()
    assert first.result_tuples == second.result_tuples


def test_stateful_delay_models_reset_between_runs(tiny_fig5):
    delays = {name: ConstantDelay(1e-5) for name in tiny_fig5.relation_names}
    delays["A"] = InitialDelay(0.05, ConstantDelay(1e-5))
    engine = make_engine(tiny_fig5, strategy="SEQ", delay_models=delays)
    first = engine.run()
    second = engine.run()
    # Without reset() the initial delay would vanish on the second run.
    assert second.response_time == pytest.approx(first.response_time, rel=0.05)
    assert first.response_time > 0.05


def test_cpu_utilization_reported(tiny_fig5):
    result = make_engine(tiny_fig5).run()
    assert 0.0 < result.cpu_utilization <= 1.0
    assert result.cpu_busy_time == pytest.approx(
        result.cpu_utilization * result.response_time)


def test_wrapper_stats_complete(tiny_fig5):
    result = make_engine(tiny_fig5).run()
    assert set(result.wrapper_stats) == set(tiny_fig5.relation_names)
    for name, (sent, production, blocked) in result.wrapper_stats.items():
        assert sent == tiny_fig5.catalog.relation(name).cardinality
        assert production >= 0 and blocked >= 0


def test_trace_only_when_requested(tiny_fig5):
    assert make_engine(tiny_fig5).run().tracer is None
    assert make_engine(tiny_fig5, trace=True).run().tracer is not None


def test_summary_renders(tiny_fig5):
    result = make_engine(tiny_fig5).run()
    text = result.summary()
    assert "DSE" in text and "tuples" in text


def test_initial_delay_hidden_by_dse(mini_fig5):
    """DSE overlaps an initial delay on A with other work.

    A is the *first* chain in iterator order, so SEQ sits idle for the
    whole initial delay — the scrambling papers' motivating case.
    """
    def delays():
        models = {name: UniformDelay(20e-6)
                  for name in mini_fig5.relation_names}
        models["A"] = InitialDelay(0.5, UniformDelay(20e-6))
        return models

    seq = make_engine(mini_fig5, "SEQ", delay_models=delays()).run()
    dse = make_engine(mini_fig5, "DSE", delay_models=delays()).run()
    assert dse.response_time < seq.response_time


def test_bursty_arrival_hidden_by_dse(mini_fig5):
    def delays():
        models = {name: UniformDelay(20e-6)
                  for name in mini_fig5.relation_names}
        models["F"] = BurstyDelay(burst_tuples=2000, gap=0.1,
                                  within_burst_wait=10e-6)
        return models

    seq = make_engine(mini_fig5, "SEQ", delay_models=delays()).run()
    dse = make_engine(mini_fig5, "DSE", delay_models=delays()).run()
    assert dse.response_time < seq.response_time


def test_slow_delivery_hidden_by_dse(mini_fig5):
    """The paper's headline case: regular but slow delivery."""
    def delays():
        models = {name: UniformDelay(20e-6)
                  for name in mini_fig5.relation_names}
        models["F"] = UniformDelay(200e-6)
        return models

    seq = make_engine(mini_fig5, "SEQ", delay_models=delays()).run()
    dse = make_engine(mini_fig5, "DSE", delay_models=delays()).run()
    assert dse.response_time < seq.response_time


def test_memory_constrained_run_still_correct(mini_fig5):
    """A budget forcing splits must not change the result.

    At 10% scale, SEQ's peak residency is ~880 KB (pF probes J2 while
    building the 480 KB final table); 850 KB forces exactly that chain
    to split.
    """
    roomy = make_engine(mini_fig5, "SEQ").run()
    budget = 850 * 1024
    tight = make_engine(mini_fig5, "SEQ", query_memory_bytes=budget).run()
    assert tight.result_tuples == roomy.result_tuples
    assert tight.memory_splits >= 1
    assert tight.memory_peak_bytes <= budget


def test_dse_memory_constrained_correct(mini_fig5):
    roomy = make_engine(mini_fig5, "DSE").run()
    tight = make_engine(mini_fig5, "DSE",
                        query_memory_bytes=1024 * 1024).run()
    assert tight.result_tuples == roomy.result_tuples
    assert tight.memory_peak_bytes <= 1024 * 1024


def test_single_relation_query(small_catalog):
    """Degenerate plan: one scan straight to output."""
    from repro.plan import build_qep
    from repro.query import JoinTree
    qep = build_qep(small_catalog, JoinTree.leaf("R"))
    params = SimulationParameters()
    engine = QueryEngine(small_catalog, qep, make_policy("SEQ"),
                         {"R": UniformDelay(params.w_min)}, params=params)
    result = engine.run()
    assert result.result_tuples == 1000


def test_generated_workload_end_to_end():
    """Random query -> DP optimizer -> QEP -> all three strategies agree."""
    import numpy as np
    from repro import CostModel, DynamicProgrammingOptimizer, QueryGenerator
    from repro.plan import build_qep

    gen = QueryGenerator(np.random.default_rng(3),
                         min_cardinality=2000, max_cardinality=4000)
    workload = gen.generate(5, shape="tree")
    tree = DynamicProgrammingOptimizer(
        CostModel(workload.catalog)).optimize(workload.query)
    qep = build_qep(workload.catalog, tree)
    params = SimulationParameters()
    delays = lambda: {name: UniformDelay(params.w_min)
                      for name in workload.relation_names}
    counts = set()
    for strategy in ["SEQ", "MA", "DSE"]:
        engine = QueryEngine(workload.catalog, qep, make_policy(strategy),
                             delays(), params=params, seed=4)
        counts.add(engine.run().result_tuples)
    assert len(counts) == 1
