"""Tests for World construction/sharing and assorted edge paths."""

import pytest

from repro import (
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    make_policy,
)
from repro.common.errors import SimulationError
from repro.core.runtime import World


# --------------------------------------------------------------------------
# World construction and machine sharing
# --------------------------------------------------------------------------

def test_world_builds_all_components():
    params = SimulationParameters()
    world = World(params, seed=3)
    assert world.cpu.mips == params.cpu_mips
    assert len(world.disks) == params.num_local_disks
    assert world.disk is world.disks[0]
    assert world.cache.capacity_pages == params.io_cache_pages
    assert world.memory.total_bytes == params.query_memory_bytes


def test_world_multiple_disks():
    world = World(SimulationParameters(num_local_disks=3))
    assert len(world.disks) == 3
    assert world.buffer.disks is world.disks or \
        list(world.buffer.disks) == list(world.disks)


def test_world_sharing_reuses_machine():
    params = SimulationParameters()
    machine = World(params, seed=1)
    view = World(params, share_machine=machine)
    assert view.sim is machine.sim
    assert view.cpu is machine.cpu
    assert view.disks is machine.disks
    assert view.buffer is machine.buffer
    # Per-query state is fresh.
    assert view.cm is not machine.cm
    assert view.memory is not machine.memory


def test_world_sharing_custom_memory_budget():
    params = SimulationParameters()
    machine = World(params, seed=1)
    view = World(params, share_machine=machine, memory_bytes=12345678)
    assert view.memory.total_bytes == 12345678


def test_world_rng_streams_are_named():
    world = World(SimulationParameters(), seed=5)
    a = world.rng("x").random()
    other = World(SimulationParameters(), seed=5)
    assert other.rng("x").random() == a
    assert other.rng("y").random() != a


# --------------------------------------------------------------------------
# Link-contention modelling (off by default, on explicitly)
# --------------------------------------------------------------------------

def _run(workload, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    delays = {name: UniformDelay(params.w_min)
              for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, workload.qep, make_policy("SEQ"),
                         delays, params=params, seed=1)
    return engine.run()


def test_link_contention_disabled_by_default(tiny_fig5):
    params = SimulationParameters()
    world = World(params)
    assert world.cm.link is None


def test_link_contention_serializes_messages(tiny_fig5):
    fast = _run(tiny_fig5)
    contended = _run(tiny_fig5, model_link_contention=True)
    # Same answer; the shared link can only slow things down.
    assert contended.result_tuples == fast.result_tuples
    assert contended.response_time >= fast.response_time


def test_link_counts_messages_when_enabled(tiny_fig5):
    params = SimulationParameters(model_link_contention=True)
    world = World(params)
    assert world.cm.link is world.link

    world.cm.register_source("W")

    def producer():
        yield from world.cm.deliver("W", 100, eof=True,
                                    production_seconds=0.0)

    world.sim.process(producer())
    world.sim.run()
    assert world.link.messages.value == 1
    assert world.link.bytes_carried.value == 100 * params.tuple_size


# --------------------------------------------------------------------------
# Assorted edges
# --------------------------------------------------------------------------

def test_engine_rejects_invalid_qep(small_catalog, small_qep):
    small_qep.chain("pS").operators[1].estimated_input_cardinality = -5
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in "RST"}
    from repro.common.errors import PlanError
    with pytest.raises(PlanError):
        QueryEngine(small_catalog, small_qep, make_policy("SEQ"), delays,
                    params=params)


def test_batch_size_one_tuple(tiny_fig5):
    """Pathological batch size still terminates and agrees."""
    result = _run(tiny_fig5, batch_tuples=1)
    normal = _run(tiny_fig5)
    assert result.result_tuples == normal.result_tuples
    assert result.batches_processed > normal.batches_processed


def test_tiny_queue_capacity(tiny_fig5):
    """A 1-message window still flows (heavy backpressure)."""
    result = _run(tiny_fig5, queue_capacity_messages=1)
    assert result.result_tuples == _run(tiny_fig5).result_tuples


def test_huge_message_size(tiny_fig5):
    """Messages of 16 pages (whole relation chunks) still work."""
    result = _run(tiny_fig5, message_pages=16)
    assert result.result_tuples == _run(tiny_fig5).result_tuples


def test_zero_context_switch_cost(tiny_fig5):
    result = _run(tiny_fig5, context_switch_instructions=0.0)
    assert result.context_switches == 0
    assert result.result_tuples == _run(tiny_fig5).result_tuples


def test_slow_cpu_makes_query_cpu_bound(tiny_fig5):
    slow_cpu = _run(tiny_fig5, cpu_mips=5.0)
    fast_cpu = _run(tiny_fig5)
    assert slow_cpu.response_time > fast_cpu.response_time
    assert slow_cpu.cpu_utilization > 0.9


def test_round_robin_discipline_same_answer(tiny_fig5):
    priority = _run(tiny_fig5)
    round_robin = _run(tiny_fig5, dqp_discipline="round-robin")
    assert round_robin.result_tuples == priority.result_tuples


def test_unknown_discipline_rejected():
    from repro.common.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        SimulationParameters(dqp_discipline="lottery")
