"""Additional edge-path tests for the runtime and multi-query engine."""

import pytest

from repro import (
    MultiQueryEngine,
    QueryEngine,
    QuerySubmission,
    SimulationParameters,
    UniformDelay,
    make_policy,
)
from repro.catalog import Catalog, JoinStatistics, Relation
from repro.common.errors import SchedulingError
from repro.core.fragments import FragmentStatus
from repro.core.runtime import QueryRuntime, World
from repro.mediator.queues import Message
from repro.plan import build_qep
from repro.query import JoinTree


@pytest.fixture
def rt(small_qep):
    world = World(SimulationParameters(), seed=21)
    for name in small_qep.source_relations():
        world.cm.register_source(name)
    return QueryRuntime(world, small_qep)


def drive(rt, fragment, max_tuples=10_000):
    def once():
        outcome = yield from fragment.process_batch(max_tuples)
        return outcome

    proc = rt.world.sim.process(once())
    rt.world.sim.run()
    assert proc.failure is None, proc.failure
    return proc.value


# --------------------------------------------------------------------------
# Runtime edges
# --------------------------------------------------------------------------

def test_request_stop_on_non_degraded_chain_rejected(rt, small_qep):
    with pytest.raises(SchedulingError):
        rt.request_stop_materialization(small_qep.chain("pR"))


def test_request_stop_idempotent(rt, small_qep):
    rt.degrade_chain(small_qep.chain("pS"))
    rt.request_stop_materialization(small_qep.chain("pS"))
    rt.request_stop_materialization(small_qep.chain("pS"))  # no error
    assert "pS" in rt.stopped_materializations


def test_advance_skips_running_mfs(rt, small_qep):
    rt.degrade_chain(small_qep.chain("pS"))
    assert rt.advance_degraded_chains() == []  # MF not done yet
    assert rt.fragments["pS"].suspended


def test_advance_idempotent_after_cf_created(rt, small_qep):
    mf = rt.degrade_chain(small_qep.chain("pS"))
    rt.world.cm.queue("S").put(Message(100, eof=True))
    drive(rt, mf)
    first = rt.advance_degraded_chains()
    assert [f.name for f in first] == ["CF(pS)"]
    assert rt.advance_degraded_chains() == []


def test_live_fragments_excludes_done(rt):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    rt.world.cm.queue("R").put(Message(1000, eof=True))
    drive(rt, fragment)
    assert fragment.status is FragmentStatus.DONE
    assert fragment not in rt.live_fragments()


def test_remaining_source_tuples_tracks_delivery(rt, small_qep):
    chain = small_qep.chain("pR")
    assert rt.remaining_source_tuples(chain) == 1000
    rt.world.cm.estimator("R").on_arrival(300, production_seconds=0.01)
    assert rt.remaining_source_tuples(chain) == 700


def test_memory_temp_destroyed_after_cf(rt, small_qep):
    """A consumed MF temp is destroyed (memory/cache freed)."""
    mf = rt.degrade_chain(small_qep.chain("pS"))
    rt.world.cm.queue("S").put(Message(500, eof=True))
    drive(rt, mf)
    rt.advance_degraded_chains()
    # Complete pR so CF(pS) can run.
    pr = rt.fragments["pR"]
    rt.ensure_hash_table(pr)
    rt.world.cm.queue("R").put(Message(1000, eof=True))
    drive(rt, pr)
    cf = rt.fragments["CF(pS)"]
    rt.ensure_hash_table(cf)
    while cf.status is not FragmentStatus.DONE:
        drive(rt, cf)
    assert cf.source.temp.destroyed


# --------------------------------------------------------------------------
# Multi-query with heterogeneous workloads
# --------------------------------------------------------------------------

def test_multiquery_mixed_workloads(tiny_fig5, small_catalog, small_tree):
    params = SimulationParameters()
    engine = MultiQueryEngine(params=params, seed=31)
    engine.submit(QuerySubmission(
        name="fig5", catalog=tiny_fig5.catalog, qep=tiny_fig5.qep,
        policy=make_policy("DSE"),
        delay_models={n: UniformDelay(params.w_min)
                      for n in tiny_fig5.relation_names}))
    small_qep = build_qep(small_catalog, small_tree)
    engine.submit(QuerySubmission(
        name="rst", catalog=small_catalog, qep=small_qep,
        policy=make_policy("SEQ"),
        delay_models={n: UniformDelay(params.w_min) for n in "RST"}))
    result = engine.run()
    assert result.outcome("fig5").result_tuples == 1000
    assert result.outcome("rst").result_tuples == 1500


def test_multiquery_shares_disk_extents(tiny_fig5):
    """Two MA queries spill concurrently without extent collisions."""
    params = SimulationParameters()
    engine = MultiQueryEngine(params=params, seed=32)
    for i in range(2):
        engine.submit(QuerySubmission(
            name=f"Q{i}", catalog=tiny_fig5.catalog, qep=tiny_fig5.qep,
            policy=make_policy("MA"),
            delay_models={n: UniformDelay(params.w_min)
                          for n in tiny_fig5.relation_names}))
    result = engine.run()
    assert all(o.result_tuples == 1000 for o in result.outcomes)


# --------------------------------------------------------------------------
# Engine misc
# --------------------------------------------------------------------------

def test_two_relation_plan_runs_every_strategy():
    stats = JoinStatistics({("X", "Y"): 1e-4})
    catalog = Catalog([Relation("X", 3000), Relation("Y", 4000)], stats)
    qep = build_qep(catalog, JoinTree.join(JoinTree.leaf("X"),
                                           JoinTree.leaf("Y")))
    params = SimulationParameters()
    counts = set()
    for strategy in ["SEQ", "MA", "DSE", "DSE-ND"]:
        delays = {n: UniformDelay(params.w_min) for n in ("X", "Y")}
        result = QueryEngine(catalog, qep, make_policy(strategy), delays,
                             params=params, seed=2).run()
        counts.add(result.result_tuples)
    # All strategies agree; the expected 1200 loses one tuple to the
    # floating-point floor at the accumulation boundary (0.3 * 4000).
    assert len(counts) == 1
    assert counts.pop() == pytest.approx(1200, abs=1)
