"""Tests for the delay models (the paper's delay taxonomy, Section 1.2)."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.wrappers import (
    BurstyDelay,
    ConstantDelay,
    ExponentialDelay,
    InitialDelay,
    NormalDelay,
    UniformDelay,
    slow_delivery,
)


@pytest.fixture
def rng():
    return np.random.default_rng(123)


def test_constant_delay(rng):
    model = ConstantDelay(2e-5)
    waits = model.waiting_times(5, rng)
    assert np.allclose(waits, 2e-5)
    assert model.mean_wait() == 2e-5


def test_constant_negative_rejected():
    with pytest.raises(ConfigurationError):
        ConstantDelay(-1.0)


def test_uniform_delay_range_and_mean(rng):
    model = UniformDelay(1e-3)
    waits = model.waiting_times(10_000, rng)
    assert waits.min() >= 0.0
    assert waits.max() <= 2e-3
    assert waits.mean() == pytest.approx(1e-3, rel=0.05)
    assert model.mean_wait() == 1e-3


def test_uniform_zero_wait(rng):
    model = UniformDelay(0.0)
    assert np.all(model.waiting_times(10, rng) == 0.0)


def test_slow_delivery_is_uniform():
    model = slow_delivery(5e-3)
    assert isinstance(model, UniformDelay)
    assert model.mean_wait() == 5e-3


def test_initial_delay_applies_once(rng):
    model = InitialDelay(1.0, ConstantDelay(0.001))
    first = model.waiting_times(3, rng)
    assert first[0] == pytest.approx(1.001)
    assert np.allclose(first[1:], 0.001)
    second = model.waiting_times(3, rng)
    assert np.allclose(second, 0.001)


def test_initial_delay_reset(rng):
    model = InitialDelay(1.0, ConstantDelay(0.001))
    model.waiting_times(1, rng)
    model.reset()
    again = model.waiting_times(1, rng)
    assert again[0] == pytest.approx(1.001)


def test_initial_delay_mean_ignores_one_off():
    model = InitialDelay(100.0, ConstantDelay(0.5))
    assert model.mean_wait() == 0.5


def test_initial_negative_rejected():
    with pytest.raises(ConfigurationError):
        InitialDelay(-1.0, ConstantDelay(0.0))


def test_bursty_delay_pattern(rng):
    model = BurstyDelay(burst_tuples=3, gap=1.0, within_burst_wait=0.1)
    waits = model.waiting_times(7, rng)
    expected = [1.1, 0.1, 0.1, 1.1, 0.1, 0.1, 1.1]
    assert np.allclose(waits, expected)


def test_bursty_state_continues_across_calls(rng):
    model = BurstyDelay(burst_tuples=3, gap=1.0)
    first = model.waiting_times(2, rng)
    second = model.waiting_times(2, rng)
    assert first[0] == pytest.approx(1.0)   # burst boundary
    assert second[0] == pytest.approx(0.0)  # third tuple of the burst
    assert second[1] == pytest.approx(1.0)  # next burst


def test_bursty_reset(rng):
    model = BurstyDelay(burst_tuples=4, gap=2.0)
    model.waiting_times(2, rng)
    model.reset()
    assert model.waiting_times(1, rng)[0] == pytest.approx(2.0)


def test_bursty_mean_wait():
    model = BurstyDelay(burst_tuples=4, gap=2.0, within_burst_wait=0.5)
    assert model.mean_wait() == pytest.approx(0.5 + 2.0 / 4)


def test_bursty_validation():
    with pytest.raises(ConfigurationError):
        BurstyDelay(burst_tuples=0, gap=1.0)
    with pytest.raises(ConfigurationError):
        BurstyDelay(burst_tuples=2, gap=-1.0)


def test_exponential_mean_and_positivity(rng):
    model = ExponentialDelay(1e-3)
    waits = model.waiting_times(20_000, rng)
    assert waits.min() >= 0.0
    assert waits.mean() == pytest.approx(1e-3, rel=0.05)
    assert model.mean_wait() == 1e-3


def test_exponential_zero_wait(rng):
    assert np.all(ExponentialDelay(0.0).waiting_times(5, rng) == 0.0)


def test_exponential_negative_rejected():
    with pytest.raises(ConfigurationError):
        ExponentialDelay(-1.0)


def test_normal_truncated_at_zero(rng):
    model = NormalDelay(mean=1e-3, std=2e-3)  # heavy truncation
    waits = model.waiting_times(20_000, rng)
    assert waits.min() >= 0.0
    # The analytic truncated mean matches the empirical one.
    assert waits.mean() == pytest.approx(model.mean_wait(), rel=0.05)
    # Truncation raises the mean above the untruncated one.
    assert model.mean_wait() > 1e-3


def test_normal_zero_std_is_constant(rng):
    model = NormalDelay(mean=5e-4, std=0.0)
    assert np.allclose(model.waiting_times(10, rng), 5e-4)
    assert model.mean_wait() == 5e-4


def test_normal_validation():
    with pytest.raises(ConfigurationError):
        NormalDelay(-1.0, 1.0)
    with pytest.raises(ConfigurationError):
        NormalDelay(1.0, -1.0)


def test_negative_count_rejected(rng):
    with pytest.raises(ConfigurationError):
        UniformDelay(1.0).waiting_times(-1, rng)


def test_zero_count_allowed(rng):
    assert len(UniformDelay(1.0).waiting_times(0, rng)) == 0
