"""Tests for the cost model and the DP join-order optimizer."""

import itertools

import numpy as np
import pytest

from repro.catalog import Catalog, JoinStatistics, Relation
from repro.common.errors import OptimizerError
from repro.optimizer import CostModel, DynamicProgrammingOptimizer, OperatorCosts
from repro.query import JoinTree, Query, QueryGenerator


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

def test_scan_cost(small_catalog):
    model = CostModel(small_catalog)
    assert model.scan_cost("R") == 1000 * 100


def test_join_cost_components(small_catalog):
    model = CostModel(small_catalog)
    cost = model.join_cost(10, 20, 5)
    assert cost == 10 * 100 + 20 * 100 + 5 * 50


def test_custom_operator_costs(small_catalog):
    model = CostModel(small_catalog, OperatorCosts(move_tuple=1,
                                                   hash_search=2,
                                                   produce_tuple=3))
    assert model.join_cost(1, 1, 1) == 6


def test_negative_costs_rejected():
    with pytest.raises(OptimizerError):
        OperatorCosts(move_tuple=-1)


def test_tree_cost_totals(small_catalog, small_tree):
    model = CostModel(small_catalog)
    cost = model.tree_cost(small_tree)
    scans = (1000 + 2000 + 1500) * 100
    j1 = 1000 * 100 + 2000 * 100 + 2000 * 50
    j2 = 2000 * 100 + 1500 * 100 + 1500 * 50
    assert cost == pytest.approx(scans + j1 + j2)


def test_tree_cost_negative_cardinality_rejected(small_catalog):
    model = CostModel(small_catalog)
    with pytest.raises(OptimizerError):
        model.join_cost(-1, 1, 1)


# --------------------------------------------------------------------------
# DP optimizer
# --------------------------------------------------------------------------

def _optimize(catalog, names):
    query = Query(catalog, names)
    return DynamicProgrammingOptimizer(CostModel(catalog)).optimize(query)


def test_single_relation(small_catalog):
    tree = _optimize(small_catalog, ["R"])
    assert tree.is_leaf and tree.relation == "R"


def test_two_relations_smaller_is_build(small_catalog):
    tree = _optimize(small_catalog, ["R", "S"])
    assert tree.left.relation == "R"  # |R| = 1000 < |S| = 2000
    assert tree.right.relation == "S"


def test_chain_query_covers_all(small_catalog):
    tree = _optimize(small_catalog, ["R", "S", "T"])
    assert sorted(tree.relations()) == ["R", "S", "T"]


def test_no_cross_products():
    """The optimizer must never join disconnected sub-queries."""
    stats = JoinStatistics({("A", "B"): 0.001, ("B", "C"): 0.001,
                            ("C", "D"): 0.001})
    catalog = Catalog([Relation(n, 1000) for n in "ABCD"], stats)
    tree = _optimize(catalog, ["A", "B", "C", "D"])
    for node in tree.inner_nodes():
        left, right = set(node.left.relations()), set(node.right.relations())
        crossing = any(stats.has_edge(a, b) for a in left for b in right)
        assert crossing, f"cross product at {node.render()}"


def _brute_force_best(catalog, names):
    """Exhaustive enumeration of all bushy trees (for small n)."""
    model = CostModel(catalog)
    stats = catalog.statistics

    def trees(relations):
        if len(relations) == 1:
            yield JoinTree.leaf(relations[0])
            return
        rels = list(relations)
        n = len(rels)
        for mask in range(1, 2 ** n - 1):
            left = [rels[i] for i in range(n) if mask >> i & 1]
            right = [rels[i] for i in range(n) if not mask >> i & 1]
            if not any(stats.has_edge(a, b) for a in left for b in right):
                continue
            for lt in trees(left):
                for rt in trees(right):
                    yield JoinTree.join(lt, rt)

    def connected(subset):
        seen = {subset[0]}
        frontier = [subset[0]]
        while frontier:
            cur = frontier.pop()
            for other in stats.neighbours(cur):
                if other in subset and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(subset)

    best = None
    for tree in trees(names):
        ok = all(connected(list(node.relations()))
                 for node in tree.inner_nodes())
        if not ok:
            continue
        cost = model.tree_cost(tree)
        if best is None or cost < best:
            best = cost
    return best


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_dp_matches_brute_force(seed):
    gen = QueryGenerator(np.random.default_rng(seed),
                         min_cardinality=100, max_cardinality=1000)
    workload = gen.generate(5, shape="tree")
    dp_tree = DynamicProgrammingOptimizer(
        CostModel(workload.catalog)).optimize(workload.query)
    dp_cost = CostModel(workload.catalog).tree_cost(dp_tree)
    best = _brute_force_best(workload.catalog, workload.relation_names)
    assert dp_cost == pytest.approx(best)


def test_dp_rejects_oversized_queries():
    gen = QueryGenerator(np.random.default_rng(0),
                         min_cardinality=10, max_cardinality=20)
    workload = gen.generate(15, shape="chain")
    optimizer = DynamicProgrammingOptimizer(CostModel(workload.catalog))
    with pytest.raises(OptimizerError, match="at most"):
        optimizer.optimize(workload.query)


def test_dp_build_side_is_left_and_smaller():
    stats = JoinStatistics({("A", "B"): 1e-4})
    catalog = Catalog([Relation("A", 50_000), Relation("B", 100)], stats)
    tree = _optimize(catalog, ["A", "B"])
    assert tree.left.relation == "B"


def test_dp_deterministic(small_catalog):
    first = _optimize(small_catalog, ["R", "S", "T"]).render()
    second = _optimize(small_catalog, ["R", "S", "T"]).render()
    assert first == second
