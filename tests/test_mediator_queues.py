"""Tests for the source queues (window protocol) and rate estimation."""

import pytest

from repro.common.errors import SimulationError
from repro.mediator import DeliveryRateEstimator, Message, SourceQueue


@pytest.fixture
def queue(sim):
    return SourceQueue(sim, "W", capacity_messages=2)


# --------------------------------------------------------------------------
# SourceQueue basics
# --------------------------------------------------------------------------

def test_put_take_roundtrip(queue):
    queue.put(Message(100))
    assert queue.tuples_available == 100
    assert queue.take_batch(60) == 60
    assert queue.take_batch(60) == 40
    assert queue.tuples_available == 0


def test_take_spans_messages(queue):
    queue.put(Message(30))
    queue.put(Message(30))
    assert queue.take_batch(50) == 50
    assert queue.tuples_available == 10


def test_full_and_window_protocol(queue, sim):
    queue.put(Message(10))
    queue.put(Message(10))
    assert queue.is_full
    space = queue.wait_not_full()
    sim.run()
    assert not space.triggered
    queue.take_batch(10)  # frees the first message slot
    sim.run()
    assert space.triggered


def test_wait_not_full_immediate_when_space(queue, sim):
    event = queue.wait_not_full()
    sim.run()
    assert event.triggered


def test_overflow_put_rejected(queue):
    queue.put(Message(1))
    queue.put(Message(1))
    with pytest.raises(SimulationError):
        queue.put(Message(1))


def test_eof_and_exhausted(queue):
    queue.put(Message(5, eof=True))
    assert queue.eof_received
    assert not queue.exhausted
    queue.take_batch(5)
    assert queue.exhausted


def test_data_after_eof_rejected(queue):
    queue.put(Message(5, eof=True))
    queue.take_batch(5)
    with pytest.raises(SimulationError):
        queue.put(Message(1))


def test_data_event_fires_on_arrival(queue, sim):
    event = queue.data_event()
    sim.run()
    assert not event.triggered
    queue.put(Message(3))
    sim.run()
    assert event.triggered and event.value == "W"


def test_data_event_immediate_when_data(queue, sim):
    queue.put(Message(3))
    event = queue.data_event()
    sim.run()
    assert event.triggered


def test_data_event_fires_for_eof_only_message(queue, sim):
    event = queue.data_event()
    queue.put(Message(0, eof=True))
    sim.run()
    assert event.triggered


def test_zero_batch_rejected(queue):
    with pytest.raises(SimulationError):
        queue.take_batch(0)


def test_full_time_tracking(queue, sim):
    queue.put(Message(1))
    queue.put(Message(1))  # full at t=0
    sim.timeout(2.0)
    sim.run()
    assert queue.full_time_total == pytest.approx(2.0)
    queue.take_batch(1)
    sim.timeout(3.0)
    sim.run()
    assert queue.full_time_total == pytest.approx(2.0)  # stopped counting


def test_message_negative_tuples_rejected():
    with pytest.raises(SimulationError):
        Message(-1)


def test_capacity_validation(sim):
    with pytest.raises(SimulationError):
        SourceQueue(sim, "W", capacity_messages=0)


# --------------------------------------------------------------------------
# DeliveryRateEstimator
# --------------------------------------------------------------------------

def test_estimator_uses_production_time(sim):
    est = DeliveryRateEstimator(sim, "W", alpha=1.0)
    est.on_arrival(100, production_seconds=0.002)
    assert est.wait_estimate == pytest.approx(2e-5)
    assert est.delivery_rate == pytest.approx(50_000)


def test_estimator_ewma_smoothing(sim):
    est = DeliveryRateEstimator(sim, "W", alpha=0.5)
    est.on_arrival(100, production_seconds=0.001)   # 10 us
    est.on_arrival(100, production_seconds=0.003)   # 30 us
    assert est.wait_estimate == pytest.approx(2e-5)


def test_estimator_no_data_yet(sim):
    est = DeliveryRateEstimator(sim, "W")
    assert est.wait_estimate is None
    assert est.delivery_rate is None
    assert est.wait_or(42.0) == 42.0


def test_estimator_counts_tuples(sim):
    est = DeliveryRateEstimator(sim, "W")
    est.on_arrival(10, production_seconds=0.1)
    est.on_arrival(5, production_seconds=0.1)
    assert est.tuples_delivered == 15
    assert est.messages_delivered == 2


def test_estimator_empty_message_ignored_for_rate(sim):
    est = DeliveryRateEstimator(sim, "W")
    est.on_arrival(0, production_seconds=0.0)
    assert est.wait_estimate is None
    assert est.messages_delivered == 1


def test_estimator_alpha_validation(sim):
    from repro.common.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        DeliveryRateEstimator(sim, "W", alpha=0.0)


def test_estimator_negative_production_rejected(sim):
    from repro.common.errors import ConfigurationError
    est = DeliveryRateEstimator(sim, "W")
    with pytest.raises(ConfigurationError):
        est.on_arrival(1, production_seconds=-0.1)
