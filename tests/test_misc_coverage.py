"""Final coverage batch: composites, scheduling-plan helpers, reprs."""

import pytest

from repro import SimulationParameters
from repro.common.errors import SimulationError
from repro.core.dqp import SchedulingPlan
from repro.core.runtime import QueryRuntime, World
from repro.sim import Simulator


# --------------------------------------------------------------------------
# Kernel composites: failure propagation
# --------------------------------------------------------------------------

def test_any_of_failing_child_fails_composite():
    sim = Simulator()
    bad = sim.event()
    good = sim.timeout(10.0)
    caught = []

    def waiter():
        try:
            yield sim.any_of([bad, good])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    bad.fail(ValueError("child died"))
    sim.run()
    assert caught == ["child died"]


def test_all_of_failing_child_fails_composite():
    sim = Simulator()
    bad = sim.event()
    good = sim.timeout(1.0)
    caught = []

    def waiter():
        try:
            yield sim.all_of([good, bad])
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    bad.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_remove_callback_prevents_invocation():
    sim = Simulator()
    event = sim.event()
    calls = []

    def callback(ev):
        calls.append(ev)

    event.add_callback(callback)
    event.remove_callback(callback)
    event.remove_callback(callback)  # absent: no-op
    event.succeed()
    sim.run()
    assert calls == []


def test_reprs_are_stable():
    sim = Simulator()
    assert "Simulator" in repr(sim)
    event = sim.event("gate")
    assert "gate" in repr(event)
    event.succeed()
    sim.run()
    assert "processed" in repr(event)


# --------------------------------------------------------------------------
# SchedulingPlan helpers
# --------------------------------------------------------------------------

@pytest.fixture
def rt(small_qep):
    world = World(SimulationParameters(), seed=41)
    for name in small_qep.source_relations():
        world.cm.register_source(name)
    return QueryRuntime(world, small_qep)


def test_scheduling_plan_live_and_describe(rt):
    fragments = [rt.fragments["pR"]]
    sp = SchedulingPlan(fragments, priorities={"pR": 1.25})
    assert sp.live() == fragments
    assert "pR" in sp.describe()
    assert "1.25" in sp.describe()


def test_scheduling_plan_empty_describe(rt):
    assert SchedulingPlan([]).describe() == ""


def test_fragment_describe(rt):
    text = rt.fragments["pS"].describe()
    assert text.startswith("pS(pc) S:")
    assert "probe[J1]" in text and "mat[J2]" in text


def test_runtime_reprs(rt):
    assert "pending" in repr(rt.fragments["pR"])
    assert "QueryRuntime" not in repr(rt.fragments["pR"])  # fragment repr


# --------------------------------------------------------------------------
# Queue misc
# --------------------------------------------------------------------------

def test_queue_repr_states(rt):
    from repro.mediator.queues import Message
    queue = rt.world.cm.queue("R")
    assert "0 tuples" in repr(queue)
    queue.put(Message(5, eof=True))
    assert "eof=True" in repr(queue)


def test_estimator_repr(rt):
    estimator = rt.world.cm.estimator("R")
    assert "w=?" in repr(estimator)
    estimator.on_arrival(10, production_seconds=1e-4)
    assert "tuples=10" in repr(estimator)
