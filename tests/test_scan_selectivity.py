"""End-to-end tests for scan selectivities (local selections at the
mediator, applied by the chain's scan — and by MF(p), Section 4.4)."""

import pytest

from repro import (
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    build_qep,
    make_policy,
)
from repro.experiments import figure5_workload


def build_with_selections(workload, selections):
    return build_qep(workload.catalog, workload.tree,
                     scan_selectivities=selections)


def run(workload, qep, strategy, seed=1, waits=None, trace=False):
    params = SimulationParameters()
    if waits is None:
        waits = {n: params.w_min for n in workload.relation_names}
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, qep, make_policy(strategy), delays,
                       params=params, seed=seed, trace=trace).run()


def test_selection_scales_results(tiny_fig5):
    full = run(tiny_fig5, tiny_fig5.qep, "SEQ")
    qep = build_with_selections(tiny_fig5, {"A": 0.5})
    half = run(tiny_fig5, qep, "SEQ")
    # Halving A's tuples halves everything downstream of J1.
    assert half.result_tuples == pytest.approx(full.result_tuples / 2,
                                               rel=0.02)


def test_selection_on_probe_side(tiny_fig5):
    qep = build_with_selections(tiny_fig5, {"C": 0.25})
    result = run(tiny_fig5, qep, "SEQ")
    assert result.result_tuples == pytest.approx(1000 * 0.25, rel=0.02)


def test_strategies_agree_under_selections(tiny_fig5):
    selections = {"A": 0.5, "C": 0.5, "F": 0.8}
    counts = set()
    for strategy in ["SEQ", "MA", "DSE"]:
        qep = build_with_selections(tiny_fig5, selections)
        counts.add(run(tiny_fig5, qep, strategy).result_tuples)
    assert len(counts) == 1


def test_wrapper_still_ships_everything(tiny_fig5):
    """Selection happens at the mediator: the wrapper sends the full
    relation (the delay cost of every raw tuple is paid)."""
    qep = build_with_selections(tiny_fig5, {"A": 0.1})
    result = run(tiny_fig5, qep, "SEQ")
    sent, _, _ = result.wrapper_stats["A"]
    assert sent == tiny_fig5.catalog.relation("A").cardinality


def test_mf_applies_the_scan(tiny_fig5):
    """Section 4.4: MF(p) 'applies the first scan operator of p (if
    any)' — the temp holds filtered tuples only."""
    waits = {n: 20e-6 for n in tiny_fig5.relation_names}
    waits["F"] = 200e-6
    qep = build_with_selections(tiny_fig5, {"F": 0.3})
    result = run(tiny_fig5, qep, "DSE", waits=waits, trace=True)
    mf_done = [e for e in result.tracer.filter("fragment-done")
               if e.message == "MF(pF)"]
    assert mf_done
    stats = mf_done[0].payload
    if stats["tuples_in"] > 1000:  # enough volume to check the ratio
        assert stats["tuples_out"] == pytest.approx(
            stats["tuples_in"] * 0.3, rel=0.05)


def test_selection_reduces_memory_footprint(tiny_fig5):
    full = run(tiny_fig5, tiny_fig5.qep, "SEQ")
    qep = build_with_selections(tiny_fig5, {"A": 0.2, "B": 0.2})
    filtered = run(tiny_fig5, qep, "SEQ")
    assert filtered.memory_peak_bytes < full.memory_peak_bytes


def test_invalid_selectivity_rejected(tiny_fig5):
    from repro.common.errors import PlanError
    with pytest.raises(PlanError):
        build_with_selections(tiny_fig5, {"A": 0.0})
    with pytest.raises(PlanError):
        build_with_selections(tiny_fig5, {"A": 1.5})
