"""Stateful (model-based) tests of the simulation kernel.

A hypothesis state machine drives random sequences of operations against
the kernel's resources and stores, checking the invariants a correct
discrete-event kernel must uphold: clock monotonicity, FIFO grant order,
capacity bounds, and conservation of items.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.sim import Resource, Simulator, Store


class ResourceMachine(RuleBasedStateMachine):
    """Random request/release traffic against a capacity-2 resource."""

    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.resource = Resource(self.sim, capacity=2)
        self.granted = []      # events granted (FIFO order observed)
        self.pending = []      # events still waiting, oldest first
        self.held = 0
        self.last_now = 0.0

    @rule()
    def request(self):
        event = self.resource.request()
        if event.triggered:
            self.held += 1
            self.granted.append(event)
        else:
            self.pending.append(event)

    @rule()
    def release(self):
        if self.held == 0:
            return
        self.resource.release()
        if self.pending:
            # The slot transfers to the oldest waiter.
            waiter = self.pending.pop(0)
            self.sim.run()
            assert waiter.triggered
            self.granted.append(waiter)
        else:
            self.held -= 1

    @rule(delay=st.floats(min_value=0.0, max_value=10.0))
    def advance_time(self, delay):
        self.sim.timeout(delay)
        self.sim.run()

    @invariant()
    def clock_never_goes_backwards(self):
        if not hasattr(self, "sim"):
            return
        assert self.sim.now >= self.last_now
        self.last_now = self.sim.now

    @invariant()
    def capacity_respected(self):
        if not hasattr(self, "resource"):
            return
        assert 0 <= self.resource.in_use <= self.resource.capacity

    @invariant()
    def no_waiter_granted_out_of_order(self):
        if not hasattr(self, "resource"):
            return
        # Everything in `pending` must still be un-triggered.
        assert all(not event.triggered for event in self.pending)


class StoreMachine(RuleBasedStateMachine):
    """Random put/get traffic against a bounded store."""

    @initialize(capacity=st.integers(min_value=1, max_value=5))
    def setup(self, capacity):
        self.sim = Simulator()
        self.store = Store(self.sim, capacity=capacity)
        self.put_serial = 0
        self.accepted = []     # items known to be inside (FIFO model)
        self.blocked_puts = [] # (event, item) waiting for space
        self.waiting_gets = [] # get events waiting for items
        self.taken = []

    @rule()
    def put(self):
        item = self.put_serial
        self.put_serial += 1
        event = self.store.put(item)
        if event.triggered:
            if self.waiting_gets:
                get_event = self.waiting_gets.pop(0)
                self.sim.run()
                assert get_event.value == item
                self.taken.append(item)
            else:
                self.accepted.append(item)
        else:
            self.blocked_puts.append((event, item))

    @rule()
    def get(self):
        event = self.store.get()
        if event.triggered:
            expected = self.accepted.pop(0)
            assert event.value == expected
            self.taken.append(event.value)
            if self.blocked_puts:
                put_event, item = self.blocked_puts.pop(0)
                self.sim.run()
                assert put_event.triggered
                self.accepted.append(item)
        else:
            self.waiting_gets.append(event)

    @invariant()
    def level_within_capacity(self):
        if not hasattr(self, "store"):
            return
        assert 0 <= len(self.store) <= self.store.capacity

    @invariant()
    def fifo_order_preserved(self):
        if not hasattr(self, "store"):
            return
        assert self.taken == sorted(self.taken)

    @invariant()
    def model_matches_store(self):
        if not hasattr(self, "store"):
            return
        assert list(self.store.items) == self.accepted


TestResourceMachine = ResourceMachine.TestCase
TestResourceMachine.settings = settings(max_examples=30,
                                        stateful_step_count=40,
                                        deadline=None)

TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(max_examples=30,
                                     stateful_step_count=40,
                                     deadline=None)
