"""Tests for unit helpers and the error hierarchy."""

import pytest

from repro.common import (
    CatalogError,
    MemoryOverflowError,
    OptimizerError,
    PlanError,
    QueryTimeoutError,
    ReproError,
    SchedulingError,
    SimulationError,
    bytes_to_pages,
    format_bytes,
    format_seconds,
)


# --------------------------------------------------------------------------
# bytes_to_pages
# --------------------------------------------------------------------------

def test_bytes_to_pages_exact():
    assert bytes_to_pages(8192, 8192) == 1


def test_bytes_to_pages_rounds_up():
    assert bytes_to_pages(8193, 8192) == 2
    assert bytes_to_pages(1, 8192) == 1


def test_bytes_to_pages_zero():
    assert bytes_to_pages(0, 8192) == 0


def test_bytes_to_pages_validation():
    with pytest.raises(ValueError):
        bytes_to_pages(100, 0)
    with pytest.raises(ValueError):
        bytes_to_pages(-1, 100)


# --------------------------------------------------------------------------
# format helpers
# --------------------------------------------------------------------------

@pytest.mark.parametrize("value,expected", [
    (0, "0 B"),
    (999, "999 B"),
    (1500, "1.5 KB"),
    (12_500_000, "12.5 MB"),
    (3_000_000_000, "3.0 GB"),
])
def test_format_bytes(value, expected):
    assert format_bytes(value) == expected


@pytest.mark.parametrize("value,expected", [
    (5e-7, "0.5 µs"),
    (2e-5, "20.0 µs"),
    (1.5e-3, "1.5 ms"),
    (2.25, "2.250 s"),
])
def test_format_seconds(value, expected):
    assert format_seconds(value) == expected


def test_format_seconds_negative():
    assert format_seconds(-1.5e-3) == "-1.5 ms"


# --------------------------------------------------------------------------
# error hierarchy
# --------------------------------------------------------------------------

@pytest.mark.parametrize("exc_class", [
    CatalogError, OptimizerError, PlanError, SchedulingError,
    SimulationError,
])
def test_all_errors_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, ReproError)


def test_memory_overflow_error_carries_context():
    error = MemoryOverflowError("pA", required=1000, available=400)
    assert isinstance(error, ReproError)
    assert error.chain_name == "pA"
    assert error.required == 1000
    assert error.available == 400
    assert "pA" in str(error)


def test_query_timeout_error_carries_context():
    error = QueryTimeoutError(timeouts=4, stalled_for=240.0)
    assert isinstance(error, ReproError)
    assert error.timeouts == 4
    assert "4 consecutive" in str(error)
