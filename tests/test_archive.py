"""The durable telemetry archive: segments, rotation, retention, replay.

Everything here runs on an injected clock — rotation by age, retention
by age and the reader's time-range filters are exercised without a
single sleep.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.common.errors import ConfigurationError
from repro.observability.archive import (
    ARCHIVE_SCHEMA_VERSION,
    RECORD_OUTCOME,
    ArchiveReader,
    SegmentedLog,
    TelemetryArchive,
    list_segments,
    read_archive,
)
from repro.service.history import (
    diff_windows,
    load_outcomes,
    parse_window,
    resolve_time,
    slo_report,
    summarize_outcomes,
)
from repro.service.slo import SLOSpec


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def outcome(t: float, tenant: str = "gold", latency: float = 0.01,
            ok: bool = True, **extra: object) -> dict:
    record = {"kind": RECORD_OUTCOME, "t": t, "tenant": tenant,
              "latency_s": latency, "wait_s": 0.0, "ok": ok}
    record.update(extra)
    return record


# --------------------------------------------------------------------------
# SegmentedLog: rotation, sealing, retention
# --------------------------------------------------------------------------

def test_segments_rotate_by_size_and_seal_to_gzip(tmp_path):
    log = SegmentedLog(tmp_path, max_segment_bytes=120,
                      retention_bytes=1 << 20, clock=FakeClock())
    for i in range(10):
        log.write(outcome(float(i)))
    log.close()
    segments = list_segments(tmp_path)
    assert len(segments) > 1
    # All but the last (active) segment are sealed .gz files.
    assert all(p.name.endswith(".jsonl.gz") for p in segments[:-1])
    assert segments[-1].name.endswith(".jsonl")
    records, reader = read_archive(tmp_path)
    assert [r["t"] for r in records] == [float(i) for i in range(10)]
    assert reader.skipped_lines == 0


def test_segments_rotate_by_age(tmp_path):
    clock = FakeClock()
    log = SegmentedLog(tmp_path, max_segment_bytes=1 << 20,
                      max_segment_age_s=60.0, clock=clock)
    log.write(outcome(1.0))
    clock.advance(61.0)
    log.write(outcome(2.0))
    log.close()
    assert len(list_segments(tmp_path)) == 2


def test_retention_deletes_oldest_sealed_segments_by_bytes(tmp_path):
    log = SegmentedLog(tmp_path, max_segment_bytes=150,
                      retention_bytes=400, clock=FakeClock())
    for i in range(60):
        log.write(outcome(float(i)))
    log.close()
    assert log.segments_deleted > 0
    total = sum(p.stat().st_size for p in list_segments(tmp_path))
    # Retention keeps the total near the budget (the active segment and
    # the newest sealed segment always survive).
    assert total <= 400 + 150
    records, _ = read_archive(tmp_path)
    # Oldest records are gone, newest survive, order is preserved.
    times = [r["t"] for r in records]
    assert times == sorted(times)
    assert times[-1] == 59.0
    assert times[0] > 0.0


def test_retention_deletes_by_age(tmp_path):
    # Age retention keys off segment mtimes (the only timestamp that
    # survives a restart), so backdate a sealed segment instead of
    # advancing a fake clock.
    log = SegmentedLog(tmp_path, max_segment_bytes=100,
                      retention_bytes=1 << 20, retention_age_s=30.0)
    log.write(outcome(1.0))
    log.write(outcome(2.0))  # rotates: segment 1 sealed
    sealed = [p for p in list_segments(tmp_path) if p.name.endswith(".gz")]
    assert sealed
    stale = time.time() - 120.0
    os.utime(sealed[0], (stale, stale))
    log.write(outcome(3.0))  # rotates again -> retention runs
    log.close()
    records, _ = read_archive(tmp_path)
    assert 1.0 not in [r["t"] for r in records]
    assert 3.0 in [r["t"] for r in records]
    assert log.segments_deleted == 1


def test_bad_configuration_is_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        SegmentedLog(tmp_path, max_segment_bytes=0)
    with pytest.raises(ConfigurationError):
        SegmentedLog(tmp_path, max_segment_bytes=1 << 20,
                     retention_bytes=10)
    with pytest.raises(ConfigurationError):
        TelemetryArchive(tmp_path, queue_capacity=0)


# --------------------------------------------------------------------------
# Restart safety and corruption tolerance
# --------------------------------------------------------------------------

def test_restart_appends_a_new_segment_and_replays_everything(tmp_path):
    log = SegmentedLog(tmp_path, clock=FakeClock())
    log.write(outcome(1.0))
    log.write(outcome(2.0))
    log.close()  # SIGTERM drain: active segment stays a plain .jsonl

    reincarnation = SegmentedLog(tmp_path, clock=FakeClock())
    reincarnation.write(outcome(3.0))
    reincarnation.close()

    records, reader = read_archive(tmp_path)
    assert [r["t"] for r in records] == [1.0, 2.0, 3.0]
    assert reader.skipped_lines == 0
    assert len(list_segments(tmp_path)) == 2  # one per incarnation


def test_torn_final_line_is_skipped_with_a_count(tmp_path):
    log = SegmentedLog(tmp_path, clock=FakeClock())
    log.write(outcome(1.0))
    log.write(outcome(2.0))
    log.close()
    segment = list_segments(tmp_path)[-1]
    # Simulate a crash mid-write: the final line is half a record.
    with open(segment, "ab") as handle:
        handle.write(b'{"kind": "outcome", "t": 3.0, "tena')
    records, reader = read_archive(tmp_path)
    assert [r["t"] for r in records] == [1.0, 2.0]
    assert reader.skipped_lines == 1


def test_alien_lines_and_foreign_versions_are_skipped(tmp_path):
    (tmp_path / "telemetry-000001.jsonl").write_text(
        json.dumps(outcome(1.0, v=ARCHIVE_SCHEMA_VERSION)) + "\n"
        + "not json at all\n"
        + json.dumps({"kind": "outcome", "t": 2.0, "v": 999}) + "\n"
        + json.dumps(["a", "list", "not", "a", "record"]) + "\n"
        + json.dumps(outcome(3.0, v=ARCHIVE_SCHEMA_VERSION)) + "\n")
    records, reader = read_archive(tmp_path)
    assert [r["t"] for r in records] == [1.0, 3.0]
    assert reader.skipped_lines == 3


def test_torn_gzip_segment_loses_the_segment_not_the_archive(tmp_path):
    log = SegmentedLog(tmp_path, max_segment_bytes=100, clock=FakeClock())
    for i in range(6):
        log.write(outcome(float(i)))
    log.close()
    sealed = [p for p in list_segments(tmp_path)
              if p.name.endswith(".gz")]
    assert sealed
    # Truncate one sealed segment mid-stream: gzip can't finish it.
    data = sealed[0].read_bytes()
    sealed[0].write_bytes(data[: len(data) // 2])
    records, reader = read_archive(tmp_path)
    assert reader.skipped_segments == 1
    assert records  # the other segments still replay


def test_reader_requires_a_directory(tmp_path):
    with pytest.raises(ConfigurationError):
        list(ArchiveReader(tmp_path / "nope"))


def test_reader_filters_by_kind_time_and_tenant(tmp_path):
    log = SegmentedLog(tmp_path, clock=FakeClock())
    log.write(outcome(1.0, tenant="gold"))
    log.write(outcome(2.0, tenant="silver"))
    log.write({"kind": "snapshot", "t": 2.5})
    log.write(outcome(3.0, tenant="gold"))
    log.close()
    records, _ = read_archive(tmp_path, kinds=("outcome",),
                              since=1.5, until=2.9, tenant="silver")
    assert [r["t"] for r in records] == [2.0]
    snapshots, _ = read_archive(tmp_path, kinds=("snapshot",))
    assert [r["t"] for r in snapshots] == [2.5]


# --------------------------------------------------------------------------
# TelemetryArchive: the bounded non-blocking writer
# --------------------------------------------------------------------------

def test_archive_writer_drains_the_queue_to_disk(tmp_path):
    archive = TelemetryArchive(tmp_path)
    for i in range(100):
        assert archive.append(outcome(float(i)))
    assert archive.flush(timeout=10.0)
    archive.close()
    records, _ = read_archive(tmp_path)
    assert len(records) == 100
    assert archive.dropped_total == 0
    stats = archive.stats()
    assert stats["records_written"] == 100
    assert stats["dropped_total"] == 0


def test_full_queue_sheds_oldest_and_counts_instead_of_blocking(
        tmp_path, monkeypatch):
    archive = TelemetryArchive(tmp_path, queue_capacity=4)
    # Wedge the writer thread inside its first disk write so the queue
    # backs up deterministically (a slow disk, in miniature).
    entered, gate = threading.Event(), threading.Event()
    real_write = archive.log.write

    def slow_write(record):
        entered.set()
        gate.wait(timeout=30.0)
        real_write(record)

    monkeypatch.setattr(archive.log, "write", slow_write)
    assert archive.append(outcome(0.0)) is True
    assert entered.wait(timeout=30.0)  # writer is now stuck mid-write
    results = [archive.append(outcome(float(1 + i))) for i in range(10)]
    # Capacity 4: the first four queue, the next six each shed the
    # oldest queued record -- append never blocks and never raises.
    assert results == [True] * 4 + [False] * 6
    assert archive.dropped_total == 6
    gate.set()
    assert archive.flush(timeout=30.0)
    archive.close()
    records, _ = read_archive(tmp_path)
    # The wedged record plus the four newest queued ones survived.
    assert [r["t"] for r in records] == [0.0, 7.0, 8.0, 9.0, 10.0]


def test_append_after_close_is_counted_as_a_drop(tmp_path):
    archive = TelemetryArchive(tmp_path, queue_capacity=8)
    archive.close()  # writer gone; queue is closed
    assert archive.append(outcome(1.0)) is False
    assert archive.dropped_total == 1


def test_disk_errors_are_counted_not_raised(tmp_path, monkeypatch):
    archive = TelemetryArchive(tmp_path)

    def explode(record):
        raise OSError("disk on fire")

    monkeypatch.setattr(archive.log, "write", explode)
    archive.append(outcome(1.0))
    archive.flush(timeout=10.0)
    archive.close()
    assert archive.write_errors >= 1


def test_archive_health_reports_segments_and_write_age(tmp_path):
    clock = FakeClock()
    archive = TelemetryArchive(tmp_path, clock=clock)
    archive.append(outcome(1.0))
    archive.flush(timeout=10.0)
    clock.advance(5.0)
    health = archive.health()
    assert health["segments"] == 1
    assert health["bytes"] > 0
    assert health["records_written"] == 1
    assert health["last_write_age_s"] == pytest.approx(5.0)
    assert health["dropped_total"] == 0
    archive.close()


# --------------------------------------------------------------------------
# Offline history queries
# --------------------------------------------------------------------------

def _write_outcomes(tmp_path, rows):
    log = SegmentedLog(tmp_path, clock=FakeClock())
    for row in rows:
        log.write(row)
    log.close()


def test_summarize_outcomes_recomputes_exact_percentiles(tmp_path):
    rows = [outcome(float(i), tenant=("gold" if i % 2 else "silver"),
                    latency=0.01 * (i + 1)) for i in range(100)]
    rows.append(outcome(100.0, ok=False, latency=9.9))
    _write_outcomes(tmp_path, rows)
    records, reader = load_outcomes(tmp_path)
    assert reader.skipped_lines == 0
    summary = summarize_outcomes(records)
    assert summary["outcomes"] == 101
    assert summary["completed"] == 100
    assert summary["failed"] == 1
    # Nearest-rank percentiles over the 100 finished latencies
    # 0.01..1.00 (the failed outcome's 9.9s must be excluded).
    assert summary["latency"]["p50_s"] == pytest.approx(0.50)
    assert summary["latency"]["p95_s"] == pytest.approx(0.96)
    assert summary["latency"]["p99_s"] == pytest.approx(1.00)
    assert summary["latency"]["max_s"] == pytest.approx(1.00)
    assert set(summary["tenants"]) == {"gold", "silver"}
    assert summary["throughput_qps"] > 0


def test_load_outcomes_time_and_tenant_filters(tmp_path):
    _write_outcomes(tmp_path, [outcome(float(i), tenant="gold")
                               for i in range(10)]
                    + [outcome(20.0, tenant="silver")])
    records, _ = load_outcomes(tmp_path, since=3.0, until=7.0)
    assert [r["t"] for r in records] == [3.0, 4.0, 5.0, 6.0, 7.0]
    records, _ = load_outcomes(tmp_path, tenant="silver")
    assert [r["t"] for r in records] == [20.0]


def test_slo_report_compliance_and_budget(tmp_path):
    rows = [outcome(float(i), latency=0.01) for i in range(99)]
    rows.append(outcome(99.0, latency=5.0))  # one breach
    _write_outcomes(tmp_path, rows)
    records, _ = load_outcomes(tmp_path)
    spec = SLOSpec.parse("gold:p99<=1s@99.5%")
    report = slo_report(records, [spec])
    assert report[0]["events"] == 100
    assert report[0]["bad"] == 1
    assert report[0]["compliance"] == pytest.approx(0.99)
    assert report[0]["met"] is False  # 99% < 99.5% target
    assert report[0]["budget_spent"] == pytest.approx(2.0)
    with pytest.raises(ConfigurationError):
        slo_report(records, [])


def test_parse_window_and_resolve_time():
    assert resolve_time(None) is None
    assert resolve_time(100.0, now=50.0) == 100.0
    assert resolve_time(-10.0, now=50.0) == 40.0
    assert parse_window("10..20", now=100.0) == (10.0, 20.0)
    assert parse_window("-60..0", now=100.0) == (40.0, 100.0)
    with pytest.raises(ConfigurationError):
        parse_window("20..10", now=100.0)
    with pytest.raises(ConfigurationError):
        parse_window("nonsense", now=100.0)


def test_diff_windows_reports_latency_regression(tmp_path):
    rows = [outcome(float(i), latency=0.010) for i in range(50)]
    rows += [outcome(float(100 + i), latency=0.020) for i in range(50)]
    _write_outcomes(tmp_path, rows)
    diff = diff_windows(tmp_path, "0..50", "100..150", now=0.0)
    assert diff["window_a"]["summary"]["outcomes"] == 50
    assert diff["window_b"]["summary"]["outcomes"] == 50
    p99 = diff["deltas"]["p99_s"]
    assert p99["delta"] == pytest.approx(0.010)
    assert p99["ratio"] == pytest.approx(2.0)
