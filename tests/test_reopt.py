"""Tests for QEP-level re-optimization (build/probe side swapping)."""

import pytest

from repro import (
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    build_qep,
    make_policy,
    validate_qep,
)
from repro.common.errors import PlanError, SchedulingError
from repro.core.runtime import QueryRuntime, World
from repro.plan.reopt import swap_join_sides
from repro.experiments import figure5_workload


# --------------------------------------------------------------------------
# Plan-level transformation
# --------------------------------------------------------------------------

def test_swap_exchanges_sides(small_qep):
    swapped = swap_join_sides(small_qep, "J1", tuple_size=40)
    j1 = swapped.joins["J1"]
    assert j1.build_relations == ("S",)
    assert j1.probe_relations == ("R",)
    assert j1.estimated_build_cardinality == pytest.approx(2000)
    assert j1.estimated_probe_cardinality == pytest.approx(1000)


def test_swap_moves_downstream_pipeline(small_qep):
    swapped = swap_join_sides(small_qep, "J1", tuple_size=40)
    # pR now probes J1 and inherits pS's downstream (mat[J2]).
    assert swapped.chain("pR").describe() == "pR: scan(R) -> probe[J1] -> mat[J2]"
    assert swapped.chain("pS").describe() == "pS: scan(S) -> mat[J1]"
    # pT untouched.
    assert swapped.chain("pT").describe() == small_qep.chain("pT").describe()


def test_swap_result_is_valid_and_reordered(small_qep):
    swapped = swap_join_sides(small_qep, "J1", tuple_size=40)
    validate_qep(swapped)
    names = [c.name for c in swapped.chains]
    # pS (now the feeder) must come before pR (now the prober).
    assert names.index("pS") < names.index("pR")


def test_swap_preserves_output_cardinality(small_qep):
    before = small_qep.root.estimated_output_cardinality
    swapped = swap_join_sides(small_qep, "J1", tuple_size=40)
    assert swapped.root.estimated_output_cardinality == pytest.approx(before)


def test_swap_preserves_actuals(small_catalog, small_tree):
    qep = build_qep(small_catalog, small_tree,
                    actual_output_factors={"J1": 2.0})
    swapped = swap_join_sides(qep, "J1", tuple_size=40)
    j1 = swapped.joins["J1"]
    assert j1.actual_fanout_factor == 2.0
    # Actual output is invariant: sel * |L| * |R| * factor.
    assert (j1.actual_probe_cardinality * j1.actual_fanout()
            == pytest.approx(qep.joins["J1"].actual_output_cardinality))


def test_swap_unknown_join_rejected(small_qep):
    with pytest.raises(PlanError):
        swap_join_sides(small_qep, "J9", tuple_size=40)


def test_swap_is_an_involution(small_qep):
    twice = swap_join_sides(
        swap_join_sides(small_qep, "J1", tuple_size=40), "J1", tuple_size=40)
    assert twice.chain("pR").describe() == small_qep.chain("pR").describe()
    assert twice.chain("pS").describe() == small_qep.chain("pS").describe()


def test_swap_root_join(small_qep):
    swapped = swap_join_sides(small_qep, "J2", tuple_size=40)
    validate_qep(swapped)
    # pT becomes the feeder; pS inherits the output operator.
    assert swapped.chain("pT").feeds.name == "J2"
    assert swapped.root.name == "pS"


def test_swap_bushy_plan(tiny_fig5):
    swapped = swap_join_sides(tiny_fig5.qep, "J4", tuple_size=40)
    validate_qep(swapped)
    assert swapped.joins["J4"].build_relations == ("D",)


# --------------------------------------------------------------------------
# Runtime application
# --------------------------------------------------------------------------

@pytest.fixture
def rt(small_qep):
    world = World(SimulationParameters(), seed=1)
    for name in small_qep.source_relations():
        world.cm.register_source(name)
    return QueryRuntime(world, small_qep)


def test_can_swap_pristine_join(rt):
    assert rt.can_swap_join("J1")
    assert rt.can_swap_join("J2")


def test_cannot_swap_after_start(rt):
    from repro.mediator.queues import Message
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    rt.world.cm.queue("R").put(Message(100))

    def once():
        outcome = yield from fragment.process_batch(1000)
        return outcome

    rt.world.sim.process(once())
    rt.world.sim.run()
    assert not rt.can_swap_join("J1")
    with pytest.raises(SchedulingError):
        rt.swap_pending_join("J1")


def test_cannot_swap_degraded_chain(rt, small_qep):
    rt.degrade_chain(small_qep.chain("pS"))
    assert not rt.can_swap_join("J1")  # pS (the prober) is degraded
    assert not rt.can_swap_join("J2")  # pS feeds J2 too


def test_swap_releases_admitted_empty_table(rt):
    rt.ensure_hash_table(rt.fragments["pR"])  # reserved but never filled
    used_before = rt.world.memory.used_bytes
    assert used_before > 0
    rt.swap_pending_join("J1")
    assert rt.world.memory.used_bytes == 0
    assert "J1" not in rt.hash_tables


def test_swap_rebuilds_fragments(rt):
    old = rt.fragments["pR"]
    rt.swap_pending_join("J1")
    assert rt.fragments["pR"] is not old
    assert rt.fragments["pR"].chain.describe().startswith(
        "pR: scan(R) -> probe[J1]")
    # The new fragments stay bound to the original wrapper queues.
    assert rt.fragments["pR"].source is rt.world.cm.queue("R")


def test_swap_updates_dependencies(rt):
    rt.swap_pending_join("J1")
    assert rt.closure["pR"] == {"pS"}
    assert rt.closure["pS"] == set()
    assert rt.is_c_schedulable(rt.fragments["pS"])
    assert not rt.is_c_schedulable(rt.fragments["pR"])


# --------------------------------------------------------------------------
# End-to-end through the engine
# --------------------------------------------------------------------------

def run_fig5(scale, factor, reopt, strategy="SEQ", seed=1):
    workload = figure5_workload(scale=scale)
    qep = build_qep(workload.catalog, workload.tree,
                    actual_output_factors={"J1": factor})
    params = SimulationParameters().with_overrides(
        enable_reoptimization=reopt)
    delays = {name: UniformDelay(params.w_min)
              for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, qep, make_policy(strategy), delays,
                         params=params, seed=seed)
    return engine.run()


def test_reopt_disabled_by_default(tiny_fig5):
    result = run_fig5(0.02, 3.0, reopt=False)
    assert result.reopt_swaps == []
    assert result.reopt_opportunities  # still detected


def test_reopt_swaps_on_misestimate():
    result = run_fig5(0.05, 3.0, reopt=True)
    assert result.reopt_swaps
    # The swap must not change the answer.
    baseline = run_fig5(0.05, 3.0, reopt=False)
    assert result.result_tuples == baseline.result_tuples


def test_reopt_reduces_memory_peak():
    with_reopt = run_fig5(0.05, 3.0, reopt=True)
    without = run_fig5(0.05, 3.0, reopt=False)
    assert with_reopt.memory_peak_bytes < without.memory_peak_bytes


def test_reopt_no_swaps_with_exact_estimates():
    result = run_fig5(0.05, 1.0, reopt=True)
    assert result.reopt_swaps == []


def test_reopt_under_dse():
    result = run_fig5(0.05, 3.0, reopt=True, strategy="DSE")
    baseline = run_fig5(0.05, 3.0, reopt=False, strategy="DSE")
    assert result.result_tuples == baseline.result_tuples
