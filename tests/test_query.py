"""Tests for the logical query model and the random query generator."""

import numpy as np
import pytest

from repro.catalog import Catalog, JoinStatistics, Relation
from repro.common.errors import ConfigurationError, PlanError
from repro.query import JoinTree, Query, QueryGenerator


# --------------------------------------------------------------------------
# Query
# --------------------------------------------------------------------------

def test_query_requires_known_relations(small_catalog):
    from repro.common.errors import CatalogError
    with pytest.raises(CatalogError):
        Query(small_catalog, ["R", "Z"])


def test_query_rejects_duplicates(small_catalog):
    with pytest.raises(PlanError):
        Query(small_catalog, ["R", "R"])


def test_query_rejects_disconnected(small_catalog):
    with pytest.raises(PlanError, match="disconnected"):
        Query(small_catalog, ["R", "T"])  # no R-T edge


def test_query_join_edges(small_query):
    edges = [(a, b) for a, b, _ in small_query.join_edges()]
    assert ("R", "S") in edges and ("S", "T") in edges


def test_single_relation_query(small_catalog):
    assert len(Query(small_catalog, ["R"])) == 1


# --------------------------------------------------------------------------
# JoinTree
# --------------------------------------------------------------------------

def test_join_tree_leaf():
    tree = JoinTree.leaf("R")
    assert tree.is_leaf
    assert tree.relations() == ("R",)
    assert tree.depth() == 0
    assert tree.render() == "R"


def test_join_tree_structure(small_tree):
    assert not small_tree.is_leaf
    assert small_tree.relations() == ("R", "S", "T")
    assert small_tree.depth() == 2
    assert small_tree.render() == "((R ⋈ S) ⋈ T)"


def test_join_tree_rejects_overlap():
    with pytest.raises(PlanError):
        JoinTree.join(JoinTree.leaf("R"),
                      JoinTree.join(JoinTree.leaf("R"), JoinTree.leaf("S")))


def test_join_tree_leaf_xor_children():
    with pytest.raises(PlanError):
        JoinTree(relation="R", left=JoinTree.leaf("S"), right=JoinTree.leaf("T"))
    with pytest.raises(PlanError):
        JoinTree()


def test_left_deep_constructor():
    tree = JoinTree.left_deep(["A", "B", "C"])
    assert tree.render() == "((A ⋈ B) ⋈ C)"


def test_inner_nodes_bottom_up(small_tree):
    renders = [node.render() for node in small_tree.inner_nodes()]
    assert renders == ["(R ⋈ S)", "((R ⋈ S) ⋈ T)"]


def test_leaves_left_to_right(small_tree):
    assert [leaf.relation for leaf in small_tree.leaves()] == ["R", "S", "T"]


def test_estimated_cardinality(small_tree, small_catalog):
    assert small_tree.estimated_cardinality(small_catalog) == pytest.approx(1500)


# --------------------------------------------------------------------------
# QueryGenerator
# --------------------------------------------------------------------------

def _generator(seed=7, **kwargs):
    return QueryGenerator(np.random.default_rng(seed), **kwargs)


def test_generator_produces_connected_query():
    workload = _generator().generate(6, shape="tree")
    assert len(workload.query) == 6  # Query() validates connectivity


@pytest.mark.parametrize("shape", ["chain", "star", "tree"])
def test_generator_shapes(shape):
    workload = _generator().generate(5, shape=shape)
    edges = workload.query.join_edges()
    assert len(edges) == 4  # acyclic: n-1 edges
    if shape == "star":
        hub = workload.relation_names[0]
        assert all(hub in (a, b) for a, b, _ in edges)


def test_generator_cardinality_ranges():
    gen = _generator(min_cardinality=1000, max_cardinality=2000,
                     small_fraction=0.0)
    workload = gen.generate(8)
    for relation in workload.catalog:
        assert 1000 <= relation.cardinality <= 2000


def test_generator_small_relations():
    gen = _generator(min_cardinality=1000, max_cardinality=2000,
                     small_fraction=1.0)
    workload = gen.generate(8)
    for relation in workload.catalog:
        assert relation.cardinality <= 200


def test_generator_selectivities_bound_intermediates():
    workload = _generator().generate(6)
    for a, b, sel in workload.query.join_edges():
        card_a = workload.catalog.relation(a).cardinality
        card_b = workload.catalog.relation(b).cardinality
        output = card_a * card_b * sel
        assert output <= 2.0 * max(card_a, card_b) * 1.001


def test_generator_deterministic_per_seed():
    first = _generator(seed=11).generate(5)
    second = _generator(seed=11).generate(5)
    assert ([r.cardinality for r in first.catalog]
            == [r.cardinality for r in second.catalog])


def test_generator_single_relation():
    workload = _generator().generate(1)
    assert workload.relation_names == ["A"]
    assert workload.query.join_edges() == []


def test_generator_validation():
    with pytest.raises(ConfigurationError):
        _generator().generate(0)
    with pytest.raises(ConfigurationError):
        _generator().generate(3, shape="ring")
    with pytest.raises(ConfigurationError):
        _generator(min_cardinality=0)
    with pytest.raises(ConfigurationError):
        _generator(small_fraction=2.0)


def test_generator_names_beyond_alphabet():
    workload = _generator().generate(28, shape="chain")
    assert "R26" in workload.relation_names
