"""Tests for critical degree, bmi and per-tuple CPU cost estimation."""

import pytest

from repro.common.errors import SchedulingError
from repro.config import SimulationParameters
from repro.core.metrics import (
    benefit_materialization_indicator,
    chain_cpu_seconds_per_source_tuple,
    critical_degree,
)


# --------------------------------------------------------------------------
# critical degree (Section 4.3)
# --------------------------------------------------------------------------

def test_critical_degree_formula():
    assert critical_degree(1000, 20e-6, 12e-6) == pytest.approx(8e-3)


def test_critical_degree_negative_when_cpu_bound():
    assert critical_degree(1000, 5e-6, 12e-6) < 0


def test_critical_degree_zero_tuples():
    assert critical_degree(0, 1.0, 0.5) == 0.0


def test_critical_degree_validation():
    with pytest.raises(SchedulingError):
        critical_degree(-1, 1.0, 1.0)
    with pytest.raises(SchedulingError):
        critical_degree(1, -1.0, 1.0)


# --------------------------------------------------------------------------
# bmi (Section 4.4)
# --------------------------------------------------------------------------

def test_bmi_formula():
    assert benefit_materialization_indicator(20e-6, 5e-6) == pytest.approx(2.0)


def test_bmi_low_when_io_expensive():
    assert benefit_materialization_indicator(10e-6, 20e-6) < 1.0


def test_bmi_validation():
    with pytest.raises(SchedulingError):
        benefit_materialization_indicator(1.0, 0.0)
    with pytest.raises(SchedulingError):
        benefit_materialization_indicator(-1.0, 1.0)


# --------------------------------------------------------------------------
# chain CPU cost (c_p)
# --------------------------------------------------------------------------

def test_scan_only_chain_cost(small_qep, params):
    chain = small_qep.chain("pR")
    cost = chain_cpu_seconds_per_source_tuple(chain.operators, params,
                                              include_receive=False)
    # scan move (100) + mat move (100) at 100 MIPS = 2 us per tuple.
    assert cost == pytest.approx(2e-6)


def test_receive_share_added(small_qep, params):
    chain = small_qep.chain("pR")
    with_receive = chain_cpu_seconds_per_source_tuple(chain.operators, params)
    without = chain_cpu_seconds_per_source_tuple(chain.operators, params,
                                                 include_receive=False)
    assert with_receive - without == pytest.approx(
        params.receive_cpu_seconds_per_tuple())


def test_probe_chain_cost_includes_fanout(small_qep, params):
    chain = small_qep.chain("pS")  # scan -> probe J1 (fanout 1) -> mat
    cost = chain_cpu_seconds_per_source_tuple(chain.operators, params,
                                              include_receive=False)
    # move 100 + search 100 + produce 50*1 + mat move 100*1 = 350 -> 3.5 us.
    assert cost == pytest.approx(3.5e-6)


def test_use_actuals_switches_fanout(small_catalog, small_tree, params):
    from repro.plan import build_qep
    qep = build_qep(small_catalog, small_tree,
                    actual_output_factors={"J1": 3.0})
    chain = qep.chain("pS")
    estimated = chain_cpu_seconds_per_source_tuple(
        chain.operators, params, include_receive=False)
    actual = chain_cpu_seconds_per_source_tuple(
        chain.operators, params, include_receive=False, use_actuals=True)
    assert actual > estimated


def test_every_pc_critical_at_w_min(tiny_fig5, params):
    """Section 4.3: any PC consuming remote data is critical at w_min."""
    for chain in tiny_fig5.qep.chains:
        cost = chain_cpu_seconds_per_source_tuple(chain.operators, params)
        assert cost < params.w_min, chain.name
