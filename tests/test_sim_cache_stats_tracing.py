"""Tests for the LRU page cache, statistics collectors and tracer."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Counter, LRUPageCache, TimeWeightedStat, Tracer, WelfordStat


# --------------------------------------------------------------------------
# LRUPageCache
# --------------------------------------------------------------------------

def test_cache_hit_after_insert():
    cache = LRUPageCache(4)
    cache.insert(1, 0)
    assert cache.lookup(1, 0)
    assert cache.hits.value == 1


def test_cache_miss_counts():
    cache = LRUPageCache(4)
    assert not cache.lookup(1, 0)
    assert cache.misses.value == 1


def test_cache_evicts_lru():
    cache = LRUPageCache(2)
    cache.insert(1, 0)
    cache.insert(1, 1)
    evicted = cache.insert(1, 2)
    assert evicted == (1, 0)
    assert not cache.lookup(1, 0)
    assert cache.lookup(1, 1)


def test_cache_lookup_refreshes_recency():
    cache = LRUPageCache(2)
    cache.insert(1, 0)
    cache.insert(1, 1)
    cache.lookup(1, 0)          # page 0 becomes most recent
    evicted = cache.insert(1, 2)
    assert evicted == (1, 1)


def test_cache_reinsert_is_not_eviction():
    cache = LRUPageCache(2)
    cache.insert(1, 0)
    assert cache.insert(1, 0) is None
    assert len(cache) == 1


def test_cache_invalidate_extent():
    cache = LRUPageCache(8)
    for page in range(3):
        cache.insert(1, page)
    cache.insert(2, 0)
    assert cache.invalidate_extent(1) == 3
    assert len(cache) == 1


def test_cache_hit_ratio():
    cache = LRUPageCache(4)
    cache.insert(1, 0)
    cache.lookup(1, 0)
    cache.lookup(1, 1)
    assert cache.hit_ratio() == pytest.approx(0.5)


def test_cache_capacity_validation():
    with pytest.raises(SimulationError):
        LRUPageCache(0)


# --------------------------------------------------------------------------
# Counter / WelfordStat / TimeWeightedStat
# --------------------------------------------------------------------------

def test_counter_accumulates():
    counter = Counter()
    counter.add(3)
    counter.add()
    assert counter.value == 4


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().add(-1)


def test_welford_mean_and_variance():
    stat = WelfordStat()
    for value in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        stat.record(value)
    assert stat.mean == pytest.approx(5.0)
    assert stat.variance == pytest.approx(32.0 / 7.0)
    assert stat.minimum == 2.0
    assert stat.maximum == 9.0


def test_welford_empty_is_zero():
    stat = WelfordStat()
    assert stat.mean == 0.0
    assert stat.variance == 0.0


def test_welford_single_sample():
    stat = WelfordStat()
    stat.record(3.5)
    assert stat.mean == 3.5
    assert stat.variance == 0.0


def test_time_weighted_mean(sim):
    stat = TimeWeightedStat(sim)
    stat.record(10.0)        # value 10 from t=0
    sim.timeout(4.0)
    sim.run()
    stat.record(20.0)        # value 20 from t=4
    sim.timeout(4.0)
    sim.run()
    # 10 held for 4s, 20 held for 4s -> mean 15.
    assert stat.mean() == pytest.approx(15.0)


def test_time_weighted_empty(sim):
    assert TimeWeightedStat(sim).mean() == 0.0


# --------------------------------------------------------------------------
# Tracer
# --------------------------------------------------------------------------

def test_tracer_records_with_time(sim):
    tracer = Tracer(sim)
    sim.timeout(2.0)
    sim.run()
    tracer.emit("cat", "message", detail=7)
    assert tracer.events[0].time == 2.0
    assert tracer.events[0].payload == {"detail": 7}


def test_tracer_disabled_drops_events(sim):
    tracer = Tracer(sim, enabled=False)
    tracer.emit("cat", "msg")
    assert tracer.events == []


def test_tracer_filter_by_category(sim):
    tracer = Tracer(sim)
    tracer.emit("a", "1")
    tracer.emit("b", "2")
    tracer.emit("a", "3")
    assert [e.message for e in tracer.filter("a")] == ["1", "3"]
    assert tracer.count("b") == 1


def test_tracer_filter_since(sim):
    tracer = Tracer(sim)
    tracer.emit("a", "early")
    sim.timeout(5.0)
    sim.run()
    tracer.emit("a", "late")
    assert [e.message for e in tracer.filter("a", since=1.0)] == ["late"]


def test_tracer_dump_renders_lines(sim):
    tracer = Tracer(sim)
    tracer.emit("cat", "hello")
    assert "hello" in tracer.dump()
