"""Tests for runtime statistics collection and misestimate detection."""

import pytest

from repro import SimulationParameters, QueryEngine, UniformDelay, make_policy
from repro.common.errors import SchedulingError
from repro.core.statistics import JoinObservation, RuntimeStatistics
from repro.plan import build_qep


# --------------------------------------------------------------------------
# JoinObservation
# --------------------------------------------------------------------------

def test_error_ratio():
    obs = JoinObservation("J1", estimated_build=100.0, observed_build=150.0)
    assert obs.error_ratio == pytest.approx(1.5)


def test_error_ratio_unobserved():
    assert JoinObservation("J1", 100.0).error_ratio is None


def test_error_ratio_zero_estimate():
    assert JoinObservation("J1", 0.0, observed_build=10.0).error_ratio == float("inf")
    assert JoinObservation("J1", 0.0, observed_build=0.0).error_ratio == 1.0


@pytest.mark.parametrize("observed,misestimated", [
    (100.0, False),    # exact
    (149.0, False),    # within 1.5x
    (151.0, True),     # above 1.5x
    (67.0, False),     # within 1/1.5
    (66.0, True),      # below 1/1.5
])
def test_misestimation_threshold(observed, misestimated):
    obs = JoinObservation("J1", 100.0, observed_build=observed)
    assert obs.is_misestimated(0.5) is misestimated


def test_unobserved_is_never_misestimated():
    assert not JoinObservation("J1", 100.0).is_misestimated(0.0)


# --------------------------------------------------------------------------
# RuntimeStatistics container
# --------------------------------------------------------------------------

def test_register_and_observe():
    stats = RuntimeStatistics()
    stats.register_join("J1", 100.0)
    stats.observe_build("J1", 250.0, time=1.5)
    obs = stats.observation("J1")
    assert obs.observed_build == 250.0
    assert obs.observed_at == 1.5


def test_register_twice_rejected():
    stats = RuntimeStatistics()
    stats.register_join("J1", 1.0)
    with pytest.raises(SchedulingError):
        stats.register_join("J1", 1.0)


def test_observe_unknown_rejected():
    with pytest.raises(SchedulingError):
        RuntimeStatistics().observe_build("J9", 1.0, time=0.0)


def test_misestimated_joins_filtering():
    stats = RuntimeStatistics()
    stats.register_join("good", 100.0)
    stats.register_join("bad", 100.0)
    stats.register_join("pending", 100.0)
    stats.observe_build("good", 105.0, time=1.0)
    stats.observe_build("bad", 300.0, time=2.0)
    flagged = stats.misestimated_joins(0.5)
    assert [o.join_name for o in flagged] == ["bad"]


def test_misestimated_negative_threshold_rejected():
    with pytest.raises(SchedulingError):
        RuntimeStatistics().misestimated_joins(-0.1)


def test_rate_history():
    stats = RuntimeStatistics()
    stats.snapshot_rates(0.0, {"A": 1e-5, "B": 2e-5})
    stats.snapshot_rates(1.0, {"A": 3e-5, "B": 2e-5})
    assert stats.wait_series("A") == [(0.0, 1e-5), (1.0, 3e-5)]
    assert len(stats.rate_history) == 2


# --------------------------------------------------------------------------
# End-to-end detection through the engine
# --------------------------------------------------------------------------

def _run_with_factor(workload, factor):
    qep = build_qep(workload.catalog, workload.tree,
                    actual_output_factors={"J1": factor})
    params = SimulationParameters()
    delays = {name: UniformDelay(params.w_min)
              for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, qep, make_policy("SEQ"), delays,
                         params=params, seed=1)
    return engine.run()


def test_engine_detects_injected_misestimate(tiny_fig5):
    result = _run_with_factor(tiny_fig5, 3.0)
    # J1 feeds J2's build (and propagates to J3): both get flagged.
    assert "J2" in result.reopt_opportunities


def test_engine_flags_nothing_with_exact_estimates(tiny_fig5):
    result = _run_with_factor(tiny_fig5, 1.0)
    assert result.reopt_opportunities == []


def test_engine_records_all_observations(tiny_fig5):
    result = _run_with_factor(tiny_fig5, 1.0)
    observations = result.statistics.observations()
    assert len(observations) == len(tiny_fig5.qep.joins)
    for obs in observations:
        assert obs.observed_build is not None
        assert obs.error_ratio == pytest.approx(1.0, rel=0.01)


def test_engine_records_rate_snapshots(tiny_fig5):
    result = _run_with_factor(tiny_fig5, 1.0)
    assert len(result.statistics.rate_history) == result.planning_phases
