"""The execution-kernel layer: protocol, cancellation, asyncio backend.

The asyncio tests run real (small) sleeps through ``asyncio.run`` inside
plain sync test functions — the container has no pytest-asyncio and the
kernel does not need it.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.exec import (
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Kernel,
    SimEvent,
    Timeout,
)
from repro.exec.aio import AsyncioKernel
from repro.sim.engine import Simulator


# -- protocol ---------------------------------------------------------------

def test_both_backends_satisfy_the_kernel_protocol():
    assert isinstance(Simulator(), Kernel)
    assert isinstance(AsyncioKernel(), Kernel)


def test_policy_visible_surface_is_factory_complete(sim):
    event = sim.event("e")
    assert isinstance(event, SimEvent) and not event.triggered
    assert isinstance(sim.timeout(1.0), Timeout)
    composite = sim.any_of([event, sim.timeout(2.0)])
    assert composite in list(composite.events) or composite.events


# -- timeout cancellation ---------------------------------------------------

def test_cancelled_timeout_never_fires_and_releases_the_run(sim):
    guard = sim.timeout(60.0)
    guard.cancel()
    sim.run()
    assert sim.now == 0.0
    assert not guard.processed


def test_cancel_after_processing_is_an_error(sim):
    guard = sim.timeout(1.0)
    sim.run()
    assert guard.processed
    with pytest.raises(SimulationError):
        guard.cancel()


def test_peek_and_step_skip_cancelled_events(sim):
    early = sim.timeout(1.0)
    late = sim.timeout(2.0)
    early.cancel()
    assert sim.peek() == 2.0
    sim.step()
    assert sim.now == 2.0 and late.processed and not early.processed


def test_guard_timeout_pattern_does_not_stretch_the_run(sim):
    """The DQP stall idiom: any_of(data, guard) then cancel the guard."""
    woke_at = {}

    def waiter(data):
        guard = sim.timeout(60.0)
        yield sim.any_of([data, guard])
        if not guard.processed:
            guard.cancel()
        woke_at["t"] = sim.now

    def feeder(data):
        yield sim.timeout(1.5)
        data.succeed("payload")

    data = sim.event("data")
    sim.process(waiter(data))
    sim.process(feeder(data))
    sim.run()
    assert woke_at["t"] == 1.5
    # Without the cancel the heap would hold the guard until t=60.
    assert sim.now == 1.5


def test_run_with_until_still_honours_cancellation(sim):
    cancelled = sim.timeout(5.0)
    kept = sim.timeout(3.0)
    cancelled.cancel()
    sim.run(until=10.0)
    assert kept.processed and not cancelled.processed
    assert sim.now == 10.0


# -- asyncio backend --------------------------------------------------------

def test_asyncio_kernel_runs_processes_in_real_time():
    kernel = AsyncioKernel()

    def worker():
        yield kernel.timeout(0.05)
        return kernel.now

    proc = kernel.process(worker())
    start = time.perf_counter()
    asyncio.run(kernel.run())
    elapsed = time.perf_counter() - start
    assert proc.value == pytest.approx(kernel.now)
    assert kernel.now >= 0.05
    assert elapsed >= 0.04  # really slept


def test_asyncio_same_deadline_order_matches_the_simulator():
    """Zero-delay chains interleave identically on both backends."""

    def script(kernel, log):
        def proc(tag):
            for step in range(3):
                yield kernel.timeout(0.0)
                log.append((tag, step))
        for tag in ("a", "b", "c"):
            kernel.process(proc(tag), name=tag)

    sim_log: list = []
    sim = Simulator()
    script(sim, sim_log)
    sim.run()

    aio_log: list = []
    kernel = AsyncioKernel()
    script(kernel, aio_log)
    asyncio.run(kernel.run())

    assert aio_log == sim_log


def test_asyncio_priority_breaks_same_deadline_ties():
    kernel = AsyncioKernel()
    order = []
    low = kernel.event("low")
    low.add_callback(lambda e: order.append("normal"))
    urgent = kernel.event("urgent")
    urgent.add_callback(lambda e: order.append("urgent"))
    low.succeed(priority=PRIORITY_NORMAL)
    urgent.succeed(priority=PRIORITY_URGENT)
    asyncio.run(kernel.run())
    assert order == ["urgent", "normal"]


def test_asyncio_until_event_waits_for_external_tasks():
    """An idle kernel must keep waiting for a live task's trigger."""
    kernel = AsyncioKernel()
    data = kernel.event("data")

    def consumer():
        value = yield data
        return value

    proc = kernel.process(consumer())

    async def scenario():
        async def feeder():
            await asyncio.sleep(0.03)
            data.succeed("hello")
        task = asyncio.ensure_future(feeder())
        await kernel.run(until_event=proc)
        await task

    asyncio.run(scenario())
    assert proc.value == "hello"


def test_asyncio_cancelled_guard_does_not_delay_completion():
    kernel = AsyncioKernel()

    def worker():
        guard = kernel.timeout(30.0)
        data = kernel.timeout(0.02, value="x")
        yield kernel.any_of([data, guard])
        guard.cancel()
        return "done"

    proc = kernel.process(worker())
    start = time.perf_counter()
    asyncio.run(kernel.run(until_event=proc))
    assert proc.value == "done"
    assert time.perf_counter() - start < 5.0  # not the 30s guard


def test_asyncio_run_is_not_reentrant():
    kernel = AsyncioKernel()

    async def scenario():
        kernel.timeout(0.5)
        inner = asyncio.ensure_future(kernel.run())
        await asyncio.sleep(0.01)
        with pytest.raises(SimulationError):
            await kernel.run()
        inner.cancel()
        try:
            await inner
        except asyncio.CancelledError:
            pass

    asyncio.run(scenario())


def test_asyncio_schedule_in_the_past_is_rejected():
    kernel = AsyncioKernel()
    with pytest.raises(SimulationError):
        kernel.timeout(-1.0)


def test_process_failure_surfaces_from_asyncio_run():
    kernel = AsyncioKernel()

    def boom():
        yield kernel.timeout(0.0)
        raise ValueError("kaputt")

    kernel.process(boom())
    with pytest.raises(SimulationError, match="kaputt"):
        asyncio.run(kernel.run())


# -- live sources -----------------------------------------------------------

def test_jittered_batches_validates_shape():
    import numpy as np

    from repro.exec.live import jittered_batches

    async def first(agen):
        return await agen.__anext__()

    rng = np.random.default_rng(0)
    with pytest.raises(ConfigurationError):
        asyncio.run(first(jittered_batches(-1, 10, 1e-3, rng)))
    with pytest.raises(ConfigurationError):
        asyncio.run(first(jittered_batches(10, 0, 1e-3, rng)))
    with pytest.raises(ConfigurationError):
        asyncio.run(first(jittered_batches(10, 4, 1e-3, rng, jitter=2.0)))


def test_jittered_batches_ships_exactly_the_cardinality():
    import numpy as np

    from repro.exec.live import jittered_batches

    async def collect():
        rng = np.random.default_rng(3)
        return [count async for count in jittered_batches(10, 4, 1e-5, rng)]

    batches = asyncio.run(collect())
    assert batches == [4, 4, 2]


def test_live_engine_matches_simulated_result_tuples(figure_workload=None):
    """The live asyncio engine computes the same join result as the
    virtual-time engine — timing differs, data must not."""
    import numpy as np

    from repro.config import SimulationParameters
    from repro.core.engine import QueryEngine
    from repro.core.strategies import make_policy
    from repro.exec.live import LiveQueryEngine, jittered_batches
    from repro.experiments import figure5_workload
    from repro.wrappers.delays import UniformDelay

    workload = figure5_workload(scale=0.01)
    params = SimulationParameters()
    wait = 2e-5

    simulated = QueryEngine(
        workload.catalog, workload.qep, make_policy("DSE"),
        {rel: UniformDelay(wait) for rel in workload.relation_names},
        params=params, seed=5).run()

    def source_factory(rel):
        cardinality = workload.catalog.relation(rel).cardinality

        def make():
            rng = np.random.default_rng([5, len(rel)])
            return jittered_batches(cardinality, params.tuples_per_message,
                                    wait, rng)
        return make

    live_engine = LiveQueryEngine(
        workload.catalog, workload.qep, make_policy("DSE"),
        {rel: source_factory(rel) for rel in workload.relation_names},
        params=params, seed=5)
    live = asyncio.run(live_engine.run())

    assert live.result_tuples == simulated.result_tuples
    assert live.strategy == "DSE"
    assert live.response_time > 0
    assert set(live.wrapper_stats) == set(workload.relation_names)
    # Attribution invariant holds on the wall-clock backend too (only
    # when telemetry is on; default params keep it off -> empty dict).
    assert sum(live.stall_breakdown.values()) == pytest.approx(
        live.stall_time if live.stall_breakdown else 0.0)
