"""Tests for the DQS admission logic, DQP execution loop and DQO handling."""

import pytest

from repro.common.errors import MemoryOverflowError, SchedulingError
from repro.config import SimulationParameters
from repro.core.dqp import DynamicQueryProcessor, SchedulingPlan
from repro.core.dqs import DynamicQueryScheduler, PlanningPolicy
from repro.core.dqo import DynamicQEPOptimizer
from repro.core.events import (
    EndOfQEP,
    EndOfQF,
    MemoryOverflow,
    PhaseComplete,
    RateChange,
    TimeOut,
)
from repro.core.fragments import Fragment, FragmentStatus
from repro.core.runtime import QueryRuntime, World
from repro.core.strategies import SequentialPolicy
from repro.mediator.queues import Message


class FixedPolicy(PlanningPolicy):
    """Returns a fixed list of fragment names (for DQS/DQP unit tests)."""

    name = "FIXED"

    def __init__(self, names):
        self.names = names

    def select(self, runtime):
        return [runtime.fragments[name] for name in self.names
                if runtime.fragments[name].status is not FragmentStatus.DONE
                and runtime.is_c_schedulable(runtime.fragments[name])]


def make_runtime(qep, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    world = World(params, seed=9)
    for name in qep.source_relations():
        world.cm.register_source(name)
    return QueryRuntime(world, qep)


def feed(rt, source, tuples, eof=False):
    rt.world.cm.queue(source).put(Message(tuples, eof=eof))


def execute(rt, sp):
    dqp = DynamicQueryProcessor(rt)
    proc = rt.world.sim.process(_drive(dqp, sp))
    rt.world.sim.run()
    assert proc.failure is None, proc.failure
    return proc.value, dqp


def _drive(dqp, sp):
    event = yield from dqp.execute(sp)
    return event


# --------------------------------------------------------------------------
# DQS admission
# --------------------------------------------------------------------------

def test_dqs_admits_within_memory(small_qep):
    rt = make_runtime(small_qep)
    scheduler = DynamicQueryScheduler(rt, FixedPolicy(["pR"]))
    sp = scheduler.plan()
    assert [f.name for f in sp.fragments] == ["pR"]
    assert rt.fragments["pR"].hash_table is not None
    assert sp.overflow_fragment is None


def test_dqs_skips_fragment_that_does_not_fit(small_qep):
    # Budget fits pR's table (40 KB) but not also... use a tiny budget
    # that fits pR (40 KB) but not pS's J2 table (80 KB).
    rt = make_runtime(small_qep, query_memory_bytes=100 * 1024)
    rt.ensure_hash_table(rt.fragments["pR"])  # 40 KB reserved
    # Complete pR so pS is schedulable.
    feed(rt, "R", 1000, eof=True)
    execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    scheduler = DynamicQueryScheduler(rt, FixedPolicy(["pS"]))
    sp = scheduler.plan()
    # 40 KB held by J1 + 80 KB wanted for J2 > 100 KB: pS not schedulable
    # alone -> flagged for the DQO.
    assert sp.fragments == []
    assert sp.overflow_fragment is rt.fragments["pS"]


def test_dqs_rejects_non_schedulable_selection(small_qep):
    rt = make_runtime(small_qep)
    scheduler = DynamicQueryScheduler(rt, FixedPolicy(["pS"]))

    class BadPolicy(PlanningPolicy):
        name = "BAD"

        def select(self, runtime):
            return [runtime.fragments["pS"]]  # pS is not C-schedulable

    scheduler.policy = BadPolicy()
    with pytest.raises(SchedulingError):
        scheduler.plan()


def test_dqs_counts_planning_phases(small_qep):
    rt = make_runtime(small_qep)
    scheduler = DynamicQueryScheduler(rt, FixedPolicy(["pR"]))
    scheduler.plan()
    scheduler.plan()
    assert scheduler.planning_phases == 2


# --------------------------------------------------------------------------
# DQP execution
# --------------------------------------------------------------------------

def test_dqp_returns_end_of_qf(small_qep):
    rt = make_runtime(small_qep)
    rt.ensure_hash_table(rt.fragments["pR"])
    feed(rt, "R", 1000, eof=True)
    event, _ = execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    assert isinstance(event, EndOfQF)
    assert event.fragment_name == "pR"


def test_dqp_priority_order(small_qep, tiny_fig5):
    rt = make_runtime(tiny_fig5.qep)
    pa, pe = rt.fragments["pA"], rt.fragments["pE"]
    rt.ensure_hash_table(pa)
    rt.ensure_hash_table(pe)
    feed(rt, "A", 100)
    feed(rt, "E", 100)
    # pE has higher priority: its batch is processed first.
    sp = SchedulingPlan([pe, pa])
    feed(rt, "E", 0, eof=True)
    event, _ = execute(rt, sp)
    assert isinstance(event, EndOfQF)
    assert event.fragment_name == "pE"
    assert pa.tuples_in == 0 or pe.tuples_in > 0


def test_dqp_times_out_when_stalled(small_qep):
    rt = make_runtime(small_qep, timeout=0.5)
    rt.ensure_hash_table(rt.fragments["pR"])
    event, dqp = execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    assert isinstance(event, TimeOut)
    assert dqp.stall_time == pytest.approx(0.5)


def test_dqp_phase_complete_when_plan_done_but_query_not(small_qep):
    rt = make_runtime(small_qep)
    rt.ensure_hash_table(rt.fragments["pR"])
    feed(rt, "R", 1000, eof=True)
    execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    event, _ = execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    assert isinstance(event, PhaseComplete)


def test_dqp_rate_change_interrupts(small_qep):
    rt = make_runtime(small_qep, timeout=10.0)
    rt.ensure_hash_table(rt.fragments["pR"])
    dqp = DynamicQueryProcessor(rt)
    rt.world.cm.set_rate_listener(dqp.notify_rate_change)

    def driver():
        event = yield from dqp.execute(SchedulingPlan([rt.fragments["pR"]]))
        return event

    proc = rt.world.sim.process(driver())

    def rate_changer():
        yield rt.world.sim.timeout(0.1)
        dqp.notify_rate_change("R", 1e-5, 1e-3)

    rt.world.sim.process(rate_changer())
    rt.world.sim.run()
    assert isinstance(proc.value, RateChange)
    assert proc.value.source == "R"
    assert proc.value.time == pytest.approx(0.1)  # woke before the timeout


def test_dqp_memory_overflow_event(small_qep):
    rt = make_runtime(small_qep, query_memory_bytes=60 * 1024)
    rt.ensure_hash_table(rt.fragments["pR"])  # 40 KB estimate reserved
    # Deliver more tuples than estimated: table must grow beyond 60 KB.
    feed(rt, "R", 1600, eof=True)
    event, _ = execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    assert isinstance(event, MemoryOverflow)
    assert event.join_name == "J1"
    assert event.pending_tuples > 0


def test_dqp_context_switch_accounting(small_qep):
    rt = make_runtime(small_qep)
    rt.ensure_hash_table(rt.fragments["pR"])
    feed(rt, "R", 1000, eof=True)
    _, dqp = execute(rt, SchedulingPlan([rt.fragments["pR"]]))
    assert dqp.context_switches == 1  # switched onto pR once


# --------------------------------------------------------------------------
# DQO outer loop
# --------------------------------------------------------------------------

def run_query(rt, policy):
    scheduler = DynamicQueryScheduler(rt, policy)
    processor = DynamicQueryProcessor(rt)
    optimizer = DynamicQEPOptimizer(rt, scheduler, processor)
    proc = rt.world.sim.process(optimizer.run())
    proc.defused = True
    rt.world.sim.run()
    if proc.failure:
        raise proc.failure
    return proc.value, optimizer


def feed_all(rt, cards):
    for source, tuples in cards.items():
        feed(rt, source, tuples, eof=True)


def test_dqo_runs_query_to_completion(small_qep):
    rt = make_runtime(small_qep)
    feed_all(rt, {"R": 1000, "S": 2000, "T": 1500})
    event, _ = run_query(rt, SequentialPolicy())
    assert isinstance(event, EndOfQEP)
    assert event.result_tuples == 1500
    assert rt.all_done


def test_dqo_handles_memory_overflow_by_splitting(small_qep):
    # J1 (40 KB) + J2 (80 KB) exceed 100 KB together: the DQO must split.
    rt = make_runtime(small_qep, query_memory_bytes=100 * 1024)
    feed_all(rt, {"R": 1000, "S": 2000, "T": 1500})
    event, optimizer = run_query(rt, SequentialPolicy())
    assert isinstance(event, EndOfQEP)
    assert event.result_tuples == 1500
    assert optimizer.overflows_handled >= 1
    assert rt.memory_splits >= 1


def test_dqo_raises_when_query_cannot_fit(small_qep):
    rt = make_runtime(small_qep, query_memory_bytes=30 * 1024)  # < J1 table
    feed_all(rt, {"R": 1000, "S": 2000, "T": 1500})
    with pytest.raises(MemoryOverflowError):
        run_query(rt, SequentialPolicy())


def test_dqo_survives_timeouts(small_qep):
    rt = make_runtime(small_qep, timeout=0.05)

    # Feed data only after a while: the DQP times out first.
    def late_feeder():
        yield rt.world.sim.timeout(0.2)
        feed_all(rt, {"R": 1000, "S": 2000, "T": 1500})

    rt.world.sim.process(late_feeder())
    event, optimizer = run_query(rt, SequentialPolicy())
    assert isinstance(event, EndOfQEP)
    assert optimizer.timeouts >= 1
