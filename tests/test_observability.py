"""Tests for the unified telemetry layer.

Covers the metrics registry (including the disabled null path), stall
attribution summing to the DQP's ``stall_time``, the scheduler decision
audit log, periodic sampling, the exporters (JSON round-trip, CSV,
Prometheus text), the Tracer bisect/clear satellite, the Chrome-trace
export fixes and the new CLI subcommands.
"""

from __future__ import annotations

import csv
import json
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SimulationParameters
from repro.core.engine import FragmentStat, QueryEngine
from repro.core.strategies import make_policy
from repro.experiments.trace_export import chrome_trace_events
from repro.observability import (
    NULL_METRIC,
    DecisionAuditLog,
    DecisionRecord,
    MetricsRegistry,
    StallAttribution,
    Telemetry,
    load_metrics_json,
    prometheus_text,
    source_wait,
    telemetry_snapshot,
    write_metrics_csv,
    write_metrics_json,
    write_metrics_prometheus,
)
from repro.sim import Simulator
from repro.sim.tracing import Tracer
from repro.wrappers.delays import UniformDelay


# --------------------------------------------------------------------------
# Metrics registry
# --------------------------------------------------------------------------

def test_counter_and_get_or_create():
    registry = MetricsRegistry()
    counter = registry.counter("dqp.batches")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert registry.counter("dqp.batches") is counter
    assert registry.get("dqp.batches") is counter
    assert registry.names() == ["dqp.batches"]


def test_kind_mismatch_is_configuration_error():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ConfigurationError):
        registry.gauge("x")


def test_gauge_tracks_min_max_and_time_weighted_mean(sim):
    registry = MetricsRegistry(sim=sim)
    gauge = registry.gauge("memory.used")

    def proc():
        gauge.set(10.0)
        yield sim.timeout(1.0)
        gauge.set(30.0)
        yield sim.timeout(1.0)
        gauge.set(0.0)

    sim.process(proc())
    sim.run()
    assert gauge.minimum == 0.0 and gauge.maximum == 30.0
    assert gauge.time_weighted_mean() == pytest.approx(20.0)


def test_histogram_buckets_and_stream_stats():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(1.0, 10.0))
    for value in (0.5, 0.9, 5.0, 100.0):
        hist.observe(value)
    assert hist.counts == [2, 1, 1]  # <=1, <=10, +Inf
    assert hist.count == 4
    assert hist.sum == pytest.approx(106.4)
    assert hist.mean == pytest.approx(106.4 / 4)


def test_disabled_registry_hands_out_null_metric():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("a")
    assert counter is NULL_METRIC
    assert registry.histogram("b") is NULL_METRIC
    assert registry.gauge("c") is NULL_METRIC
    # No-ops, no registration, no state.
    counter.inc()
    counter.observe(1.0)
    counter.set(2.0)
    assert len(registry) == 0
    assert registry.as_dict() == {}


# --------------------------------------------------------------------------
# Stall attribution
# --------------------------------------------------------------------------

def test_stall_attribution_accumulates_by_cause():
    stalls = StallAttribution()
    stalls.record(source_wait("A"), 0.0, 1.5)
    stalls.record(source_wait("A"), 2.0, 2.5)
    stalls.record("memory-wait", 3.0, 3.25)
    assert stalls.total == pytest.approx(2.25)
    assert stalls.by_cause() == {"source-wait:A": 2.0, "memory-wait": 0.25}
    assert stalls.source_waits() == {"A": 2.0}
    assert len(stalls.intervals) == 3
    assert stalls.intervals[0].duration == pytest.approx(1.5)


def test_stall_attribution_rejects_backwards_interval():
    with pytest.raises(SimulationError):
        StallAttribution().record("timeout", 2.0, 1.0)


# --------------------------------------------------------------------------
# Decision audit log
# --------------------------------------------------------------------------

def test_audit_log_splits_typed_fields_from_details():
    log = DecisionAuditLog()
    record = log.record("degrade", "pA", time=1.0, critical=0.5, bmi=1.5,
                        bmt=1.0, mf="MF(pA)")
    assert record.critical == 0.5 and record.bmi == 1.5
    assert record.details == {"mf": "MF(pA)"}
    assert record.args()["mf"] == "MF(pA)"
    assert "time" not in record.args()
    assert log.count("degrade") == 1
    assert list(log.filter(subject="pA")) == [record]
    assert list(log.filter(kind="mf-stop")) == []


def test_decision_record_dict_roundtrip():
    record = DecisionRecord(time=2.0, kind="reopt-swap", subject="J1",
                            details={"new_build": ["A", "B"]})
    assert DecisionRecord.from_dict(record.to_dict()) == record


# --------------------------------------------------------------------------
# End-to-end: stall breakdown sums to stall_time, audit carries bmi > bmt
# --------------------------------------------------------------------------

def _run(workload, strategy, params, slow=None, trace=False, seed=1):
    waits = {name: params.w_min * (slow or {}).get(name, 1.0)
             for name in workload.relation_names}
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}
    engine = QueryEngine(workload.catalog, workload.qep,
                         make_policy(strategy), delays, params=params,
                         seed=seed, trace=trace)
    return engine.run()


@pytest.mark.parametrize("strategy", ["SEQ", "MA", "DSE"])
def test_stall_breakdown_sums_to_stall_time(mini_fig5, strategy):
    params = SimulationParameters()
    result = _run(mini_fig5, strategy, params, slow={"A": 10.0})
    assert result.stall_time > 0
    assert sum(result.stall_breakdown.values()) == pytest.approx(
        result.stall_time, abs=1e-9)
    # The slowed source dominates the engine's idle time.
    assert result.stall_breakdown.get(source_wait("A"), 0.0) > 0


def test_stall_breakdown_present_without_telemetry_flag(tiny_fig5):
    """Attribution is always on; metrics/samples are opt-in."""
    result = _run(tiny_fig5, "DSE", SimulationParameters(), slow={"A": 10.0})
    assert result.metrics is None
    assert result.samples == []
    assert sum(result.stall_breakdown.values()) == pytest.approx(
        result.stall_time, abs=1e-9)


def test_audit_records_degrade_with_bmi_exceeding_bmt(mini_fig5):
    params = SimulationParameters()
    result = _run(mini_fig5, "DSE", params, slow={"F": 10.0})
    degrades = [d for d in result.decisions if d.kind == "degrade"]
    assert degrades, "overloaded-source DSE run must degrade some chain"
    for record in degrades:
        assert record.bmi is not None and record.bmt == params.bmt
        assert record.bmi > record.bmt
        assert record.critical is not None and record.critical > 0
        assert record.memory_total_bytes == params.query_memory_bytes
    assert result.degradations == len(degrades)


def test_telemetry_run_collects_metrics_and_samples(mini_fig5):
    params = SimulationParameters(telemetry_enabled=True,
                                  telemetry_sample_interval=0.05)
    result = _run(mini_fig5, "DSE", params, slow={"A": 10.0})
    assert result.metrics is not None
    assert result.metrics.get("dqp.batches").value == result.batches_processed
    assert (result.metrics.get("dqs.planning_phases").value
            == result.planning_phases)
    assert result.samples, "periodic sampler produced no samples"
    times = [sample.time for sample in result.samples]
    assert times == sorted(times)
    last = result.samples[-1]
    assert last.memory_total_bytes == params.query_memory_bytes
    assert set(last.queue_depth_tuples) == set(mini_fig5.relation_names)


# --------------------------------------------------------------------------
# Exporters
# --------------------------------------------------------------------------

@pytest.fixture
def telemetry_result(tiny_fig5):
    params = SimulationParameters(telemetry_enabled=True,
                                  telemetry_sample_interval=0.05)
    return _run(tiny_fig5, "DSE", params, slow={"A": 10.0})


def test_json_export_roundtrip(telemetry_result, tmp_path):
    snapshot = telemetry_snapshot(telemetry_result)
    path = write_metrics_json(snapshot, tmp_path / "metrics.json")
    assert load_metrics_json(path) == snapshot


def test_csv_export_is_tidy(telemetry_result, tmp_path):
    snapshot = telemetry_snapshot(telemetry_result)
    path = write_metrics_csv(snapshot, tmp_path / "metrics.csv")
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["section", "name", "field", "value"]
    sections = {row[0] for row in rows[1:]}
    assert {"run", "stall", "metric"} <= sections
    stall_rows = {row[1]: float(row[3]) for row in rows if row[0] == "stall"}
    assert sum(stall_rows.values()) == pytest.approx(
        telemetry_result.stall_time, abs=1e-9)


def test_prometheus_text_format(telemetry_result, tmp_path):
    snapshot = telemetry_snapshot(telemetry_result)
    text = prometheus_text(snapshot)
    assert "# TYPE repro_response_time_seconds gauge" in text
    assert 'repro_stall_seconds_total{cause="source-wait:A"}' in text
    assert 'repro_decisions_total{kind="degrade"}' in text
    assert "# TYPE repro_dqp_batches counter" in text
    assert 'repro_dqp_stall_seconds_bucket{le="+Inf"}' in text
    assert "repro_dqp_stall_seconds_sum" in text
    path = write_metrics_prometheus(snapshot, tmp_path / "m.prom")
    assert path.read_text() == text


def test_histogram_bucket_lines_are_cumulative(telemetry_result):
    snapshot = telemetry_snapshot(telemetry_result)
    hist = snapshot["metrics"]["dqp.stall_seconds"]
    text = prometheus_text(snapshot)
    last_finite = None
    for line in text.splitlines():
        if line.startswith('repro_dqp_stall_seconds_bucket{le="+Inf"}'):
            assert int(float(line.split()[-1])) == hist["count"]
        elif line.startswith("repro_dqp_stall_seconds_bucket"):
            value = int(float(line.split()[-1]))
            if last_finite is not None:
                assert value >= last_finite  # cumulative, never decreasing
            last_finite = value


# --------------------------------------------------------------------------
# Tracer satellites: bisect filter + clear
# --------------------------------------------------------------------------

def test_tracer_since_filter_uses_time_order(sim):
    tracer = Tracer(sim, enabled=True)

    def proc():
        for i in range(10):
            tracer.emit("tick", f"t{i}")
            yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()
    got = [event.message for event in tracer.filter(since=5.0)]
    assert got == [f"t{i}" for i in range(5, 10)]
    got = [event.message for event in tracer.filter("tick", since=7.5)]
    assert got == ["t8", "t9"]
    assert list(tracer.filter(since=100.0)) == []
    assert len(list(tracer.filter())) == 10


def test_tracer_clear(sim):
    tracer = Tracer(sim, enabled=True)
    tracer.emit("a", "x")
    tracer.emit("b", "y")
    assert tracer.count("a") == 1
    tracer.clear()
    assert tracer.events == []
    assert list(tracer.filter(since=0.0)) == []
    tracer.emit("a", "z")
    assert [e.message for e in tracer.filter("a")] == ["z"]


# --------------------------------------------------------------------------
# Chrome-trace export fixes
# --------------------------------------------------------------------------

def test_chrome_trace_allocates_tid_for_unknown_chain():
    stat = FragmentStat(name="CF(pX)", kind="cf", chain="pX",
                        started_at=0.0, finished_at=1.0, tuples_in=5,
                        tuples_out=5, batches=1, cpu_seconds=0.1)
    view = SimpleNamespace(fragment_stats={}, timeline=lambda: [stat],
                           tracer=None, decisions=[])
    events = chrome_trace_events(view)
    spans = [e for e in events if e["ph"] == "X"]
    assert spans and spans[0]["tid"] == 1
    names = {e["args"]["name"]: e["tid"] for e in events if e["ph"] == "M"}
    assert names == {"pX": 1}


def test_chrome_trace_decision_instants_carry_audit_args(mini_fig5):
    params = SimulationParameters()
    result = _run(mini_fig5, "DSE", params, slow={"F": 10.0}, trace=True)
    events = chrome_trace_events(result)
    degrades = [e for e in events
                if e["ph"] == "i" and e["name"].startswith("degrade:")]
    assert degrades
    for event in degrades:
        assert event["args"]["bmi"] > event["args"]["bmt"]
        assert "critical" in event["args"]
        assert "memory_used_bytes" in event["args"]


def test_chrome_trace_without_tracer_has_no_instants(tiny_fig5):
    result = _run(tiny_fig5, "DSE", SimulationParameters(), trace=False)
    events = chrome_trace_events(result)
    assert all(e["ph"] != "i" for e in events)


# --------------------------------------------------------------------------
# Telemetry facade
# --------------------------------------------------------------------------

def test_disabled_telemetry_is_inert(sim):
    telemetry = Telemetry()
    assert not telemetry.sampling
    assert telemetry.registry.counter("x") is NULL_METRIC
    assert telemetry.start_sampler(None, None) is None
    telemetry.stop_sampler()  # no-op, must not raise


def test_sampler_requires_positive_interval(sim):
    from repro.observability import TelemetrySampler
    with pytest.raises(ConfigurationError):
        TelemetrySampler(sim, 0.0, None, None, [])


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def test_cli_metrics_writes_all_three_formats(tmp_path, capsys):
    out = tmp_path / "telemetry"
    assert main(["metrics", "--strategy", "dse", "--scale", "0.02",
                 "--slow", "A:10", "--out", str(out)]) == 0
    assert (out / "metrics-dse.json").exists()
    assert (out / "metrics-dse.csv").exists()
    assert (out / "metrics-dse.prom").exists()
    stdout = capsys.readouterr().out
    assert "stall breakdown:" in stdout
    snapshot = load_metrics_json(out / "metrics-dse.json")
    assert sum(snapshot["stall_breakdown"].values()) == pytest.approx(
        snapshot["stall_time"], abs=1e-9)


def test_cli_metrics_single_format(tmp_path):
    target = tmp_path / "only.json"
    assert main(["metrics", "--scale", "0.02", "--json", str(target)]) == 0
    assert target.exists()
    assert not (tmp_path / "telemetry").exists()


def test_cli_trace_writes_chrome_trace(tmp_path, capsys):
    target = tmp_path / "trace.json"
    assert main(["trace", "--strategy", "dse", "--scale", "0.02",
                 "--slow", "A:10", "--out", str(target)]) == 0
    payload = json.loads(target.read_text())
    assert payload["traceEvents"]
    assert "decisions" in capsys.readouterr().out


def test_cli_run_trace_out(tmp_path, capsys):
    target = tmp_path / "run-trace.json"
    assert main(["run", "--strategy", "dse", "--scale", "0.02",
                 "--trace-out", str(target)]) == 0
    payload = json.loads(target.read_text())
    phases = {event["ph"] for event in payload["traceEvents"]}
    assert "X" in phases


def test_cli_metrics_rejects_unknown_slow_relation():
    with pytest.raises(SystemExit):
        main(["metrics", "--scale", "0.02", "--slow", "ZZ:10"])
