"""Integration tests: admission control and dynamic budget re-planning.

These exercise the PR's acceptance scenarios end to end on the Figure 5
workload:

* a query whose minimum working set does not fit the global pool is
  *queued* by the admission controller and admitted when a running
  query releases its lease;
* a running query that degraded a pipeline chain for lack of memory
  gets a grow offer when another query finishes, and its DQS re-plan
  stops the materialization (``reason: budget-grow``) — the degraded
  PC goes back to direct scheduling mid-flight.
"""

import pytest

from repro import (
    ConfigurationError,
    MultiQueryEngine,
    QuerySubmission,
    SimulationParameters,
    UniformDelay,
    make_policy,
)

KB = 1024


def sub(workload, name, strategy, wait, mem=None, mn=None, mx=None,
        priority=0.0, start=0.0):
    return QuerySubmission(
        name=name, catalog=workload.catalog, qep=workload.qep,
        policy=make_policy(strategy),
        delay_models={n: UniformDelay(wait)
                      for n in workload.relation_names},
        start_time=start, memory_bytes=mem, min_memory_bytes=mn,
        max_memory_bytes=mx, priority=priority)


@pytest.fixture
def params():
    return SimulationParameters().with_overrides(
        dynamic_budget_replanning=True)


def test_query_queued_until_lease_released(tiny_fig5, params):
    """Admission: a too-big second query waits for the first to finish."""
    engine = MultiQueryEngine(params=params, seed=11,
                              global_memory_bytes=240 * KB)
    engine.submit(sub(tiny_fig5, "running", "SEQ", params.w_min,
                      mem=180 * KB))
    # min 100K > the 60K spare left by "running": must queue.
    engine.submit(sub(tiny_fig5, "waiter", "SEQ", params.w_min,
                      mem=150 * KB, mn=100 * KB, mx=200 * KB,
                      start=0.001))
    result = engine.run()

    waiter = result.outcome("waiter")
    running = result.outcome("running")
    assert running.admission_wait == 0.0
    assert waiter.admission_wait > 0.0
    # Admitted right when the running query completed.
    assert waiter.admission_wait == pytest.approx(
        running.completion_time - 0.001)
    assert waiter.memory_granted_bytes >= 100 * KB
    assert result.queued_queries == 1
    assert result.mean_admission_wait > 0.0
    assert all(o.result_tuples == 1000 for o in result.outcomes)

    kinds = [(r.kind, r.subject) for r in result.decisions
             if r.kind in ("admit", "admission-queue")]
    assert ("admission-queue", "waiter") in kinds
    assert kinds.index(("admission-queue", "waiter")) \
        < kinds.index(("admit", "waiter"))


def test_budget_grow_reverses_memory_degradation(tiny_fig5, params):
    """Re-planning: a grow offer un-degrades a memory-blocked chain.

    The slow DSE query starts pinned at 60K — below chain pA's 80K build
    table — so the DQS degrades pA for memory.  When the fast query
    releases its lease the broker offers the freed bytes to the slow
    query, whose next planning phase stops MF(pA) with
    ``reason: budget-grow`` and schedules the chain directly again.
    """
    engine = MultiQueryEngine(params=params, seed=11,
                              global_memory_bytes=240 * KB)
    engine.submit(sub(tiny_fig5, "fast", "SEQ", params.w_min,
                      mem=180 * KB))
    engine.submit(sub(tiny_fig5, "slow", "DSE", 10 * params.w_min,
                      mem=60 * KB, mn=60 * KB, mx=240 * KB))
    result = engine.run()

    slow = result.outcome("slow")
    assert slow.result_tuples == 1000
    assert slow.budget_grows >= 1
    assert slow.memory_granted_bytes == 60 * KB

    def first(kind, **matches):
        for record in result.decisions:
            if record.kind != kind:
                continue
            if all(record.details.get(k) == v for k, v in matches.items()):
                return record
        return None

    blocked = first("degrade", memory_blocked=True)
    assert blocked is not None, "no memory-blocked degradation recorded"
    assert blocked.subject == "pA"
    assert blocked.details["needed_bytes"] > blocked.details[
        "available_bytes"]

    grow = first("lease-grow")
    assert grow is not None and grow.subject == "slow"
    assert grow.details["granted_bytes"] > 0

    undo = first("mf-stop", reason="budget-grow")
    assert undo is not None
    assert undo.details["chain"] == "pA"

    cf = first("cf-create", chain="pA")
    assert cf is not None

    # The causal chain holds in decision-time order: degraded while
    # pinned, grown when the fast query finished, un-degraded right
    # after, complement scheduled last.
    assert blocked.time < grow.time < undo.time <= cf.time


def test_min_working_set_exceeding_pool_rejected(tiny_fig5, params):
    engine = MultiQueryEngine(params=params, seed=1,
                              global_memory_bytes=100 * KB)
    engine.submit(sub(tiny_fig5, "huge", "SEQ", params.w_min,
                      mem=200 * KB, mn=200 * KB))
    with pytest.raises(ConfigurationError, match="exceeds the global"):
        engine.run()


def test_priority_admission_order(tiny_fig5, params):
    """Priority policy: the high-priority waiter is admitted first."""
    engine = MultiQueryEngine(params=params, seed=11,
                              global_memory_bytes=240 * KB,
                              admission="priority")
    engine.submit(sub(tiny_fig5, "running", "SEQ", params.w_min,
                      mem=180 * KB))
    engine.submit(sub(tiny_fig5, "meek", "SEQ", params.w_min,
                      mem=160 * KB, mn=160 * KB, priority=1.0,
                      start=0.001))
    engine.submit(sub(tiny_fig5, "vip", "SEQ", params.w_min,
                      mem=160 * KB, mn=160 * KB, priority=9.0,
                      start=0.002))
    result = engine.run()
    admits = [r.subject for r in result.decisions if r.kind == "admit"]
    assert admits.index("vip") < admits.index("meek")
    assert all(o.result_tuples == 1000 for o in result.outcomes)


def test_admission_none_keeps_private_budgets(tiny_fig5, params):
    """``admission='none'`` runs ungoverned even with a pool size set."""
    engine = MultiQueryEngine(params=params, seed=3,
                              global_memory_bytes=64 * KB,
                              admission="none")
    engine.submit(sub(tiny_fig5, "q", "SEQ", params.w_min))
    result = engine.run()
    assert result.outcome("q").admission_wait == 0.0
    assert not any(r.kind in ("admit", "admission-queue")
                   for r in result.decisions)


def test_unknown_admission_policy_rejected(params):
    with pytest.raises(ConfigurationError, match="unknown admission"):
        MultiQueryEngine(params=params, admission="lifo")


def test_submission_memory_validation(tiny_fig5):
    with pytest.raises(ConfigurationError, match="must be positive"):
        sub(tiny_fig5, "q", "SEQ", 1e-5, mem=0)
    with pytest.raises(ConfigurationError, match="must be positive"):
        sub(tiny_fig5, "q", "SEQ", 1e-5, mn=-1)
    with pytest.raises(ConfigurationError, match="exceeds max_memory_bytes"):
        sub(tiny_fig5, "q", "SEQ", 1e-5, mn=200, mx=100)
    with pytest.raises(ConfigurationError, match="below min_memory_bytes"):
        sub(tiny_fig5, "q", "SEQ", 1e-5, mem=100, mn=200, mx=300)
    with pytest.raises(ConfigurationError, match="exceeds max_memory_bytes"):
        sub(tiny_fig5, "q", "SEQ", 1e-5, mem=400, mn=200, mx=300)


def test_governed_payload_round_trip(tiny_fig5, params):
    """Decisions and admission outcomes survive the worker boundary."""
    from repro.parallel.results import (
        multiquery_result_from_payload,
        multiquery_result_to_payload,
    )

    engine = MultiQueryEngine(params=params, seed=11,
                              global_memory_bytes=240 * KB)
    engine.submit(sub(tiny_fig5, "fast", "SEQ", params.w_min,
                      mem=180 * KB))
    engine.submit(sub(tiny_fig5, "slow", "DSE", 10 * params.w_min,
                      mem=60 * KB, mn=60 * KB, mx=240 * KB))
    result = engine.run()
    rebuilt = multiquery_result_from_payload(
        multiquery_result_to_payload(result))
    assert rebuilt.outcome("slow").budget_grows \
        == result.outcome("slow").budget_grows
    assert rebuilt.outcome("slow").memory_peak_bytes \
        == result.outcome("slow").memory_peak_bytes
    assert [r.kind for r in rebuilt.decisions] \
        == [r.kind for r in result.decisions]
    assert rebuilt.queued_queries == result.queued_queries
