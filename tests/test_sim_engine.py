"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Interrupt, Simulator
from repro.sim.engine import PRIORITY_URGENT


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    sim.timeout(2.5)
    sim.run()
    assert sim.now == 2.5


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_returns_value(sim):
    def worker():
        yield sim.timeout(1.0)
        return 42

    proc = sim.process(worker())
    sim.run()
    assert proc.value == 42
    assert sim.now == 1.0


def test_process_receives_timeout_value(sim):
    seen = []

    def worker():
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(worker())
    sim.run()
    assert seen == ["payload"]


def test_processes_interleave_in_time_order(sim):
    log = []

    def worker(name, delay):
        yield sim.timeout(delay)
        log.append(name)

    sim.process(worker("b", 2.0))
    sim.process(worker("a", 1.0))
    sim.process(worker("c", 3.0))
    sim.run()
    assert log == ["a", "b", "c"]


def test_same_time_events_fifo(sim):
    log = []

    def worker(name):
        yield sim.timeout(1.0)
        log.append(name)

    for name in ["x", "y", "z"]:
        sim.process(worker(name))
    sim.run()
    assert log == ["x", "y", "z"]


def test_run_until_stops_clock_exactly(sim):
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_run_until_beyond_last_event(sim):
    sim.timeout(1.0)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_event_succeed_wakes_waiter(sim):
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append(value)

    def opener():
        yield sim.timeout(5.0)
        gate.succeed("opened")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == ["opened"]
    assert sim.now == 5.0


def test_event_cannot_trigger_twice(sim):
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_event_failure_thrown_into_process(sim):
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_process_joining_another(sim):
    def inner():
        yield sim.timeout(2.0)
        return "inner-result"

    def outer():
        value = yield sim.process(inner())
        return f"got {value}"

    proc = sim.process(outer())
    sim.run()
    assert proc.value == "got inner-result"


def test_uncaught_process_exception_surfaces_in_run(sim):
    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("died")

    sim.process(bad())
    with pytest.raises(SimulationError, match="died"):
        sim.run()


def test_joined_process_failure_is_defused(sim):
    def bad():
        yield sim.timeout(1.0)
        raise RuntimeError("inner failure")

    caught = []

    def outer():
        try:
            yield sim.process(bad())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(outer())
    sim.run()
    assert caught == ["inner failure"]


def test_yielding_non_event_fails_process(sim):
    def bad():
        yield 42

    proc = sim.process(bad())
    proc.defused = True
    sim.run()
    assert isinstance(proc.failure, SimulationError)


def test_any_of_first_event_wins(sim):
    results = []

    def waiter():
        fired = yield sim.any_of([sim.timeout(5.0, value="slow"),
                                  sim.timeout(1.0, value="fast")])
        results.append(list(fired.values()))

    sim.process(waiter())
    sim.run(until=2.0)
    assert results == [["fast"]]


def test_all_of_waits_for_every_event(sim):
    results = []

    def waiter():
        fired = yield sim.all_of([sim.timeout(1.0, value="a"),
                                  sim.timeout(3.0, value="b")])
        results.append(sorted(v for v in fired.values()))

    sim.process(waiter())
    sim.run()
    assert results == [["a", "b"]]
    assert sim.now == 3.0


def test_any_of_empty_rejected(sim):
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_interrupt_wakes_waiting_process(sim):
    log = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(1.0)
        proc.interrupt("wake up")

    sim.process(interrupter())
    sim.run()
    # The process woke at t=1; the abandoned timeout still drains at 100.
    assert log == [(1.0, "wake up")]
    assert not proc.is_alive


def test_interrupt_finished_process_rejected(sim):
    def quick():
        yield sim.timeout(0.5)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_step_on_empty_queue_rejected(sim):
    with pytest.raises(SimulationError):
        sim.step()


def test_max_events_guard(sim):
    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_peek_returns_next_event_time(sim):
    sim.timeout(7.0)
    sim.timeout(3.0)
    assert sim.peek() == 3.0


def test_peek_empty_is_infinite(sim):
    assert sim.peek() == float("inf")


def test_urgent_priority_runs_first(sim):
    order = []
    normal = sim.event(name="normal")
    urgent = sim.event(name="urgent")
    normal.add_callback(lambda e: order.append("normal"))
    urgent.add_callback(lambda e: order.append("urgent"))
    normal.succeed()
    urgent.succeed(priority=PRIORITY_URGENT)
    sim.run()
    assert order == ["urgent", "normal"]


def test_callback_after_processed_runs_immediately(sim):
    event = sim.timeout(1.0)
    sim.run()
    log = []
    event.add_callback(lambda e: log.append("late"))
    assert log == ["late"]


def test_determinism_same_seedless_structure():
    def build_and_run():
        sim = Simulator()
        trace = []

        def worker(name, delay):
            for i in range(3):
                yield sim.timeout(delay)
                trace.append((sim.now, name, i))

        sim.process(worker("p1", 1.5))
        sim.process(worker("p2", 1.5))
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
