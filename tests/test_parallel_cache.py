"""The content-addressed run cache: keying, tolerance, bypass."""

from __future__ import annotations

import json

import pytest

from repro.config import SimulationParameters
from repro.parallel import RunCache, SweepRunner, code_fingerprint
from repro.parallel.spec import RunSpec, uniform_delay_specs


@pytest.fixture
def spec():
    params = SimulationParameters()
    waits = {name: params.w_min for name in ["A", "B", "C", "D", "E", "F"]}
    return RunSpec(strategy="DSE", seed=3, scale=0.02,
                   delays=uniform_delay_specs(waits), params=params)


def _vary(spec: RunSpec, **changes) -> RunSpec:
    from dataclasses import replace
    return replace(spec, **changes)


# --------------------------------------------------------------------------
# Cache keys
# --------------------------------------------------------------------------

def test_key_is_stable(spec):
    assert spec.cache_key() == spec.cache_key()
    assert spec.cache_key() == _vary(spec).cache_key()


def test_key_changes_with_seed(spec):
    assert spec.cache_key() != _vary(spec, seed=4).cache_key()


def test_key_changes_with_strategy_and_scale(spec):
    assert spec.cache_key() != _vary(spec, strategy="SEQ").cache_key()
    assert spec.cache_key() != _vary(spec, scale=0.03).cache_key()


def test_key_changes_with_memory_budget(spec):
    params = spec.params.with_overrides(
        query_memory_bytes=spec.params.query_memory_bytes // 2)
    assert spec.cache_key() != _vary(spec, params=params).cache_key()


def test_key_changes_with_delays(spec):
    slowed = dict(spec.delays)
    slowed["A"] = {"kind": "uniform", "mean": spec.params.w_min * 10}
    assert spec.cache_key() != _vary(spec, delays=slowed).cache_key()


def test_key_changes_with_code_fingerprint(spec, monkeypatch):
    before = spec.cache_key()
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "deadbeef")
    assert code_fingerprint() == "deadbeef"
    assert spec.cache_key() != before


# --------------------------------------------------------------------------
# RunCache behaviour
# --------------------------------------------------------------------------

def test_store_then_load_roundtrip(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("ab12", {"result": {"x": 1}})
    payload = cache.load("ab12")
    assert payload is not None and payload["result"] == {"x": 1}
    assert cache.hits == 1 and cache.misses == 0


def test_load_missing_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    assert cache.load("ab12") is None
    assert cache.misses == 1


def test_corrupt_file_is_a_miss_not_a_crash(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("ab12", {"result": {"x": 1}})
    cache.path_for("ab12").write_text("{ not json")
    assert cache.load("ab12") is None


def test_key_mismatch_inside_file_is_a_miss(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("ab12", {"result": {"x": 1}})
    # A file renamed/copied to the wrong key must not serve stale data.
    blob = json.loads(cache.path_for("ab12").read_text())
    target = cache.path_for("cd34")
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(blob))
    assert cache.load("cd34") is None


def test_store_leaves_no_temp_files(tmp_path):
    cache = RunCache(tmp_path)
    cache.store("ab12", {"result": {"x": 1}})
    files = [p for p in tmp_path.rglob("*") if p.is_file()]
    assert files == [cache.path_for("ab12")]


# --------------------------------------------------------------------------
# SweepRunner integration
# --------------------------------------------------------------------------

def test_runner_caches_and_serves(tmp_path, spec):
    cold = SweepRunner(cache_dir=tmp_path)
    [first] = cold.run([spec])
    assert cold.stats.executed_inline == 1 and cold.stats.stored == 1

    warm = SweepRunner(cache_dir=tmp_path)
    [second] = warm.run([spec])
    assert warm.stats.cache_hits == 1 and warm.stats.executed_inline == 0
    assert second.response_time == first.response_time
    assert second.batches_processed == first.batches_processed


def test_runner_recomputes_after_corruption(tmp_path, spec):
    SweepRunner(cache_dir=tmp_path).run([spec])
    cache = RunCache(tmp_path)
    cache.path_for(spec.cache_key()).write_text("garbage")

    runner = SweepRunner(cache_dir=tmp_path)
    [result] = runner.run([spec])
    assert runner.stats.cache_hits == 0
    assert runner.stats.executed_inline == 1
    assert result.response_time > 0


def test_no_cache_bypasses_configured_dir(tmp_path, spec):
    SweepRunner(cache_dir=tmp_path).run([spec])
    runner = SweepRunner(cache_dir=tmp_path, use_cache=False)
    runner.run([spec])
    assert runner.stats.cache_hits == 0
    assert runner.stats.executed_inline == 1


def test_fingerprint_bump_invalidates(tmp_path, spec, monkeypatch):
    SweepRunner(cache_dir=tmp_path).run([spec])
    monkeypatch.setenv("REPRO_CODE_FINGERPRINT", "bumped")
    runner = SweepRunner(cache_dir=tmp_path)
    runner.run([spec])
    assert runner.stats.cache_hits == 0
    assert runner.stats.executed_inline == 1
