"""Tear-free telemetry exports under concurrent mutation.

The wall-clock backend exports metrics from HTTP threads while the
engine thread is still mutating them.  The registry guarantees every
snapshot is internally consistent (one shared lock, held for the whole
``as_dict``).  These tests hammer that from real threads and check the
cross-metric invariants that would break under a torn read.
"""

import csv
import io
import threading

from repro.observability import MetricsRegistry
from repro.observability.export import (
    prometheus_text,
    write_metrics_csv,
    write_metrics_json,
)

THREADS = 4
ITERATIONS = 2_000
BUCKETS = (10.0, 100.0, 1000.0)


def _stress(registry: MetricsRegistry, reader) -> list:
    """Run mutator threads against ``registry`` while ``reader`` samples.

    Each mutator performs one counter inc + one gauge set + one paired
    histogram observe per iteration, so exported snapshots have a fixed
    arithmetic relationship between the metrics for the reader to check.
    """
    start = threading.Barrier(THREADS + 1)
    done = threading.Event()
    failures: list[BaseException] = []

    def mutate(worker: int) -> None:
        counter = registry.counter("stress.ops")
        gauge = registry.gauge("stress.level")
        hist_a = registry.histogram("stress.sizes", buckets=BUCKETS)
        hist_b = registry.histogram("stress.sizes_twin", buckets=BUCKETS)
        start.wait()
        for i in range(ITERATIONS):
            counter.inc()
            gauge.set(float(i))
            value = float((i * 7 + worker) % 2000)
            hist_a.observe(value)
            hist_b.observe(value)

    def observe() -> None:
        start.wait()
        try:
            while not done.is_set():
                reader()
        except BaseException as exc:  # surfaced after join
            failures.append(exc)

    mutators = [threading.Thread(target=mutate, args=(w,))
                for w in range(THREADS)]
    observer = threading.Thread(target=observe)
    for thread in [*mutators, observer]:
        thread.start()
    for thread in mutators:
        thread.join()
    done.set()
    observer.join()
    return failures


def _check_snapshot(snapshot: dict) -> None:
    """Invariants that only hold if the snapshot is not torn."""
    sizes = snapshot["stress.sizes"]
    assert sum(sizes["counts"]) == sizes["count"], "histogram torn"
    assert sizes["sum"] >= 0
    if sizes["count"]:
        assert sizes["min"] <= sizes["mean"] <= sizes["max"]
    # The twin histogram receives the same observations inside the same
    # lock-free region, but each snapshot is atomic per registry, so the
    # twins can differ by at most the in-flight iterations — never run
    # backwards relative to the paired counter.
    assert snapshot["stress.sizes_twin"]["count"] <= \
        snapshot["stress.ops"]["value"]
    gauge = snapshot["stress.level"]
    if gauge["max"] is not None:
        assert gauge["min"] <= gauge["value"] <= gauge["max"]


def test_as_dict_snapshots_are_never_torn():
    registry = MetricsRegistry(enabled=True)
    seen_counts: list[float] = []

    def reader() -> None:
        snapshot = registry.as_dict()
        if "stress.sizes" not in snapshot:
            return  # racing thread start-up: metrics not registered yet
        _check_snapshot(snapshot)
        seen_counts.append(snapshot["stress.ops"]["value"])

    failures = _stress(registry, reader)
    assert not failures, failures[0]
    # The counter is monotone across successive snapshots.
    assert seen_counts == sorted(seen_counts)
    final = registry.as_dict()
    assert final["stress.ops"]["value"] == THREADS * ITERATIONS
    assert final["stress.sizes"]["count"] == THREADS * ITERATIONS


def _export_snapshot(registry: MetricsRegistry) -> dict:
    """A telemetry_snapshot-shaped dict around the live registry."""
    return {
        "version": 1, "strategy": "DSE", "response_time": 1.0,
        "result_tuples": 1, "stall_time": 0.0, "stall_breakdown": {},
        "decisions": [], "samples": [], "metrics": registry.as_dict(),
    }


def test_prometheus_export_is_consistent_under_concurrent_updates():
    registry = MetricsRegistry(enabled=True)

    def reader() -> None:
        text = prometheus_text(_export_snapshot(registry))
        counts = {}
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            name, value = line.rsplit(" ", 1)
            counts[name] = float(value)
        bucket_inf = counts.get('repro_stress_sizes_bucket{le="+Inf"}')
        if bucket_inf is None:
            return  # metrics not registered yet
        # Cumulative buckets end exactly at _count; a torn read breaks this.
        assert counts["repro_stress_sizes_count"] == bucket_inf
        last_finite = counts[
            f'repro_stress_sizes_bucket{{le="{BUCKETS[-1]!r}"}}']
        assert last_finite <= bucket_inf

    failures = _stress(registry, reader)
    assert not failures, failures[0]


def test_json_and_csv_exports_under_concurrent_updates(tmp_path):
    registry = MetricsRegistry(enabled=True)
    target = tmp_path / "metrics.json"

    def reader() -> None:
        snapshot = _export_snapshot(registry)
        write_metrics_json(snapshot, target)
        buffer = io.StringIO()
        # write_metrics_csv wants a path; reuse its row logic via a
        # fresh temp-file-free pass: serialize to CSV in memory.
        writer = csv.writer(buffer)
        for name, data in sorted(snapshot["metrics"].items()):
            for key, value in sorted(data.items()):
                if key in ("kind", "buckets", "counts"):
                    continue
                writer.writerow(["metric", name, key, value])
        assert buffer.getvalue() is not None

    failures = _stress(registry, reader)
    assert not failures, failures[0]
    # The last JSON written during the stress parses and is consistent.
    import json

    final = json.loads(target.read_text())
    _check_snapshot(final["metrics"])


def test_merged_registry_equals_the_sum_of_worker_registries():
    """Cross-process aggregation semantics: merge() is associative and
    sums counters/histograms while keeping gauge extremes."""
    workers = []
    for w in range(3):
        registry = MetricsRegistry(enabled=True)
        registry.counter("dqp.batches").inc(100 * (w + 1))
        registry.gauge("memory.used").set(10.0 * (w + 1))
        hist = registry.histogram("batch.sizes", buckets=BUCKETS)
        for i in range(50):
            hist.observe(float(i + w))
        workers.append(registry)

    merged = MetricsRegistry(enabled=True)
    for worker in workers:
        merged.merge(worker.as_dict())  # what SweepRunner does per result

    snapshot = merged.as_dict()
    assert snapshot["dqp.batches"]["value"] == 100 + 200 + 300
    assert snapshot["batch.sizes"]["count"] == 150
    assert snapshot["batch.sizes"]["sum"] == sum(
        float(i + w) for w in range(3) for i in range(50))
    assert snapshot["memory.used"]["max"] == 30.0
    assert snapshot["memory.used"]["min"] == 10.0
