"""Property-based tests over whole executions.

These are the big invariants of the system: every strategy computes the
same answer on any workload; conservation laws hold (spilled = reloaded,
sent = consumed); the analytic bound really bounds; plan revisions
preserve semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CostModel,
    DynamicProgrammingOptimizer,
    QueryEngine,
    QueryGenerator,
    SimulationParameters,
    SymmetricHashJoinEngine,
    UniformDelay,
    build_qep,
    lower_bound,
    make_policy,
)
from repro.core.strategies.lwb import lower_bound as lwb
from repro.plan.reopt import swap_join_sides
from repro.plan.validation import validate_qep


def _workload(seed, num_relations=4):
    gen = QueryGenerator(np.random.default_rng(seed),
                         min_cardinality=500, max_cardinality=3000)
    workload = gen.generate(num_relations, shape="tree")
    tree = DynamicProgrammingOptimizer(
        CostModel(workload.catalog)).optimize(workload.query)
    qep = build_qep(workload.catalog, tree)
    return workload, tree, qep


def _delays(workload, rng, w_range=(5e-6, 100e-6)):
    return {name: UniformDelay(float(rng.uniform(*w_range)))
            for name in workload.relation_names}


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=2, max_value=5))
def test_all_strategies_agree_on_any_workload(seed, num_relations):
    workload, tree, qep = _workload(seed, num_relations)
    params = SimulationParameters()
    rng = np.random.default_rng(seed + 1)
    waits = {name: float(rng.uniform(5e-6, 100e-6))
             for name in workload.relation_names}

    # The analytic bound uses distribution *means*; a single run's
    # sampled delays can fall below them, so allow the retrieval term's
    # sampling deviation (sum of n uniforms: sigma = w * sqrt(n/3)).
    noise = 4 * max(
        waits[name] * np.sqrt(workload.catalog.relation(name).cardinality / 3)
        for name in workload.relation_names)
    bound = lwb(qep, waits, params) - noise

    counts = {}
    for strategy in ["SEQ", "MA", "DSE", "DSE-ND"]:
        delays = {name: UniformDelay(wait) for name, wait in waits.items()}
        engine = QueryEngine(workload.catalog, qep, make_policy(strategy),
                             delays, params=params, seed=seed)
        result = engine.run()
        counts[strategy] = result.result_tuples
        assert bound <= result.response_time, strategy
    assert len(set(counts.values())) == 1, counts

    # DPHJ converges to the same count.  Its expectation model carries
    # fractional tuples per stream; terminal remainders are amplified by
    # downstream fanouts, so small workloads see a few percent of drift.
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}
    dphj = SymmetricHashJoinEngine(workload.catalog, tree, delays,
                                   params=params, seed=seed).run()
    expected = counts["SEQ"]
    assert dphj.result_tuples == pytest.approx(expected,
                                               abs=max(10, expected * 0.03))


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=10_000))
def test_spill_reload_conservation(seed):
    """Everything MA spills is reloaded exactly once."""
    workload, _tree, qep = _workload(seed, 4)
    params = SimulationParameters()
    delays = {name: UniformDelay(20e-6) for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, qep, make_policy("MA"), delays,
                         params=params, seed=seed)
    result = engine.run()
    assert result.tuples_spilled == result.tuples_reloaded
    total = sum(workload.catalog.relation(n).cardinality
                for n in workload.relation_names)
    assert result.tuples_spilled == total


@settings(deadline=None, max_examples=10)
@given(st.integers(min_value=0, max_value=10_000))
def test_wrappers_deliver_everything(seed):
    workload, _tree, qep = _workload(seed, 4)
    params = SimulationParameters()
    delays = {name: UniformDelay(20e-6) for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, qep, make_policy("DSE"), delays,
                         params=params, seed=seed)
    result = engine.run()
    for name, (sent, _production, _blocked) in result.wrapper_stats.items():
        assert sent == workload.catalog.relation(name).cardinality


@settings(deadline=None, max_examples=15)
@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=3, max_value=6))
def test_any_single_swap_preserves_plan_semantics(seed, num_relations):
    """Swapping any join of any optimized plan keeps it valid with the
    same estimated (and actual) output cardinality."""
    workload, _tree, qep = _workload(seed, num_relations)
    for join_name in list(qep.joins):
        swapped = swap_join_sides(qep, join_name, tuple_size=40)
        validate_qep(swapped)
        assert (swapped.root.estimated_output_cardinality
                == pytest.approx(qep.root.estimated_output_cardinality))
        new_join = swapped.joins[join_name]
        old_join = qep.joins[join_name]
        assert new_join.build_relations == old_join.probe_relations
        assert (new_join.actual_probe_cardinality * new_join.actual_fanout()
                == pytest.approx(old_join.actual_probe_cardinality
                                 * old_join.actual_fanout(), rel=1e-9))


@settings(deadline=None, max_examples=8)
@given(st.integers(min_value=0, max_value=10_000))
def test_swap_executes_correctly_end_to_end(seed):
    """Executing a swapped plan yields the same result as the original.

    Fractional fanouts accumulate over the *other* side's stream after a
    swap, and an early ±1 floor shift is multiplied by downstream
    fanouts, so totals may drift by a fraction of a percent; anything
    beyond that would be a real defect.
    """
    workload, _tree, qep = _workload(seed, 4)
    params = SimulationParameters()
    join_name = list(qep.joins)[0]
    swapped = swap_join_sides(qep, join_name, tuple_size=40)

    def run(plan):
        delays = {name: UniformDelay(20e-6)
                  for name in workload.relation_names}
        return QueryEngine(workload.catalog, plan, make_policy("SEQ"),
                           delays, params=params, seed=seed).run()

    original = run(qep).result_tuples
    assert run(swapped).result_tuples == pytest.approx(original, rel=2e-3,
                                                       abs=3)


@settings(deadline=None, max_examples=8)
@given(st.integers(min_value=0, max_value=10_000))
def test_memory_peak_never_exceeds_budget(seed):
    workload, _tree, qep = _workload(seed, 4)
    params = SimulationParameters()
    # A budget a bit above the largest single table (so the query is
    # feasible) but likely below the unconstrained peak.
    largest = max(int(j.estimated_build_cardinality * 40) + 8192
                  for j in qep.joins.values())
    floor = _memory_floor(qep)
    budget = max(largest * 2, floor + 64 * 1024)
    tight = params.with_overrides(query_memory_bytes=budget)
    delays = {name: UniformDelay(20e-6) for name in workload.relation_names}
    result = QueryEngine(workload.catalog, qep, make_policy("SEQ"), delays,
                         params=tight, seed=seed).run()
    assert result.memory_peak_bytes <= budget


def _memory_floor(qep) -> int:
    """Co-resident tables the root chain needs, the plan's hard floor."""
    return sum(int(j.estimated_build_cardinality * 40) + 8192
               for j in qep.root.probe_joins())
