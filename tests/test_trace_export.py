"""Tests for the Chrome-tracing exporter and the new CLI commands."""

import json

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.cli import main
from repro.experiments import (
    chrome_trace_events,
    slowdown_waits,
    write_chrome_trace,
)


def run_dse(workload, trace=False):
    params = SimulationParameters()
    waits = slowdown_waits(workload, "F", 0.5, params)
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                       delays, params=params, seed=1, trace=trace).run()


def test_events_cover_all_finished_fragments(mini_fig5):
    result = run_dse(mini_fig5)
    events = chrome_trace_events(result)
    spans = [e for e in events if e["ph"] == "X"]
    finished = [s for s in result.fragment_stats.values()
                if s.finished_at is not None]
    assert len(spans) == len(finished)
    for span in spans:
        assert span["dur"] >= 1.0
        assert span["args"]["tuples_in"] >= 0


def test_one_lane_per_chain(mini_fig5):
    result = run_dse(mini_fig5)
    events = chrome_trace_events(result)
    metadata = [e for e in events if e["ph"] == "M"]
    lanes = {e["args"]["name"] for e in metadata}
    assert lanes == {c.name for c in mini_fig5.qep.chains}


def test_decisions_included_when_traced(mini_fig5):
    result = run_dse(mini_fig5, trace=True)
    events = chrome_trace_events(result)
    instants = [e for e in events if e["ph"] == "i"]
    assert any(e["name"].startswith("degrade") for e in instants)
    assert any(e["name"].startswith("chain-complete") for e in instants)


def test_no_decisions_without_tracer(mini_fig5):
    result = run_dse(mini_fig5, trace=False)
    events = chrome_trace_events(result)
    assert not [e for e in events if e["ph"] == "i"]


def test_write_chrome_trace_valid_json(mini_fig5, tmp_path):
    result = run_dse(mini_fig5, trace=True)
    path = write_chrome_trace(tmp_path / "nested" / "trace.json", result)
    payload = json.loads(path.read_text())
    assert payload["otherData"]["strategy"] == "DSE"
    assert payload["traceEvents"]


def test_cli_run_timeline_and_chrome_trace(tmp_path, capsys):
    target = tmp_path / "t.json"
    assert main(["run", "--scale", "0.02", "--strategy", "DSE",
                 "--timeline", "--chrome-trace", str(target)]) == 0
    out = capsys.readouterr().out
    assert "fragment" in out  # timeline header
    assert target.exists()
    json.loads(target.read_text())


def test_cli_anatomy(capsys):
    assert main(["anatomy", "--scale", "0.02", "--strategies", "SEQ", "DSE",
                 "--slow", "F:5"]) == 0
    out = capsys.readouterr().out
    assert "anatomy" in out
    assert "engine stalls" in out


def test_cli_anatomy_unknown_relation():
    with pytest.raises(SystemExit):
        main(["anatomy", "--scale", "0.02", "--slow", "Z:5"])
