"""Cross-validation: measured executions vs the closed-form models.

If the simulator's accounting matches the arithmetic the paper reasons
with, the analytic SEQ prediction should land within a narrow band of
the measured value across network speeds — this is the repository's
calibration suite.
"""

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.experiments import figure5_workload, slowdown_waits
from repro.experiments.model import (
    predicted_best_response,
    predicted_ma_response,
    predicted_seq_response,
)


@pytest.fixture(scope="module")
def workload():
    return figure5_workload(scale=0.25)


def measure(workload, strategy, waits, seed=1):
    params = SimulationParameters()
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delays, params=params, seed=seed).run()


@pytest.mark.parametrize("w_us", [10, 20, 50, 100])
def test_seq_matches_prediction_across_speeds(workload, w_us):
    params = SimulationParameters()
    waits = {n: w_us * 1e-6 for n in workload.relation_names}
    predicted = predicted_seq_response(workload.qep, waits, params)
    measured = measure(workload, "SEQ", waits).response_time
    assert measured == pytest.approx(predicted, rel=0.12)


def test_seq_matches_prediction_with_slow_relation(workload):
    params = SimulationParameters()
    waits = slowdown_waits(workload, "F", 2.0, params)
    predicted = predicted_seq_response(workload.qep, waits, params)
    measured = measure(workload, "SEQ", waits).response_time
    assert measured == pytest.approx(predicted, rel=0.12)


def test_best_response_is_a_floor_for_everyone(workload):
    params = SimulationParameters()
    waits = {n: params.w_min for n in workload.relation_names}
    floor = predicted_best_response(workload.qep, waits, params)
    for strategy in ["SEQ", "MA", "DSE", "DSE-ND"]:
        measured = measure(workload, strategy, waits).response_time
        assert measured >= floor * 0.98, strategy


def test_dse_approaches_the_floor_on_slow_networks(workload):
    params = SimulationParameters()
    w = 100e-6
    waits = {n: w for n in workload.relation_names}
    floor = predicted_best_response(workload.qep, waits, params)
    point_params = params.with_overrides(w_min=w)
    delays = {n: UniformDelay(w) for n in workload.relation_names}
    dse = QueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                      delays, params=point_params, seed=1).run()
    assert dse.response_time <= floor * 1.15


def test_ma_matches_prediction_order_of_magnitude(workload):
    """MA's model ignores phase overlap details: band is wider but the
    prediction must still rank it correctly vs SEQ."""
    params = SimulationParameters()
    waits = {n: params.w_min for n in workload.relation_names}
    predicted = predicted_ma_response(workload.qep, waits, params)
    measured = measure(workload, "MA", waits).response_time
    assert measured == pytest.approx(predicted, rel=0.35)
    # The model reproduces the paper's ranking at small delays: MA > SEQ.
    assert predicted > predicted_seq_response(workload.qep, waits, params) * 0.9
