"""Tests for in-memory temp relations (Section 2.2's 'in memory or on
disk depending on the available resources')."""

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.common.errors import SimulationError
from repro.core.runtime import World
from repro.experiments import slowdown_waits


def make_world(**overrides):
    params = SimulationParameters().with_overrides(**overrides)
    return World(params, seed=0)


def make_memory_temp(world, name="t", estimated=1000):
    return world.buffer.create_temp(name, memory=world.memory,
                                    estimated_tuples=estimated,
                                    prefer_memory=True)


# --------------------------------------------------------------------------
# Writer / reader mechanics
# --------------------------------------------------------------------------

def test_memory_temp_charges_no_disk():
    world = make_world()
    writer = make_memory_temp(world)
    assert writer.temp.in_memory

    def producer():
        writer.write(5000)
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    assert world.disk.ios.value == 0
    assert world.sim.now == 0.0  # nothing ever waited


def test_memory_temp_reserves_pages():
    world = make_world()
    writer = make_memory_temp(world)
    writer.write(5000)
    params = world.params
    expected_pages = -(-5000 // params.tuples_per_page)
    assert world.memory.held_by(writer.temp.memory_owner) == \
        expected_pages * params.page_size


def test_memory_temp_reader_is_instant():
    world = make_world()
    writer = make_memory_temp(world)

    def producer():
        writer.write(3000)
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    reader = world.buffer.reader(writer.temp)
    assert reader.has_data()
    assert reader.read_now(10_000) == 3000
    assert reader.exhausted
    assert world.disk.ios.value == 0


def test_destroy_releases_memory():
    world = make_world()
    writer = make_memory_temp(world)

    def producer():
        writer.write(3000)
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    assert world.memory.used_bytes > 0
    world.buffer.destroy_temp(writer.temp)
    assert world.memory.used_bytes == 0
    assert world.buffer.destroy_temp(writer.temp) is None  # idempotent


def test_reading_destroyed_temp_rejected():
    world = make_world()
    writer = make_memory_temp(world)

    def producer():
        writer.write(100)
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    reader = world.buffer.reader(writer.temp)
    world.buffer.destroy_temp(writer.temp)
    with pytest.raises(SimulationError):
        reader.read_now(10)


def test_prefers_disk_when_estimate_does_not_fit():
    world = make_world(query_memory_bytes=100 * 1024)
    writer = world.buffer.create_temp("big", memory=world.memory,
                                      estimated_tuples=1_000_000,
                                      prefer_memory=True)
    assert not writer.temp.in_memory


def test_fallback_to_disk_when_budget_runs_out():
    world = make_world(query_memory_bytes=128 * 1024)  # 16 pages
    writer = world.buffer.create_temp("t", memory=world.memory,
                                      estimated_tuples=100,
                                      prefer_memory=True)
    assert writer.temp.in_memory
    per_page = world.params.tuples_per_page

    def producer():
        writer.write(40 * per_page)  # 40 pages: cannot fit in 16
        yield from writer.finish()

    world.sim.process(producer())
    world.sim.run()
    assert not writer.temp.in_memory
    assert world.memory.used_bytes == 0            # reservation released
    assert world.disk.pages_transferred.value >= 40  # deferred I/O paid
    assert writer.temp.tuples == 40 * per_page

    # The converted temp reads back from disk like any other.
    reader = world.buffer.reader(writer.temp)
    read = []

    def consumer():
        while not reader.exhausted:
            got = reader.read_now(100_000)
            if got:
                read.append(got)
            else:
                yield reader.wait_event()

    world.sim.process(consumer())
    world.sim.run()
    assert sum(read) == 40 * per_page


# --------------------------------------------------------------------------
# Engine-level behaviour
# --------------------------------------------------------------------------

def _run(workload, strategy, memory_temps, waits, seed=1):
    params = SimulationParameters().with_overrides(
        allow_memory_temps=memory_temps)
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delays, params=params, seed=seed).run()


def test_dse_memory_temps_avoid_disk(mini_fig5):
    params = SimulationParameters()
    waits = slowdown_waits(mini_fig5, "F", 1.0, params)
    on = _run(mini_fig5, "DSE", True, waits)
    off = _run(mini_fig5, "DSE", False, waits)
    assert on.result_tuples == off.result_tuples
    assert on.disk_busy_time < off.disk_busy_time
    assert on.response_time <= off.response_time * 1.02


def test_ma_stays_on_disk(mini_fig5):
    """MA materializes on disk regardless of the configuration ([1])."""
    params = SimulationParameters()
    waits = {n: params.w_min for n in mini_fig5.relation_names}
    result = _run(mini_fig5, "MA", True, waits)
    assert result.disk_busy_time > 0
    total = sum(r.cardinality for r in mini_fig5.catalog)
    assert result.tuples_spilled == total
