"""Tests for dynamic batch sizing (the paper's footnote 1)."""

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.experiments import slowdown_waits


def run(workload, strategy="DSE", seed=1, waits=None, **overrides):
    params = SimulationParameters().with_overrides(**overrides)
    if waits is None:
        waits = {n: params.w_min for n in workload.relation_names}
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delays, params=params, seed=seed).run()


def test_adaptive_same_answer(mini_fig5):
    fixed = run(mini_fig5)
    adaptive = run(mini_fig5, adaptive_batching=True)
    assert adaptive.result_tuples == fixed.result_tuples


def test_adaptive_uses_fewer_batches_on_backlogs(mini_fig5):
    """A slow consumer lets queues build: adaptive batches get bigger."""
    params = SimulationParameters()
    waits = slowdown_waits(mini_fig5, "F", 1.0, params)
    fixed = run(mini_fig5, waits=waits)
    adaptive = run(mini_fig5, waits=waits, adaptive_batching=True)
    assert adaptive.batches_processed < fixed.batches_processed
    assert adaptive.result_tuples == fixed.result_tuples


def test_adaptive_with_expensive_switches(mini_fig5):
    """With costly context switches, adaptive batching must not lose."""
    kwargs = dict(context_switch_instructions=20_000.0)
    fixed = run(mini_fig5, **kwargs)
    adaptive = run(mini_fig5, adaptive_batching=True, **kwargs)
    assert adaptive.response_time <= fixed.response_time * 1.05


def test_adaptive_floor_is_one_message(mini_fig5):
    """Trickling sources still get served one message at a time."""
    result = run(mini_fig5, adaptive_batching=True,
                 waits={n: 100e-6 for n in mini_fig5.relation_names})
    # With sparse arrivals the backlog stays small: batch count is close
    # to the message count (ratio bounded by the ceiling).
    params = SimulationParameters()
    total_messages = sum(
        -(-mini_fig5.catalog.relation(n).cardinality
          // params.tuples_per_message)
        for n in mini_fig5.relation_names)
    assert result.batches_processed >= total_messages / (
        params.adaptive_batch_max_messages + 1)


def test_adaptive_works_for_all_strategies(mini_fig5):
    for strategy in ["SEQ", "MA", "DSE"]:
        result = run(mini_fig5, strategy=strategy, adaptive_batching=True)
        assert result.result_tuples == 5000, strategy


def test_adaptive_ceiling_validation():
    from repro.common.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        SimulationParameters(adaptive_batch_max_messages=0)
