"""Tight-budget degradation paths on both execution backends.

A budget below the workload's peak residency drives the full
memory-pressure machinery — ``HashTable`` insert overflow, the DQO's
memory split (MF + CONT), complement replay — and the query must still
produce the correct join result.  The same path must hold on the
virtual-time simulator and on the wall-clock asyncio backend, which
share the execution kernel and, since this PR, the same
broker-and-lease memory plumbing.
"""

import asyncio

import numpy as np
import pytest

from repro import SimulationParameters, UniformDelay, make_policy
from repro.core.engine import QueryEngine
from repro.exec.live import LiveQueryEngine, jittered_batches
from repro.experiments import figure5_workload

KB = 1024
#: below the ~88K peak residency of the 1% workload, above its floor.
TIGHT = 75 * KB
WAIT = 2e-5


@pytest.fixture
def workload():
    return figure5_workload(scale=0.01)


def _simulated(workload, strategy, budget=None, telemetry=False):
    overrides = {"telemetry_enabled": telemetry}
    if budget is not None:
        overrides["query_memory_bytes"] = budget
    params = SimulationParameters().with_overrides(**overrides)
    return QueryEngine(
        workload.catalog, workload.qep, make_policy(strategy),
        {rel: UniformDelay(WAIT) for rel in workload.relation_names},
        params=params, seed=5).run()


def _live(workload, strategy, budget):
    params = SimulationParameters()

    def source_factory(rel):
        cardinality = workload.catalog.relation(rel).cardinality

        def make():
            rng = np.random.default_rng([5, len(rel)])
            return jittered_batches(cardinality, params.tuples_per_message,
                                    WAIT, rng)
        return make

    engine = LiveQueryEngine(
        workload.catalog, workload.qep, make_policy(strategy),
        {rel: source_factory(rel) for rel in workload.relation_names},
        params=params, seed=5, memory_bytes=budget)
    return asyncio.run(engine.run())


@pytest.mark.parametrize("strategy", ["SEQ", "DSE"])
def test_simulator_backend_splits_and_recovers(workload, strategy):
    roomy = _simulated(workload, strategy)
    tight = _simulated(workload, strategy, budget=TIGHT)
    assert roomy.memory_splits == 0
    assert tight.memory_splits >= 1
    # Degradation changes the schedule, never the answer.
    assert tight.result_tuples == roomy.result_tuples == 500
    assert tight.memory_peak_bytes <= TIGHT


def test_dse_degrades_under_pressure(workload):
    tight = _simulated(workload, "DSE", budget=TIGHT)
    assert tight.degradations >= 1
    assert tight.memory_splits >= 1
    assert tight.result_tuples == 500


@pytest.mark.parametrize("strategy", ["SEQ", "DSE"])
def test_asyncio_backend_splits_and_recovers(workload, strategy):
    live = _live(workload, strategy, budget=TIGHT)
    assert live.memory_splits >= 1
    assert live.result_tuples == 500
    assert live.memory_peak_bytes <= TIGHT


def test_memory_gauges_published(workload):
    """Per-query memory gauges ride the metrics registry (satellite)."""
    result = _simulated(workload, "DSE", budget=TIGHT, telemetry=True)
    assert result.metrics is not None
    snapshot = result.metrics.as_dict()
    assert snapshot["memory.used_bytes"]["value"] == 0  # all released
    assert snapshot["memory.peak_bytes"]["value"] == result.memory_peak_bytes
    assert snapshot["memory.available_bytes"]["value"] == TIGHT
