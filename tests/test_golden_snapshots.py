"""Golden-snapshot regression harness (exact reproduction).

Re-runs the three pinned workloads captured by
``scripts/capture_golden.py`` and asserts the resulting digests are
*bit-identical* to ``tests/golden/*.json``.  Any change to virtual-time
event ordering — kernel refactors, scheduler tweaks, RNG stream moves —
shows up here immediately.

If a behaviour change is intended, regenerate the snapshots with::

    PYTHONPATH=src python scripts/capture_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"

sys.path.insert(0, str(REPO_ROOT / "scripts"))

import capture_golden  # noqa: E402  (needs the path tweak above)


@pytest.mark.parametrize("workload", sorted(capture_golden.workload_configs()))
def test_digest_matches_golden_exactly(workload):
    config = capture_golden.workload_configs()[workload]
    path = GOLDEN_DIR / f"{workload}.json"
    assert path.exists(), (
        f"missing golden snapshot {path}; run scripts/capture_golden.py")
    digest = capture_golden.run_digest(workload, config)
    rendered = json.dumps(digest, indent=2, sort_keys=True) + "\n"
    assert rendered == path.read_text(), (
        f"{workload}: execution digest drifted from the golden snapshot — "
        "virtual-time behaviour changed. If intended, regenerate with "
        "scripts/capture_golden.py and explain the change in the PR.")


def test_goldens_cover_all_strategies():
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        data = json.loads(path.read_text())
        assert set(data["strategies"]) == set(capture_golden.STRATEGIES)
        for strategy, digest in data["strategies"].items():
            assert digest["result_tuples"] > 0, (
                f"{path.name}:{strategy} produced no tuples")
            # Stall attribution must account for every stalled second.
            total = sum(digest["stall_breakdown"].values())
            assert total == pytest.approx(digest["stall_time"], abs=1e-9)
