"""Tests for bounded timeout aborts and time-to-first-tuple tracking."""

import pytest

from repro import (
    QueryEngine,
    QueryTimeoutError,
    SimulationParameters,
    SymmetricHashJoinEngine,
    UniformDelay,
    make_policy,
)
from repro.wrappers import ConstantDelay, InitialDelay


# --------------------------------------------------------------------------
# Bounded timeouts
# --------------------------------------------------------------------------

def dead_source_delays(workload, params, dead="A"):
    """Every source normal except one that is silent for a very long time."""
    delays = {n: UniformDelay(params.w_min) for n in workload.relation_names}
    delays[dead] = InitialDelay(1e6, UniformDelay(params.w_min))
    return delays


def test_dead_source_aborts_after_limit(tiny_fig5):
    params = SimulationParameters().with_overrides(
        timeout=0.5, max_consecutive_timeouts=3)
    engine = QueryEngine(tiny_fig5.catalog, tiny_fig5.qep, make_policy("SEQ"),
                         dead_source_delays(tiny_fig5, params),
                         params=params, seed=1)
    with pytest.raises(QueryTimeoutError) as excinfo:
        engine.run()
    assert excinfo.value.timeouts == 3


def test_unlimited_timeouts_waits_through(tiny_fig5):
    """Default (0 = unlimited): a *long* initial delay eventually passes."""
    params = SimulationParameters().with_overrides(timeout=0.5)
    delays = {n: UniformDelay(params.w_min)
              for n in tiny_fig5.relation_names}
    delays["A"] = InitialDelay(5.0, UniformDelay(params.w_min))
    engine = QueryEngine(tiny_fig5.catalog, tiny_fig5.qep, make_policy("SEQ"),
                         delays, params=params, seed=1)
    result = engine.run()
    assert result.result_tuples == 1000
    assert result.timeouts >= 5  # it kept waiting through them


def test_progress_resets_the_timeout_counter(tiny_fig5):
    """Timeouts interleaved with real progress never hit the limit."""
    params = SimulationParameters().with_overrides(
        timeout=0.4, max_consecutive_timeouts=3)
    delays = {n: UniformDelay(params.w_min)
              for n in tiny_fig5.relation_names}
    # Each source has a ~1-timeout initial delay; progress in between
    # resets the counter, so the query completes.
    for name in tiny_fig5.relation_names:
        delays[name] = InitialDelay(0.5, UniformDelay(params.w_min))
    engine = QueryEngine(tiny_fig5.catalog, tiny_fig5.qep, make_policy("SEQ"),
                         delays, params=params, seed=1)
    result = engine.run()
    assert result.result_tuples == 1000


def test_timeout_limit_validation():
    from repro.common.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        SimulationParameters(max_consecutive_timeouts=-1)


# --------------------------------------------------------------------------
# Time to first tuple
# --------------------------------------------------------------------------

def run_strategy(workload, strategy, seed=1):
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in workload.relation_names}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delays, params=params, seed=seed).run()


def test_ttft_recorded_and_bounded(tiny_fig5):
    result = run_strategy(tiny_fig5, "SEQ")
    assert result.time_to_first_tuple is not None
    assert 0 < result.time_to_first_tuple <= result.response_time


def test_blocking_plan_first_tuple_is_late(tiny_fig5):
    """The root probe cannot start before every upstream build completed."""
    result = run_strategy(tiny_fig5, "SEQ")
    assert result.time_to_first_tuple > 0.5 * result.response_time


def test_dphj_first_tuple_is_early(tiny_fig5):
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in tiny_fig5.relation_names}
    dphj = SymmetricHashJoinEngine(tiny_fig5.catalog, tiny_fig5.tree, delays,
                                   params=params, seed=1).run()
    seq = run_strategy(tiny_fig5, "SEQ")
    assert dphj.time_to_first_tuple < seq.time_to_first_tuple


def test_ttft_none_for_empty_result(small_catalog):
    """A query whose join produces nothing has no first tuple."""
    from repro.catalog import Catalog, JoinStatistics, Relation
    from repro.plan import build_qep
    from repro.query import JoinTree

    stats = JoinStatistics({("R", "S"): 1e-9})  # effectively empty join
    catalog = Catalog([Relation("R", 100), Relation("S", 100)], stats)
    qep = build_qep(catalog, JoinTree.join(JoinTree.leaf("R"),
                                           JoinTree.leaf("S")))
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in ("R", "S")}
    result = QueryEngine(catalog, qep, make_policy("SEQ"), delays,
                         params=params, seed=1).run()
    assert result.result_tuples == 0
    assert result.time_to_first_tuple is None
