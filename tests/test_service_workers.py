"""The sharded execution plane (`repro serve --workers N`).

Pins the worker-pool backend at three layers: the pure
:class:`~repro.service.workers.PoolScheduler` dispatch/steal policy and
the :meth:`~repro.resources.broker.MemoryBroker.carve_even` pool split
(plain unit tests — the policies are deterministic by construction),
one real two-worker service session (completion, per-worker accounting,
fleet snapshot/metrics/top rendering, cross-backend determinism), and
the failure semantics: a SIGKILLed worker fails its in-flight
submissions with ``worker-died``, is respawned, and the service keeps
serving with consistent counters.
"""

import asyncio
import os
import signal

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.observability.top import (
    render_service_top,
    stream_snapshots_reconnect,
    worker_transitions,
)
from repro.resources import MemoryBroker, TenantSpec
from repro.service import (
    PoolScheduler,
    QueryService,
    SubmissionRequest,
    service_prometheus_text,
)
from repro.service.workers import WorkerPoolBackend

#: small-and-fast submission shape used by the live pool tests; the
#: memory budget is far under the per-worker carve so workers overlap.
FAST = dict(scale=0.0005, wait_us=20.0, memory_bytes=256 << 10)


# --------------------------------------------------------------------------
# PoolScheduler: the pure dispatch/steal policy
# --------------------------------------------------------------------------

def test_assign_picks_least_backlog_ties_lowest_id():
    scheduler = PoolScheduler([0, 1, 2])
    assert scheduler.assign("a") == 0      # all empty: lowest id
    assert scheduler.assign("b") == 1
    assert scheduler.assign("c") == 2
    assert scheduler.assign("d") == 0      # tied again: lowest id
    scheduler.active[1] += 3               # worker 1 is busy running
    assert scheduler.assign("e") == 2      # backlog counts active too


def test_next_for_prefers_own_queue_and_respects_window():
    scheduler = PoolScheduler([0, 1], window=2)
    for job in ("a", "b", "c", "d"):
        scheduler.assign(job)
    assert scheduler.next_for(0) == ("a", False)
    assert scheduler.next_for(0) == ("c", False)
    assert scheduler.next_for(0) is None   # window full (2 active)
    scheduler.finished(0)
    assert scheduler.next_for(0) == ("b", True)  # own empty: steals


def test_steal_takes_from_the_longest_queue_ties_lowest_id():
    scheduler = PoolScheduler([0, 1, 2])
    # Build uneven queues directly: worker 1 holds 2 jobs, worker 2
    # holds 1; worker 0 is idle and empty.
    for job, victim in (("a", 1), ("b", 1), ("c", 2)):
        scheduler.queues[victim].append(job)
        scheduler.assigned[job] = victim
    assert scheduler.next_for(0) == ("a", True)   # longest queue first
    assert scheduler.next_for(0) == ("b", True)   # 1 and 2 tied: lowest
    assert scheduler.next_for(0) == ("c", True)
    assert scheduler.steals == {0: 3, 1: 0, 2: 0}
    assert scheduler.steals_total == 3


def test_finished_and_forget_bookkeeping():
    scheduler = PoolScheduler([0])
    scheduler.assign("a")
    scheduler.assign("b")
    assert scheduler.queued_total() == 2
    assert scheduler.forget("b") is True          # still queued: dropped
    assert scheduler.queued_total() == 1
    assert scheduler.next_for(0) == ("a", False)
    assert scheduler.forget("a") is False         # already dispatched
    scheduler.finished(0)
    with pytest.raises(SimulationError):
        scheduler.finished(0)                     # nothing active


def test_scheduler_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        PoolScheduler([])
    with pytest.raises(ConfigurationError):
        PoolScheduler([0], window=0)


# --------------------------------------------------------------------------
# carve_even: the pool split behind the fleet
# --------------------------------------------------------------------------

def test_carve_even_splits_spare_and_keeps_remainder():
    broker = MemoryBroker(10)
    leases = broker.carve_even(3)
    assert [lease.total_bytes for lease in leases] == [3, 3, 3]
    assert broker.spare_bytes() == 1              # remainder stays
    for lease in leases:
        broker.release(lease)
    assert broker.spare_bytes() == 10


def test_carve_even_unbounded_pool_carves_nothing():
    assert MemoryBroker(None).carve_even(4) == []


def test_carve_even_refuses_an_impossible_split():
    with pytest.raises(SimulationError):
        MemoryBroker(2).carve_even(3)             # share would be 0
    with pytest.raises(SimulationError):
        MemoryBroker(8).carve_even(0)


# --------------------------------------------------------------------------
# One real two-worker session
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def pool_session():
    """Start, exercise and stop one governed two-worker service."""
    out = {}

    async def scenario():
        service = QueryService(
            seed=11, global_memory_bytes=8 << 20,
            tenants=[TenantSpec("gold", priority=2.0)],
            publish_interval_s=0.05, workers=2)
        await service.start()
        out["describe_at_start"] = service.backend.describe()

        records = [service.submit(SubmissionRequest(
            tenant="gold", seed=index, **FAST)) for index in range(6)]
        await asyncio.gather(*(record.done.wait() for record in records))
        out["mid_snapshot"] = service.snapshot()
        out["records"] = records

        # A submission whose minimum exceeds one worker's carve can
        # never run anywhere: refused up front, with the pool-specific
        # message (the global pool would have fit it).
        try:
            service.submit(SubmissionRequest(
                tenant="gold", memory_bytes=6 << 20))
        except ConfigurationError as exc:
            out["refusal"] = str(exc)

        await service.stop()
        out["final_describe"] = service.backend.describe()
        out["steals"] = service.backend.steals_total
        out["service"] = service

    asyncio.run(scenario())
    return out


def test_pool_submissions_complete_with_worker_attribution(pool_session):
    for record in pool_session["records"]:
        assert record.state == "done", record.error
        assert record.worker_id in (0, 1)
        assert record.to_dict(0.0)["worker"] == record.worker_id
        assert record.outcome["result_tuples"] > 0
    # Both carves are equal halves of the 8 MiB machine pool.
    workers = {row["id"]: row for row in pool_session["final_describe"]}
    assert workers[0]["pool_bytes"] == workers[1]["pool_bytes"] == 4 << 20


def test_pool_snapshot_carries_the_fleet(pool_session):
    snapshot = pool_session["mid_snapshot"]
    assert snapshot["backend"] == "worker-pool"
    rows = {row["id"]: row for row in snapshot["workers"]}
    assert sorted(rows) == [0, 1]
    assert all(row["state"] == "up" for row in rows.values())
    assert sum(row["completed"] for row in rows.values()) == 6
    assert snapshot["steals"] == sum(row["steals"]
                                     for row in rows.values())
    import json
    json.dumps(snapshot)  # JSON-safe end to end


def test_pool_worker_counters_survive_stop(pool_session):
    rows = {row["id"]: row for row in pool_session["final_describe"]}
    assert all(row["state"] == "down" for row in rows.values())
    assert sum(row["completed"] for row in rows.values()) == 6
    assert pool_session["steals"] == sum(row["steals"]
                                         for row in rows.values())


def test_oversized_submission_names_the_carve(pool_session):
    assert "per-worker memory carve-out" in pool_session["refusal"]
    assert pool_session["service"].rejected == 1


def test_prometheus_text_exposes_per_worker_series(pool_session):
    text = service_prometheus_text(pool_session["mid_snapshot"])
    for metric in ("repro_service_worker_up", "repro_service_worker_active",
                   "repro_service_worker_queued",
                   "repro_service_worker_completed_total",
                   "repro_service_worker_steals_total",
                   "repro_service_worker_restarts_total"):
        assert f'{metric}{{worker="0"}}' in text
        assert f'{metric}{{worker="1"}}' in text
    assert 'repro_service_worker_up{worker="0"} 1.0' in text


def test_render_service_top_shows_the_worker_section(pool_session):
    lines = render_service_top(pool_session["mid_snapshot"], width=100)
    header = next(line for line in lines if line.startswith("WORKER"))
    assert "fleet 2/2 up" in header
    worker_rows = [line for line in lines
                   if line.startswith(("0 ", "1 "))]
    assert len(worker_rows) == 2


def test_pool_results_match_the_in_process_backend(pool_session):
    """Stealing must not change results: source streams are seeded per
    submission, not per worker, so the same request sequence yields the
    same tuple counts on either backend."""
    out = {}

    async def scenario():
        service = QueryService(
            seed=11, global_memory_bytes=8 << 20,
            tenants=[TenantSpec("gold", priority=2.0)],
            publish_interval_s=0.05)  # workers=1: InProcessBackend
        await service.start()
        records = [service.submit(SubmissionRequest(
            tenant="gold", seed=index, **FAST)) for index in range(6)]
        await asyncio.gather(*(record.done.wait() for record in records))
        await service.stop()
        out["records"] = records

    asyncio.run(scenario())
    pooled = [r.outcome["result_tuples"] for r in pool_session["records"]]
    solo = [r.outcome["result_tuples"] for r in out["records"]]
    assert pooled == solo


# --------------------------------------------------------------------------
# Failure semantics: death, respawn, consistent counters
# --------------------------------------------------------------------------

def test_worker_crash_fails_inflight_then_respawns():
    async def scenario():
        service = QueryService(
            seed=3, global_memory_bytes=8 << 20,
            tenants=[TenantSpec("gold", priority=2.0)],
            publish_interval_s=0.05, workers=2)
        await service.start()
        backend = service.backend
        assert isinstance(backend, WorkerPoolBackend)

        # Long-running submissions (heavy per-batch waits) so the kill
        # lands mid-query; one per worker by least-loaded assignment.
        records = [service.submit(SubmissionRequest(
            tenant="gold", seed=index, scale=0.002, wait_us=5000.0,
            memory_bytes=256 << 10)) for index in range(2)]

        victim = None
        for _ in range(400):
            for wid in sorted(backend._slots):
                slot = backend._slots[wid]
                if slot.inflight and slot.pid:
                    victim = wid
                    break
            if victim is not None:
                break
            await asyncio.sleep(0.025)
        assert victim is not None, "no submission ever reached a worker"
        doomed_ids = set(backend._slots[victim].inflight)
        os.kill(backend._slots[victim].pid, signal.SIGKILL)

        # Every submission resolves: the victim's in flight fail with
        # the worker-died verdict, the peer's complete normally.  No
        # hang — bound the wait so a regression fails instead of
        # stalling the suite.
        await asyncio.wait_for(
            asyncio.gather(*(record.done.wait() for record in records)),
            timeout=120.0)
        doomed = [record for record in records if record.id in doomed_ids]
        assert doomed, "the killed worker had nothing in flight"
        for record in doomed:
            assert record.state == "failed"
            assert "worker-died" in record.error
        for record in records:
            if record.id not in doomed_ids:
                assert record.state == "done", record.error

        # The slot is respawned with a bumped restart counter...
        for _ in range(400):
            if backend._slots[victim].up:
                break
            await asyncio.sleep(0.025)
        assert backend._slots[victim].up
        assert backend._slots[victim].restarts == 1

        # ...and the service keeps serving on the refreshed fleet.
        again = service.submit(SubmissionRequest(
            tenant="gold", seed=99, **FAST))
        await asyncio.wait_for(again.done.wait(), timeout=120.0)
        assert again.state == "done", again.error

        snapshot = service.snapshot()
        assert snapshot["failed"] == len(doomed)
        assert snapshot["completed"] == len(records) - len(doomed) + 1
        rows = {row["id"]: row for row in snapshot["workers"]}
        assert rows[victim]["restarts"] == 1
        assert sum(row["failed"] for row in rows.values()) == len(doomed)
        text = service_prometheus_text(snapshot)
        assert (f'repro_service_worker_restarts_total'
                f'{{worker="{victim}"}} 1.0') in text
        await service.stop()

    asyncio.run(scenario())


# --------------------------------------------------------------------------
# worker_transitions: the `repro watch` fleet notices
# --------------------------------------------------------------------------

def _fleet(*rows):
    return {"workers": [
        {"id": wid, "state": state, "restarts": restarts}
        for wid, state, restarts in rows]}


def test_worker_transitions_reports_flips_and_respawns():
    before = _fleet((0, "up", 0), (1, "up", 0))
    assert worker_transitions(before, _fleet((0, "up", 0),
                                             (1, "up", 0))) == []
    assert worker_transitions(before, _fleet((0, "down", 0),
                                             (1, "up", 0))) \
        == ["worker 0 down"]
    # A death + respawn between two publishes never flips the state;
    # the restart counter still surfaces it.
    assert worker_transitions(before, _fleet((0, "up", 1),
                                             (1, "up", 0))) \
        == ["worker 0 died and was respawned (restarts 1, now up)"]


def test_worker_transitions_without_history_or_fleet():
    assert worker_transitions(None, _fleet((0, "up", 0))) == []
    assert worker_transitions({"workers": []}, {"kind": "service"}) == []


# --------------------------------------------------------------------------
# fail_fast reconnect: a dead endpoint is one crisp error
# --------------------------------------------------------------------------

def _dying_stream(frames_by_call):
    calls = {"count": 0}

    def stream(endpoint, timeout, status):
        frames = frames_by_call[min(calls["count"],
                                    len(frames_by_call) - 1)]
        calls["count"] += 1
        for frame in frames:
            status.frames += 1
            yield frame
        raise ConfigurationError("connection refused")

    stream.calls = calls
    return stream


def test_fail_fast_raises_on_a_never_connected_stream():
    stream = _dying_stream([[]])
    with pytest.raises(ConfigurationError, match="connection refused"):
        list(stream_snapshots_reconnect(
            "127.0.0.1:1", fail_fast=True, sleep=lambda _s: None,
            _stream=stream))
    assert stream.calls["count"] == 1     # no silent retry loop


def test_fail_fast_still_reconnects_once_a_frame_arrived():
    stream = _dying_stream([[{"now": 1.0}], []])
    with pytest.raises(ConfigurationError):
        list(stream_snapshots_reconnect(
            "127.0.0.1:1", fail_fast=True, max_failures=2,
            sleep=lambda _s: None, _stream=stream))
    # First connection produced a frame (resetting the failure streak),
    # so the drops afterwards get the full reconnect budget: the good
    # connection plus two retries before giving up.
    assert stream.calls["count"] == 3
