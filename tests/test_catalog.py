"""Tests for the catalog: schema, statistics, estimation."""

import pytest

from repro.catalog import (
    Attribute,
    Catalog,
    JoinStatistics,
    Relation,
    estimate_join_cardinality,
)
from repro.common.errors import CatalogError


# --------------------------------------------------------------------------
# Schema
# --------------------------------------------------------------------------

def test_relation_size_bytes():
    rel = Relation("R", 1000, tuple_size=40)
    assert rel.size_bytes == 40_000


def test_relation_validation():
    with pytest.raises(CatalogError):
        Relation("", 10)
    with pytest.raises(CatalogError):
        Relation("R", -1)
    with pytest.raises(CatalogError):
        Relation("R", 10, tuple_size=0)


def test_attribute_lookup():
    rel = Relation("R", 10, attributes=(Attribute("k"), Attribute("v")))
    assert rel.attribute("k").name == "k"
    with pytest.raises(CatalogError):
        rel.attribute("missing")


def test_attribute_validation():
    with pytest.raises(CatalogError):
        Attribute("")
    with pytest.raises(CatalogError):
        Attribute("a", size=0)


# --------------------------------------------------------------------------
# JoinStatistics
# --------------------------------------------------------------------------

def test_selectivity_symmetric():
    stats = JoinStatistics()
    stats.set_selectivity("R", "S", 0.01)
    assert stats.selectivity("S", "R") == 0.01
    assert stats.has_edge("S", "R")


def test_selectivity_range_validation():
    stats = JoinStatistics()
    with pytest.raises(CatalogError):
        stats.set_selectivity("R", "S", 0.0)
    with pytest.raises(CatalogError):
        stats.set_selectivity("R", "S", 1.5)


def test_self_join_rejected():
    stats = JoinStatistics()
    with pytest.raises(CatalogError):
        stats.set_selectivity("R", "R", 0.5)


def test_missing_edge_raises():
    with pytest.raises(CatalogError):
        JoinStatistics().selectivity("R", "S")


def test_neighbours():
    stats = JoinStatistics({("R", "S"): 0.1, ("S", "T"): 0.2})
    assert stats.neighbours("S") == {"R", "T"}
    assert stats.neighbours("R") == {"S"}
    assert stats.neighbours("X") == set()


def test_edges_sorted_deterministic():
    stats = JoinStatistics({("B", "A"): 0.1, ("C", "A"): 0.2})
    assert [(a, b) for a, b, _ in stats.edges()] == [("A", "B"), ("A", "C")]


# --------------------------------------------------------------------------
# Cardinality estimation
# --------------------------------------------------------------------------

def test_estimate_single_relation(small_catalog):
    assert small_catalog.estimate_cardinality(["R"]) == 1000


def test_estimate_pair(small_catalog):
    # |R ⋈ S| = 1000 * 2000 * (1/1000) = 2000
    assert small_catalog.estimate_cardinality(["R", "S"]) == pytest.approx(2000)


def test_estimate_full_join(small_catalog):
    # 1000 * 2000 * 1500 * (1/1000) * (1/2000) = 1500
    assert small_catalog.estimate_cardinality(["R", "S", "T"]) == pytest.approx(1500)


def test_estimate_applies_only_internal_edges(small_catalog):
    # R and T have no direct edge: cross-product estimate.
    assert small_catalog.estimate_cardinality(["R", "T"]) == pytest.approx(1_500_000)


def test_estimate_duplicate_rejected():
    with pytest.raises(CatalogError):
        estimate_join_cardinality({"R": 10}, JoinStatistics(), ["R", "R"])


def test_estimate_empty_rejected(small_catalog):
    with pytest.raises(CatalogError):
        small_catalog.estimate_cardinality([])


def test_estimate_unknown_relation(small_catalog):
    with pytest.raises(CatalogError):
        small_catalog.estimate_cardinality(["R", "Z"])


def test_estimate_size_bytes(small_catalog):
    expected = small_catalog.estimate_cardinality(["R", "S"]) * 40
    assert small_catalog.estimate_size_bytes(["R", "S"]) == pytest.approx(expected)


# --------------------------------------------------------------------------
# Catalog container
# --------------------------------------------------------------------------

def test_catalog_registration_and_lookup(small_catalog):
    assert small_catalog.relation("R").cardinality == 1000
    assert small_catalog.has_relation("S")
    assert not small_catalog.has_relation("Z")
    assert len(small_catalog) == 3
    assert small_catalog.relation_names() == ["R", "S", "T"]


def test_catalog_duplicate_relation(small_catalog):
    with pytest.raises(CatalogError):
        small_catalog.add_relation(Relation("R", 5))


def test_catalog_unknown_relation(small_catalog):
    with pytest.raises(CatalogError):
        small_catalog.relation("Z")


def test_catalog_result_tuple_size_validation():
    with pytest.raises(CatalogError):
        Catalog(result_tuple_size=0)
