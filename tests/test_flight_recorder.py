"""The flight recorder: ring buffer, dumps, and the stall watchdog.

The acceptance behaviour pinned at the bottom is the headline one: a
live run against a source that wedges mid-stream is aborted by the
watchdog, raises a ``SimulationError`` naming the dump path, and leaves
a loadable JSON post-mortem plus a parseable chrome-trace sibling.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.observability import (
    ENTRY_BATCH,
    ENTRY_DECISION,
    ENTRY_PHASE,
    ENTRY_STALL,
    FlightRecorder,
    StallWatchdog,
    flight_trace_events,
    load_flight_dump,
)


# --------------------------------------------------------------------------
# Ring buffer
# --------------------------------------------------------------------------

def test_recorder_keeps_the_most_recent_entries():
    recorder = FlightRecorder(capacity=4)
    for i in range(10):
        recorder.record(ENTRY_BATCH, float(i), fragment=f"f{i}", tuples=1)
    assert len(recorder) == 4
    assert recorder.recorded == 10
    entries = recorder.entries()
    assert [entry.time for entry in entries] == [6.0, 7.0, 8.0, 9.0]
    assert entries[0].payload == {"fragment": "f6", "tuples": 1}


def test_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ConfigurationError):
        FlightRecorder(capacity=0)


def test_batch_entries_mark_progress_but_others_do_not():
    recorder = FlightRecorder(capacity=8)
    before = recorder.last_progress_wall
    time.sleep(0.01)
    recorder.record(ENTRY_DECISION, 1.0, name="degrade", subject="C1")
    assert recorder.last_progress_wall == before
    recorder.record(ENTRY_BATCH, 1.0, fragment="pA", tuples=128)
    assert recorder.last_progress_wall > before


def test_recorder_is_falsy_when_empty():
    # The live engine uses identity checks (`is not None`) because an
    # armed-but-empty recorder must still count as armed.
    recorder = FlightRecorder(capacity=8)
    assert not recorder
    assert recorder is not None


# --------------------------------------------------------------------------
# Dump / load round trip
# --------------------------------------------------------------------------

def _populated_recorder() -> FlightRecorder:
    recorder = FlightRecorder(capacity=3)
    recorder.record(ENTRY_PHASE, 0.0, name="run-start")
    recorder.record(ENTRY_BATCH, 0.5, fragment="pA", tuples=128)
    recorder.record(ENTRY_STALL, 1.0, cause="source-wait:A", duration=0.25)
    recorder.record(ENTRY_DECISION, 1.5, name="degrade", subject="C2")
    recorder.latest_snapshot = {"strategy": "DSE", "now": 1.5}
    return recorder


def test_dump_and_load_roundtrip(tmp_path):
    recorder = _populated_recorder()
    path = recorder.dump(tmp_path / "flight.json", reason="stall")
    dump = load_flight_dump(path)
    assert dump["reason"] == "stall"
    assert dump["recorded"] == 4
    assert dump["dropped"] == 1  # capacity 3, four entries recorded
    assert [entry.kind for entry in dump["entries"]] == [
        ENTRY_BATCH, ENTRY_STALL, ENTRY_DECISION]
    assert dump["entries"][1].payload["cause"] == "source-wait:A"
    assert dump["snapshot"] == {"strategy": "DSE", "now": 1.5}


def test_dump_writes_a_parseable_chrome_trace_sibling(tmp_path):
    recorder = _populated_recorder()
    path = recorder.dump(tmp_path / "flight.json", reason="crash",
                         error="RuntimeError('boom')")
    trace = json.loads(path.with_suffix(".trace.json").read_text())
    events = trace["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    assert len(spans) == 1  # the stall renders as a span with a duration
    assert spans[0]["args"]["cause"] == "source-wait:A"
    assert spans[0]["dur"] == pytest.approx(0.25 * 1e6)
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["cat"] for e in instants} == {ENTRY_BATCH, ENTRY_DECISION}


def test_flight_trace_events_of_empty_buffer_is_just_lane_metadata():
    events = flight_trace_events([])
    assert events and all(event["ph"] == "M" for event in events)


def test_load_flight_dump_friendly_errors(tmp_path):
    with pytest.raises(ConfigurationError, match="not found"):
        load_flight_dump(tmp_path / "missing.json")
    truncated = tmp_path / "truncated.json"
    truncated.write_text('{"version": 1, "entries": [')
    with pytest.raises(ConfigurationError, match="unreadable"):
        load_flight_dump(truncated)
    alien = tmp_path / "alien.json"
    alien.write_text('{"some": "other file"}')
    with pytest.raises(ConfigurationError, match="not a flight-recorder"):
        load_flight_dump(alien)


# --------------------------------------------------------------------------
# Stall watchdog
# --------------------------------------------------------------------------

def test_watchdog_needs_a_trigger_and_positive_values(tmp_path):
    recorder = FlightRecorder()
    with pytest.raises(ConfigurationError):
        StallWatchdog(recorder, tmp_path / "d.json")
    with pytest.raises(ConfigurationError):
        StallWatchdog(recorder, tmp_path / "d.json", stall_after=0.0)
    with pytest.raises(ConfigurationError):
        StallWatchdog(recorder, tmp_path / "d.json", deadline=-1.0)


def test_watchdog_fires_on_stall_and_dumps(tmp_path):
    recorder = FlightRecorder()
    recorder.record(ENTRY_BATCH, 0.0, fragment="pA", tuples=1)
    fired = threading.Event()
    seen = {}

    def on_fire(reason, path):
        seen["reason"], seen["path"] = reason, path
        fired.set()

    watchdog = StallWatchdog(recorder, tmp_path / "wd.json",
                             stall_after=0.1, on_fire=on_fire,
                             poll_interval=0.02)
    watchdog.start()
    try:
        assert fired.wait(timeout=2.0)
    finally:
        watchdog.stop()
    assert watchdog.fired_reason == "stall"
    assert seen["reason"] == "stall"
    dump = load_flight_dump(seen["path"])
    assert dump["reason"] == "stall"


def test_watchdog_does_not_fire_while_progress_keeps_coming(tmp_path):
    recorder = FlightRecorder()
    watchdog = StallWatchdog(recorder, tmp_path / "wd.json",
                             stall_after=0.15, poll_interval=0.02)
    watchdog.start()
    try:
        for _ in range(6):
            time.sleep(0.05)
            recorder.record(ENTRY_BATCH, 0.0, fragment="pA", tuples=1)
    finally:
        watchdog.stop()
    assert watchdog.fired_reason is None
    assert not (tmp_path / "wd.json").exists()


def test_watchdog_deadline_fires_even_with_steady_progress(tmp_path):
    recorder = FlightRecorder()
    fired = threading.Event()
    watchdog = StallWatchdog(recorder, tmp_path / "wd.json",
                             deadline=0.1,
                             on_fire=lambda *a: fired.set(),
                             poll_interval=0.02)
    watchdog.start()
    try:
        deadline = time.monotonic() + 2.0
        while not fired.is_set() and time.monotonic() < deadline:
            recorder.record(ENTRY_BATCH, 0.0, fragment="pA", tuples=1)
            time.sleep(0.01)
    finally:
        watchdog.stop()
    assert watchdog.fired_reason == "deadline"


# --------------------------------------------------------------------------
# Acceptance: a wedged live run leaves a loadable post-mortem
# --------------------------------------------------------------------------

def test_wedged_live_run_is_aborted_and_leaves_a_postmortem(tmp_path):
    import numpy as np

    from repro.config import SimulationParameters
    from repro.core.strategies import make_policy
    from repro.exec.live import LiveQueryEngine, jittered_batches
    from repro.experiments import figure5_workload

    workload = figure5_workload(scale=0.01)
    params = SimulationParameters()
    cards = {name: workload.catalog.relation(name).cardinality
             for name in workload.relation_names}

    async def hanging(cardinality, batch):
        yield min(batch, cardinality)          # one batch, then wedge
        await asyncio.sleep(3600)

    def factory(rel):
        def make():
            if rel == "A":
                return hanging(cards[rel], params.tuples_per_message)
            rng = np.random.default_rng([3, len(rel)])
            return jittered_batches(cards[rel], params.tuples_per_message,
                                    1e-5, rng)
        return make

    dump_path = tmp_path / "flight.json"
    engine = LiveQueryEngine(
        workload.catalog, workload.qep, make_policy("DSE"),
        {rel: factory(rel) for rel in workload.relation_names},
        params=params, seed=3,
        flight_dump=dump_path, stall_after=0.3)

    with pytest.raises(SimulationError, match="watchdog \\(stall\\)") as exc:
        asyncio.run(engine.run())
    assert str(dump_path) in str(exc.value)

    dump = load_flight_dump(dump_path)
    assert dump["reason"] == "stall"
    kinds = {entry.kind for entry in dump["entries"]}
    assert ENTRY_BATCH in kinds     # progress before the wedge was kept
    assert ENTRY_PHASE in kinds     # run-start marker
    trace = json.loads(dump_path.with_suffix(".trace.json").read_text())
    assert isinstance(trace["traceEvents"], list)


def test_clean_live_run_leaves_no_dump(tmp_path):
    import numpy as np

    from repro.config import SimulationParameters
    from repro.core.strategies import make_policy
    from repro.exec.live import LiveQueryEngine, jittered_batches
    from repro.experiments import figure5_workload

    workload = figure5_workload(scale=0.01)
    params = SimulationParameters()

    def factory(rel):
        def make():
            rng = np.random.default_rng([3, len(rel)])
            return jittered_batches(
                workload.catalog.relation(rel).cardinality,
                params.tuples_per_message, 1e-5, rng)
        return make

    dump_path = tmp_path / "flight.json"
    engine = LiveQueryEngine(
        workload.catalog, workload.qep, make_policy("DSE"),
        {rel: factory(rel) for rel in workload.relation_names},
        params=params, seed=3,
        flight_dump=dump_path, stall_after=10.0, deadline=60.0)
    result = asyncio.run(engine.run())
    assert result.result_tuples > 0
    assert not dump_path.exists()
    assert engine.recorder is not None and engine.recorder.recorded > 0


def test_engine_validates_watchdog_needs_a_dump_path():
    from repro.core.strategies import make_policy
    from repro.exec.live import LiveQueryEngine
    from repro.experiments import figure5_workload

    workload = figure5_workload(scale=0.01)
    sources = {rel: (lambda: None)
               for rel in workload.relation_names}
    with pytest.raises(ConfigurationError, match="flight_dump"):
        LiveQueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                        sources, stall_after=1.0)
