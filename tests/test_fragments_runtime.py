"""Tests for runtime fragments, chain lifecycle, degradation and splits."""

import pytest

from repro.catalog import Relation
from repro.common.errors import SchedulingError
from repro.config import SimulationParameters
from repro.core.fragments import (
    BATCH_EMPTY,
    BATCH_FINISHED,
    BATCH_OK,
    BATCH_OVERFLOW,
    FragmentKind,
    FragmentStatus,
)
from repro.core.runtime import QueryRuntime, World
from repro.mediator.queues import Message


@pytest.fixture
def rt(small_qep):
    """Runtime over the small R-S-T plan with queues registered."""
    world = World(SimulationParameters(), seed=5)
    for name in small_qep.source_relations():
        world.cm.register_source(name)
    return QueryRuntime(world, small_qep)


def feed(rt, source, tuples, eof=False):
    rt.world.cm.queue(source).put(Message(tuples, eof=eof))


def run_batch(rt, fragment, max_tuples=10_000):
    proc = rt.world.sim.process(_once(fragment, max_tuples))
    rt.world.sim.run()
    assert proc.failure is None, proc.failure
    return proc.value


def _once(fragment, max_tuples):
    outcome = yield from fragment.process_batch(max_tuples)
    return outcome


# --------------------------------------------------------------------------
# Basic fragment processing
# --------------------------------------------------------------------------

def test_initial_fragments_one_per_chain(rt, small_qep):
    assert set(rt.fragments) == {"pR", "pS", "pT"}
    for chain in small_qep.chains:
        assert rt.chain_fragments[chain.name][0].kind is FragmentKind.PIPELINE_CHAIN


def test_build_fragment_inserts_into_table(rt):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    feed(rt, "R", 500)
    assert run_batch(rt, fragment) == BATCH_OK
    assert fragment.hash_table.tuples == 500
    assert fragment.tuples_in == 500


def test_fragment_charges_cpu(rt):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    feed(rt, "R", 100)
    run_batch(rt, fragment)
    # scan move + mat move = 200 instr/tuple -> 2 us * 100 tuples.
    assert rt.world.cpu.busy_time == pytest.approx(200e-6)


def test_fragment_finishes_on_eof(rt):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    feed(rt, "R", 1000, eof=True)
    assert run_batch(rt, fragment) == BATCH_FINISHED
    assert fragment.status is FragmentStatus.DONE
    assert rt.chain_complete("pR")
    assert fragment.hash_table.complete  # sealed at chain completion


def test_empty_batch_when_no_data(rt):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    assert run_batch(rt, fragment) == BATCH_EMPTY


def test_probe_fragment_fanout(rt):
    build = rt.fragments["pR"]
    rt.ensure_hash_table(build)
    feed(rt, "R", 1000, eof=True)
    run_batch(rt, build)
    probe = rt.fragments["pS"]
    rt.ensure_hash_table(probe)
    feed(rt, "S", 2000, eof=True)
    assert run_batch(rt, probe) == BATCH_FINISHED
    # |R ⋈ S| = 2000: J2's build table received all of them.
    assert rt.hash_tables["J2"].tuples == 2000


def test_full_query_through_fragments(rt):
    for source, fragment_name in [("R", "pR"), ("S", "pS"), ("T", "pT")]:
        fragment = rt.fragments[fragment_name]
        rt.ensure_hash_table(fragment)
        feed(rt, source, rt.world.cm.queue(source).capacity_messages * 0
             + {"R": 1000, "S": 2000, "T": 1500}[source], eof=True)
        run_batch(rt, fragment)
    assert rt.all_done
    assert rt.result_tuples == 1500
    assert rt.hash_tables == {}  # all tables dropped


def test_tables_dropped_when_probe_finishes(rt):
    build = rt.fragments["pR"]
    rt.ensure_hash_table(build)
    feed(rt, "R", 1000, eof=True)
    run_batch(rt, build)
    assert "J1" in rt.hash_tables
    probe = rt.fragments["pS"]
    rt.ensure_hash_table(probe)
    feed(rt, "S", 2000, eof=True)
    run_batch(rt, probe)
    assert "J1" not in rt.hash_tables  # dropped after probing completed
    assert "J2" in rt.hash_tables


def test_fragment_requires_table(rt):
    fragment = rt.fragments["pR"]
    feed(rt, "R", 10)
    proc = rt.world.sim.process(_once(fragment, 100))
    proc.defused = True
    rt.world.sim.run()
    assert proc.failure is not None


def test_process_done_fragment_rejected(rt):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    feed(rt, "R", 10, eof=True)
    run_batch(rt, fragment)
    proc = rt.world.sim.process(_once(fragment, 100))
    proc.defused = True
    rt.world.sim.run()
    assert isinstance(proc.failure, SchedulingError)


# --------------------------------------------------------------------------
# C-schedulability
# --------------------------------------------------------------------------

def test_c_schedulability_follows_dependencies(rt):
    assert rt.is_c_schedulable(rt.fragments["pR"])
    assert not rt.is_c_schedulable(rt.fragments["pS"])
    assert not rt.is_c_schedulable(rt.fragments["pT"])

    rt.ensure_hash_table(rt.fragments["pR"])
    feed(rt, "R", 1000, eof=True)
    run_batch(rt, rt.fragments["pR"])
    assert rt.is_c_schedulable(rt.fragments["pS"])
    assert not rt.is_c_schedulable(rt.fragments["pT"])


# --------------------------------------------------------------------------
# Degradation (MF / CF, partial materialization)
# --------------------------------------------------------------------------

def test_degrade_creates_mf_and_suspends_pc(rt, small_qep):
    mf = rt.degrade_chain(small_qep.chain("pS"))
    assert mf.kind is FragmentKind.MATERIALIZATION
    assert rt.fragments["pS"].suspended
    assert rt.is_c_schedulable(mf)          # MF has no ancestors
    assert not rt.is_c_schedulable(rt.fragments["pS"])


def test_degrade_running_chain_rejected(rt, small_qep):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    feed(rt, "R", 10)
    run_batch(rt, fragment)
    with pytest.raises(SchedulingError):
        rt.degrade_chain(small_qep.chain("pR"))


def test_degrade_twice_rejected(rt, small_qep):
    rt.degrade_chain(small_qep.chain("pS"))
    with pytest.raises(SchedulingError):
        rt.degrade_chain(small_qep.chain("pS"))


def test_mf_materializes_and_cf_replays(rt, small_qep):
    # Complete pR so pS becomes schedulable later.
    rt.ensure_hash_table(rt.fragments["pR"])
    feed(rt, "R", 1000, eof=True)
    run_batch(rt, rt.fragments["pR"])

    mf = rt.degrade_chain(small_qep.chain("pS"))
    feed(rt, "S", 1200)
    run_batch(rt, mf)
    feed(rt, "S", 800, eof=True)
    assert run_batch(rt, mf) == BATCH_FINISHED
    assert mf.temp_writer.temp.tuples == 2000

    created = rt.advance_degraded_chains()
    assert [f.name for f in created] == ["CF(pS)"]
    assert not rt.fragments["pS"].suspended

    cf = rt.fragments["CF(pS)"]
    assert rt.is_c_schedulable(cf)
    rt.ensure_hash_table(cf)
    while cf.status is not FragmentStatus.DONE:
        run_batch(rt, cf)
    # PC part: queue is exhausted, finalizes with zero tuples.
    pc = rt.fragments["pS"]
    rt.ensure_hash_table(pc)
    feed_queue_empty = rt.world.cm.queue("S").exhausted
    assert feed_queue_empty
    run_batch(rt, pc)
    assert rt.chain_complete("pS")
    assert rt.hash_tables["J2"].tuples == 2000


def test_partial_materialization_stop(rt, small_qep):
    mf = rt.degrade_chain(small_qep.chain("pS"))
    feed(rt, "S", 600)
    run_batch(rt, mf)
    rt.request_stop_materialization(small_qep.chain("pS"))
    assert mf.stop_requested
    assert mf.has_work()
    feed(rt, "S", 600)  # more data arrives but the MF must finalize instead
    assert run_batch(rt, mf) == BATCH_FINISHED
    assert mf.temp_writer.temp.tuples == 600

    rt.advance_degraded_chains()
    pc = rt.fragments["pS"]
    assert not pc.suspended
    # The unconsumed queue data is the PC's to process.
    assert rt.world.cm.queue("S").tuples_available == 600


def test_cf_and_pc_share_hash_table(rt, small_qep):
    rt.ensure_hash_table(rt.fragments["pR"])
    feed(rt, "R", 1000, eof=True)
    run_batch(rt, rt.fragments["pR"])

    mf = rt.degrade_chain(small_qep.chain("pS"))
    feed(rt, "S", 1000)
    run_batch(rt, mf)
    rt.request_stop_materialization(small_qep.chain("pS"))
    run_batch(rt, mf)
    rt.advance_degraded_chains()

    cf, pc = rt.fragments["CF(pS)"], rt.fragments["pS"]
    rt.ensure_hash_table(cf)
    rt.ensure_hash_table(pc)
    assert cf.hash_table is pc.hash_table

    feed(rt, "S", 1000, eof=True)
    run_batch(rt, pc)  # live tuples
    while cf.status is not FragmentStatus.DONE:
        run_batch(rt, cf)
    assert rt.chain_complete("pS")
    assert rt.hash_tables["J2"].tuples == 2000


# --------------------------------------------------------------------------
# Memory splits (Section 4.2)
# --------------------------------------------------------------------------

def test_split_for_memory_creates_continuation(rt, small_qep):
    fragment = rt.fragments["pR"]
    rt.ensure_hash_table(fragment)
    fragment.pending_spill = 123
    continuation = rt.split_for_memory(fragment)
    assert continuation.kind is FragmentKind.CONTINUATION
    assert fragment.writes_temp
    assert fragment.pending_spill == 0
    assert fragment.temp_writer.temp.tuples == 123
    assert continuation.hash_table is not None
    assert not rt.is_c_schedulable(continuation)  # parent not done yet


def test_split_without_build_rejected(rt):
    fragment = rt.fragments["pT"]  # output terminal
    with pytest.raises(SchedulingError):
        rt.split_for_memory(fragment)


def test_new_memory_needed(rt, small_qep):
    fragment = rt.fragments["pR"]
    assert rt.new_memory_needed(fragment) == 1000 * 40
    rt.ensure_hash_table(fragment)
    assert rt.new_memory_needed(fragment) == 0
    # Output fragments never need new memory.
    assert rt.new_memory_needed(rt.fragments["pT"]) == 0
