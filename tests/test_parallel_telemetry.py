"""Telemetry across the process boundary (result payload schema 2).

Since schema 2 the metrics registry and the periodic samples ride the
worker payloads, and :class:`SweepRunner` folds every result's registry
into ``merged_metrics`` — inline, pool-shipped or cache-served alike.
"""

import pytest

from repro.config import SimulationParameters
from repro.parallel import SweepRunner
from repro.parallel.results import (
    RESULT_SCHEMA_VERSION,
    result_from_payload,
    result_to_payload,
)
from repro.parallel.spec import RunSpec

SCALE = 0.02
TELEMETRY = SimulationParameters(telemetry_enabled=True,
                                 telemetry_sample_interval=0.05)


def _spec(strategy="DSE", seed=1, params=TELEMETRY) -> RunSpec:
    return RunSpec(strategy=strategy, seed=seed, scale=SCALE,
                   delays={rel: {"kind": "uniform", "w": 2e-5}
                           for rel in ["A", "B", "C", "D", "E", "F"]},
                   params=params)


def test_schema_version_covers_the_telemetry_payload():
    # Bumped 1 -> 2 when metrics/samples joined the payload, 2 -> 3 when
    # multi-query payloads gained decisions and admission outcomes,
    # 3 -> 4 when span trees and their summaries joined, 4 -> 5 when
    # submission/tenant identity joined, 5 -> 6 when worker identity
    # joined (`repro serve --workers N`); the version is part of every
    # cache key, so stale entries miss cleanly.
    assert RESULT_SCHEMA_VERSION == 6


def test_payload_roundtrip_preserves_metrics_and_samples():
    result = _spec().execute()
    assert result.metrics is not None and result.samples

    rebuilt = result_from_payload(result_to_payload(result))
    assert rebuilt.metrics is not None
    assert rebuilt.metrics.as_dict() == result.metrics.as_dict()
    assert [s.to_dict() for s in rebuilt.samples] == \
        [s.to_dict() for s in result.samples]
    assert rebuilt.response_time == result.response_time


def test_payload_roundtrip_with_telemetry_disabled():
    result = _spec(params=SimulationParameters()).execute()
    rebuilt = result_from_payload(result_to_payload(result))
    assert rebuilt.metrics is None
    assert rebuilt.samples == []


def test_pool_results_carry_the_same_metrics_as_inline():
    specs = [_spec(seed=s) for s in (1, 2)]
    inline = SweepRunner(jobs=1).run(specs)
    pooled = SweepRunner(jobs=2).run([_spec(seed=s) for s in (1, 2)])
    for serial, parallel in zip(inline, pooled):
        assert parallel.metrics.as_dict() == serial.metrics.as_dict()


def test_merged_metrics_sum_counters_across_the_sweep():
    specs = [_spec(seed=s) for s in (1, 2, 3)]
    runner = SweepRunner(jobs=1)
    results = runner.run(specs)

    merged = runner.merged_metrics.as_dict()
    expected = sum(r.metrics.get("dqp.batches").value for r in results)
    assert merged["dqp.batches"]["value"] == expected
    assert merged["cm.tuples_received"]["value"] == sum(
        r.metrics.get("cm.tuples_received").value for r in results)


def test_merged_metrics_identical_inline_pool_and_cached(tmp_path):
    def fresh_specs():
        return [_spec(seed=s) for s in (1, 2)]

    inline = SweepRunner(jobs=1)
    inline.run(fresh_specs())

    pooled = SweepRunner(jobs=2)
    pooled.run(fresh_specs())
    assert pooled.merged_metrics.as_dict() == inline.merged_metrics.as_dict()

    cold = SweepRunner(jobs=1, cache_dir=tmp_path)
    cold.run(fresh_specs())
    warm = SweepRunner(jobs=1, cache_dir=tmp_path)
    warm.run(fresh_specs())
    assert warm.stats.cache_hits == 2  # served from disk, not executed
    assert warm.merged_metrics.as_dict() == inline.merged_metrics.as_dict()


def test_telemetry_disabled_runs_merge_nothing():
    runner = SweepRunner(jobs=1)
    runner.run([_spec(params=SimulationParameters())])
    assert len(runner.merged_metrics) == 0


def test_sample_points_survive_the_pool():
    [result] = SweepRunner(jobs=1).run([_spec()])
    [shipped] = SweepRunner(jobs=2).run([_spec(), _spec(seed=99)])[:1]
    assert [s.to_dict() for s in shipped.samples] == \
        [s.to_dict() for s in result.samples]
    assert shipped.samples[0].time >= 0
    assert shipped.samples[-1].memory_used_bytes >= 0


def test_merged_histograms_add_counts():
    specs = [_spec(seed=s) for s in (1, 2)]
    runner = SweepRunner(jobs=1)
    results = runner.run(specs)
    merged = runner.merged_metrics.as_dict()
    name = "dqp.batch_tuples"
    merged_hist = merged[name]
    per_run = [r.metrics.get(name).as_dict() for r in results]
    assert merged_hist["count"] == sum(h["count"] for h in per_run)
    assert merged_hist["sum"] == pytest.approx(
        sum(h["sum"] for h in per_run))
    assert sum(merged_hist["counts"]) == merged_hist["count"]
