"""Causal span tracing: recorder, compiled hooks, critical path, exports.

The acceptance behaviour pinned here:

* the span recorder is pure bookkeeping — a seeded run is bit-identical
  with spans on or off;
* the recorded tree has the paper's causal shape (query → planning /
  exec phases → fragments → batches and stalls, caused-by edges from
  planning to the replan trigger and from a query to its admission
  wait);
* the critical-path analyzer's attributed categories re-sum **exactly**
  (float equality) to the response time, live and after a JSON
  round-trip;
* the compiled hook table is the shared ``NULL_HOOKS`` no-op when every
  observability channel is off.
"""

import json

import pytest

from repro.config import SimulationParameters
from repro.core.engine import QueryEngine
from repro.core.strategies import make_policy
from repro.experiments import figure5_workload
from repro.observability import (
    NULL_HOOKS,
    SPAN_ADMISSION_WAIT,
    SPAN_BATCH,
    SPAN_EXEC_PHASE,
    SPAN_FRAGMENT,
    SPAN_PLANNING,
    SPAN_QUERY,
    SPAN_STALL,
    Span,
    SpanRecorder,
    compile_dqp_hooks,
    explain_spans,
    format_bench_diff,
    format_explanation,
    format_explanation_diff,
    load_spans,
    span_summary,
    span_trace_events,
    spans_from_payload,
    write_spans_json,
)
from repro.observability.explain import (
    CAT_EXECUTION,
    CAT_MATERIALIZATION,
    CAT_SOURCE_WAIT,
    CATEGORIES,
    critical_path,
)
from repro.observability.telemetry import Telemetry
from repro.wrappers.delays import UniformDelay

SCALE = 0.05


class _Clock:
    def __init__(self):
        self.now = 0.0


# --------------------------------------------------------------------------
# SpanRecorder mechanics
# --------------------------------------------------------------------------

def test_begin_finish_builds_a_parented_span():
    clock = _Clock()
    recorder = SpanRecorder(clock)
    root = recorder.begin(SPAN_QUERY, "q", chains=3)
    clock.now = 1.0
    child = recorder.begin(SPAN_PLANNING, "planning-1", parent_id=root)
    clock.now = 1.5
    recorder.finish(child, fragments=4)
    clock.now = 2.0
    recorder.finish(root)

    assert len(recorder) == 2
    query, planning = recorder.spans
    assert (query.start, query.end) == (0.0, 2.0)
    assert query.attrs == {"chains": 3}
    assert planning.parent_id == root
    assert planning.duration == 0.5
    assert planning.attrs == {"fragments": 4}
    assert recorder.children(root) == [planning]
    assert recorder.roots() == [query]


def test_add_instant_last_and_set_cause():
    clock = _Clock()
    recorder = SpanRecorder(clock)
    clock.now = 3.0
    marker = recorder.instant("lease-grow", "q2", granted_bytes=64)
    assert recorder.spans[marker].duration == 0.0
    assert recorder.last("lease-grow") == marker

    batch = recorder.add(SPAN_BATCH, "pA", 1.0, 2.0, tuples=50)
    recorder.set_cause(batch, marker)
    assert recorder.spans[batch].caused_by == marker
    assert recorder.by_kind(SPAN_BATCH) == [recorder.spans[batch]]
    assert recorder.last("never-recorded") is None


def test_payload_roundtrip_preserves_every_field():
    clock = _Clock()
    recorder = SpanRecorder(clock)
    root = recorder.begin(SPAN_QUERY, "q")
    clock.now = 1.0
    recorder.add(SPAN_STALL, "timeout", 0.25, 0.75, parent_id=root,
                 cause="timeout")
    recorder.finish(root)

    rebuilt = spans_from_payload(recorder.to_payload())
    assert [span.to_dict() for span in rebuilt] == \
        [span.to_dict() for span in recorder.spans]


def test_write_json_and_load_spans_roundtrip(tmp_path):
    clock = _Clock()
    recorder = SpanRecorder(clock)
    root = recorder.begin(SPAN_QUERY, "q")
    clock.now = 2.0
    recorder.add(SPAN_BATCH, "pA", 0.5, 1.0, parent_id=root,
                 caused_by=root, tuples=10)
    recorder.finish(root)

    path = recorder.write_json(tmp_path / "spans.json")
    assert path.exists()
    loaded = load_spans(path)
    assert [span.to_dict() for span in loaded] == \
        [span.to_dict() for span in recorder.spans]

    # The chrome sibling lands next to it, with flow edges for the
    # caused-by links and a thread-name lane per span kind.
    trace = json.loads((tmp_path / "spans.trace.json").read_text())
    phases = [event["ph"] for event in trace["traceEvents"]]
    assert "X" in phases and "M" in phases
    assert "s" in phases and "f" in phases  # the caused-by flow arrow


def test_load_spans_rejects_alien_and_missing_files(tmp_path):
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="not found"):
        load_spans(tmp_path / "nope.json")
    alien = tmp_path / "alien.json"
    alien.write_text(json.dumps({"version": 999, "spans": []}))
    with pytest.raises(ConfigurationError, match="not a span export"):
        load_spans(alien)


def test_trace_events_clamp_open_spans_to_the_horizon():
    spans = [Span(span_id=0, kind=SPAN_QUERY, name="q", start=0.0, end=None),
             Span(span_id=1, kind=SPAN_BATCH, name="pA", start=0.0, end=2.0)]
    events = [e for e in span_trace_events(spans) if e.get("ph") == "X"]
    # The open query span renders to the last known end, not zero-width.
    assert len(events) == 2
    assert all(event["dur"] >= 1.0 for event in events)


# --------------------------------------------------------------------------
# Compiled hook table
# --------------------------------------------------------------------------

def test_everything_off_compiles_to_the_shared_null_table():
    hooks = compile_dqp_hooks(Telemetry())
    assert hooks is NULL_HOOKS
    assert not hooks.enabled
    assert hooks.batch == () and hooks.switch == ()
    assert hooks.stall == () and hooks.plan == ()


def test_spans_only_compile_batch_and_stall_slots():
    telemetry = Telemetry()
    telemetry.spans = SpanRecorder(_Clock())
    hooks = compile_dqp_hooks(telemetry, phase_span_of=lambda: 7)
    assert hooks.enabled
    assert len(hooks.batch) == 1 and len(hooks.stall) == 1
    assert hooks.switch == () and hooks.plan == ()

    class _Kind:
        value = "mf"

    class _Fragment:
        name = "pA"
        kind = _Kind()

    hooks.batch[0](1.0, 2.0, _Fragment(), 32)
    hooks.stall[0](2.0, 3.0, "source-wait:A")
    batch, stall = telemetry.spans.spans
    assert batch.kind == SPAN_BATCH and batch.parent_id == 7
    assert batch.attrs == {"fragment_kind": "mf", "tuples": 32}
    assert stall.kind == SPAN_STALL and stall.duration == 1.0


def test_metrics_channel_compiles_every_slot():
    telemetry = Telemetry(sim=_Clock(), enabled=True)
    hooks = compile_dqp_hooks(telemetry)
    assert len(hooks.batch) == 1 and len(hooks.switch) == 1
    assert len(hooks.stall) == 1 and len(hooks.plan) == 1
    hooks.plan[0](0.0, 5)
    assert telemetry.registry.get("dqs.planning_phases").value == 1
    assert telemetry.registry.get("dqs.plan_fragments").value == 5


# --------------------------------------------------------------------------
# Engine integration: the recorded tree and its invariants
# --------------------------------------------------------------------------

def _run(strategy="DSE", spans=True, slow=None, seed=3, scale=SCALE):
    workload = figure5_workload(scale=scale)
    params = SimulationParameters(telemetry_spans=spans)
    slow = slow or {}
    delays = {name: UniformDelay(params.w_min * slow.get(name, 1.0))
              for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, workload.qep,
                         make_policy(strategy), delays, params=params,
                         seed=seed)
    return engine.run()


@pytest.fixture(scope="module")
def dse_spans():
    return _run("DSE", slow={"C": 8.0}).spans


def test_recorded_tree_has_the_causal_shape(dse_spans):
    spans = dse_spans
    queries = [s for s in spans if s.kind == SPAN_QUERY]
    assert len(queries) == 1
    root = queries[0]
    assert root.end is not None and root.attrs["strategy"] == "DSE"
    assert "result_tuples" in root.attrs

    plannings = [s for s in spans if s.kind == SPAN_PLANNING]
    phases = [s for s in spans if s.kind == SPAN_EXEC_PHASE]
    assert plannings and phases
    assert all(s.parent_id == root.span_id for s in plannings + phases)
    # Every exec phase is caused by the planning phase that produced it.
    planning_ids = {s.span_id for s in plannings}
    assert all(s.caused_by in planning_ids for s in phases)

    phase_ids = {s.span_id for s in phases}
    batches = [s for s in spans if s.kind == SPAN_BATCH]
    assert batches
    assert all(s.parent_id in phase_ids for s in batches)
    assert all(s.end is not None and s.end >= s.start for s in batches)

    fragments = [s for s in spans if s.kind == SPAN_FRAGMENT]
    assert fragments
    assert all(s.parent_id == root.span_id for s in fragments)
    assert {"mf", "pc"} <= {s.attrs["fragment_kind"] for s in fragments}


def test_stall_spans_carry_their_attributed_cause(dse_spans):
    stalls = [s for s in dse_spans if s.kind == SPAN_STALL]
    assert stalls, "a slowed source must stall the DQP"
    assert any(s.attrs["cause"].startswith("source-wait:")
               for s in stalls)


def test_seeded_run_is_bit_identical_with_spans_on_or_off():
    on = _run("DSE", spans=True, slow={"A": 10.0})
    off = _run("DSE", spans=False, slow={"A": 10.0})
    assert off.spans is None and on.spans
    assert on.response_time == off.response_time
    assert on.batches_processed == off.batches_processed
    assert on.context_switches == off.context_switches
    assert on.stall_time == off.stall_time
    assert on.result_tuples == off.result_tuples
    assert on.fragment_stats == off.fragment_stats


def test_span_ids_are_deterministic_across_repeat_runs():
    first = _run("SEQ", slow={"C": 4.0}).spans
    second = _run("SEQ", slow={"C": 4.0}).spans
    assert [s.to_dict() for s in first] == [s.to_dict() for s in second]


# --------------------------------------------------------------------------
# Critical-path analyzer
# --------------------------------------------------------------------------

def test_explanation_re_sums_exactly_for_both_strategies():
    for strategy in ("SEQ", "DSE"):
        result = _run(strategy, slow={"C": 8.0})
        explanation = explain_spans(result.spans, strategy=strategy)
        assert explanation.response_time == result.response_time
        assert explanation.accounted == explanation.response_time
        assert "(exact)" in format_explanation(explanation)


def test_segments_tile_the_response_time_without_overlap(dse_spans):
    segments = critical_path(dse_spans)
    root = next(s for s in dse_spans if s.kind == SPAN_QUERY)
    assert segments[0].start == root.start
    assert segments[-1].end == root.end
    for before, after in zip(segments, segments[1:]):
        assert after.start == before.end  # gapless, no overlap
    assert all(seg.duration > 0 for seg in segments)
    assert all(seg.category in CATEGORIES for seg in segments)


def test_dse_converts_source_wait_into_overlapped_work():
    """The paper's Figure 6 story, read off the span trees: SEQ's
    critical path is dominated by waiting for the slowed relation, DSE
    hides that wait behind materialization work and finishes earlier."""
    # Needs enough work per phase for the overlap to pay off, so run at a
    # larger scale than the module default with a harsher slowdown.
    seq = explain_spans(
        _run("SEQ", slow={"C": 10.0}, seed=7, scale=0.3).spans, strategy="SEQ")
    dse = explain_spans(
        _run("DSE", slow={"C": 10.0}, seed=7, scale=0.3).spans, strategy="DSE")
    assert dse.response_time < seq.response_time
    assert seq.totals[CAT_SOURCE_WAIT] > dse.totals[CAT_SOURCE_WAIT]
    assert seq.totals[CAT_SOURCE_WAIT] > seq.totals[CAT_EXECUTION]
    assert dse.totals[CAT_MATERIALIZATION] > seq.totals[CAT_MATERIALIZATION]

    diff = format_explanation_diff(dse, seq)
    assert "largest contributor to the delta: source-wait" in diff


def test_explanation_survives_the_json_roundtrip(tmp_path):
    result = _run("DSE", slow={"C": 8.0})
    live = explain_spans(result.spans)
    path = write_spans_json(result.spans, tmp_path / "dse.json")
    loaded = explain_spans(load_spans(path))
    assert loaded.totals == live.totals
    assert loaded.accounted == loaded.response_time


def test_span_summary_matches_the_full_explanation():
    result = _run("DSE", slow={"C": 8.0})
    summary = span_summary(result.spans)
    explanation = explain_spans(result.spans)
    assert summary["spans"] == len(result.spans)
    assert summary["response_time"] == explanation.response_time
    assert summary["totals"] == explanation.totals
    # The engine shipped the same summary on the result itself.
    assert result.span_summary == summary


def test_span_summary_of_an_empty_recording_is_harmless():
    assert span_summary([]) == {"spans": 0, "totals": None,
                                "response_time": None}


def test_format_bench_diff_lists_cases_and_derived_metrics():
    base = {"cases": [{"name": "dqp_batch_loop", "wall_s": 1.0}],
            "derived": {"dqp_batches_per_sec": 100.0,
                        "parallel_speedup": None}}
    current = {"cases": [{"name": "dqp_batch_loop", "wall_s": 1.1}],
               "derived": {"dqp_batches_per_sec": 90.0,
                           "parallel_speedup": 2.0}}
    text = format_bench_diff(base, current, "PR5", "PR6")
    assert "dqp_batch_loop" in text and "+10.0%" in text
    assert "n/a" in text  # the None speedup renders, not crashes


# --------------------------------------------------------------------------
# Payloads: spans cross the process/cache boundary
# --------------------------------------------------------------------------

def test_execution_payload_roundtrips_spans():
    from repro.parallel.results import result_from_payload, result_to_payload

    result = _run("DSE", slow={"C": 4.0})
    rebuilt = result_from_payload(result_to_payload(result))
    assert rebuilt.span_summary == result.span_summary
    assert [s.to_dict() for s in rebuilt.spans] == \
        [s.to_dict() for s in result.spans]
    # And the rebuilt spans explain identically.
    assert explain_spans(rebuilt.spans).totals == \
        explain_spans(result.spans).totals


def test_spans_disabled_payload_ships_none():
    from repro.parallel.results import result_from_payload, result_to_payload

    result = _run("DSE", spans=False)
    payload = result_to_payload(result)
    assert payload["spans"] is None and payload["span_summary"] is None
    rebuilt = result_from_payload(payload)
    assert rebuilt.spans is None and rebuilt.span_summary is None


# --------------------------------------------------------------------------
# Multi-query: admission waits cause late query spans
# --------------------------------------------------------------------------

def test_admission_wait_span_causes_the_queued_query(tiny_fig5):
    from repro import MultiQueryEngine, QuerySubmission

    KB = 1024
    params = SimulationParameters().with_overrides(
        dynamic_budget_replanning=True, telemetry_spans=True)

    def sub(name, mem, mn=None, start=0.0):
        return QuerySubmission(
            name=name, catalog=tiny_fig5.catalog, qep=tiny_fig5.qep,
            policy=make_policy("SEQ"),
            delay_models={n: UniformDelay(params.w_min)
                          for n in tiny_fig5.relation_names},
            start_time=start, memory_bytes=mem, min_memory_bytes=mn)

    engine = MultiQueryEngine(params=params, seed=11,
                              global_memory_bytes=240 * KB)
    engine.submit(sub("running", mem=180 * KB))
    engine.submit(sub("waiter", mem=150 * KB, mn=100 * KB, start=0.001))
    result = engine.run()

    assert result.spans is not None
    waits = [s for s in result.spans if s.kind == SPAN_ADMISSION_WAIT]
    assert len(waits) == 1 and waits[0].name == "waiter"
    assert waits[0].duration == result.outcome("waiter").admission_wait

    queries = {s.name: s for s in result.spans if s.kind == SPAN_QUERY}
    assert set(queries) == {"running", "waiter"}
    assert queries["running"].caused_by is None
    assert queries["waiter"].caused_by == waits[0].span_id

    # The machine-wide tree round-trips through the worker payload.
    from repro.parallel.results import (
        multiquery_result_from_payload,
        multiquery_result_to_payload,
    )
    rebuilt = multiquery_result_from_payload(
        multiquery_result_to_payload(result))
    assert [s.to_dict() for s in rebuilt.spans] == \
        [s.to_dict() for s in result.spans]
