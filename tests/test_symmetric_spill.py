"""Tests for the XJoin-style spilling variant of DPHJ."""

import pytest

from repro import SimulationParameters, UniformDelay
from repro.common.errors import MemoryOverflowError
from repro.core.symmetric import SymmetricHashJoinEngine, SymmetricPlan


def run_dphj(workload, *, allow_spill, budget_bytes=None, seed=1, waits=None):
    params = SimulationParameters()
    if budget_bytes is not None:
        params = params.with_overrides(query_memory_bytes=budget_bytes)
    if waits is None:
        waits = {name: params.w_min for name in workload.relation_names}
    delays = {name: UniformDelay(w) for name, w in waits.items()}
    return SymmetricHashJoinEngine(workload.catalog, workload.tree, delays,
                                   params=params, seed=seed,
                                   allow_spill=allow_spill).run()


def plan_bytes(workload):
    return SymmetricPlan(workload.catalog, workload.tree).total_table_bytes()


def test_no_spill_when_memory_suffices(tiny_fig5):
    result = run_dphj(tiny_fig5, allow_spill=True)
    assert result.tuples_spilled == 0
    assert result.cleanup_time == 0.0
    assert result.strategy == "DPHJ-X"


def test_spill_keeps_result_exact(tiny_fig5):
    roomy = run_dphj(tiny_fig5, allow_spill=True)
    tight = run_dphj(tiny_fig5, allow_spill=True,
                     budget_bytes=plan_bytes(tiny_fig5) // 2)
    assert tight.tuples_spilled > 0
    assert tight.cleanup_time > 0
    assert tight.result_tuples == pytest.approx(roomy.result_tuples, abs=5)


def test_spill_respects_budget(tiny_fig5):
    budget = plan_bytes(tiny_fig5) // 2
    result = run_dphj(tiny_fig5, allow_spill=True, budget_bytes=budget)
    assert result.memory_peak_bytes <= budget


def test_tighter_budget_spills_more(tiny_fig5):
    total = plan_bytes(tiny_fig5)
    half = run_dphj(tiny_fig5, allow_spill=True, budget_bytes=total // 2)
    quarter = run_dphj(tiny_fig5, allow_spill=True, budget_bytes=total // 4)
    assert quarter.tuples_spilled > half.tuples_spilled
    assert quarter.response_time >= half.response_time


def test_spill_costs_response_time(tiny_fig5):
    roomy = run_dphj(tiny_fig5, allow_spill=True)
    tight = run_dphj(tiny_fig5, allow_spill=True,
                     budget_bytes=plan_bytes(tiny_fig5) // 2)
    assert tight.response_time > roomy.response_time


def test_plain_dphj_still_refuses(tiny_fig5):
    with pytest.raises(MemoryOverflowError):
        run_dphj(tiny_fig5, allow_spill=False,
                 budget_bytes=plan_bytes(tiny_fig5) // 2)


def test_spill_under_slow_source(tiny_fig5):
    """Spilling composes with delay absorption (exactness under delays)."""
    waits = {name: 20e-6 for name in tiny_fig5.relation_names}
    waits["F"] = 200e-6
    result = run_dphj(tiny_fig5, allow_spill=True,
                      budget_bytes=plan_bytes(tiny_fig5) // 2, waits=waits)
    baseline = run_dphj(tiny_fig5, allow_spill=True)
    assert result.result_tuples == pytest.approx(baseline.result_tuples,
                                                 abs=5)


def test_spill_deterministic(tiny_fig5):
    budget = plan_bytes(tiny_fig5) // 2
    first = run_dphj(tiny_fig5, allow_spill=True, budget_bytes=budget)
    second = run_dphj(tiny_fig5, allow_spill=True, budget_bytes=budget)
    assert first.response_time == second.response_time
    assert first.tuples_spilled == second.tuples_spilled


def test_continuations_cover_every_join(tiny_fig5):
    plan = SymmetricPlan(tiny_fig5.catalog, tiny_fig5.tree)
    root = plan.joins[-1]
    assert root.continuation == []
    for join in plan.joins[:-1]:
        assert join.continuation, join.name
        assert join.continuation[-1][0] is root
