"""Unit tests for the resource-governance plane (repro.resources)."""

import pytest

from repro.common.errors import ConfigurationError, SimulationError
from repro.observability import Telemetry
from repro.resources import AdmissionController, MemoryBroker, MemoryLease
from repro.sim import Simulator


# -- the leaf layer: legacy MemoryManager semantics -------------------------

class TestLeaseLeafAccounting:
    def test_reserve_release_peak(self):
        lease = MemoryLease(1000)
        lease.reserve("a", 400)
        lease.reserve("b", 300)
        assert lease.used_bytes == 700
        assert lease.available_bytes == 300
        assert lease.peak_bytes == 700
        assert lease.held_by("a") == 400
        assert lease.release("a") == 400
        assert lease.used_bytes == 300
        assert lease.peak_bytes == 700  # high-water mark survives

    def test_try_grow(self):
        lease = MemoryLease(1000)
        lease.reserve("t", 600)
        assert lease.try_grow("t", 400)
        assert not lease.try_grow("t", 1)
        assert lease.held_by("t") == 1000

    def test_would_fit_static(self):
        lease = MemoryLease(1000)
        assert lease.would_fit(1000)
        assert not lease.would_fit(1001)

    def test_error_messages_preserved(self):
        lease = MemoryLease(100)
        with pytest.raises(SimulationError, match="negative reservation"):
            lease.reserve("x", -1)
        lease.reserve("x", 10)
        with pytest.raises(SimulationError, match="already holds"):
            lease.reserve("x", 10)
        with pytest.raises(SimulationError, match="exceeds available"):
            lease.reserve("y", 1000)
        with pytest.raises(SimulationError, match="negative growth"):
            lease.try_grow("x", -1)
        with pytest.raises(SimulationError, match="holds no reservation"):
            lease.try_grow("ghost", 1)
        with pytest.raises(SimulationError, match="holds no reservation"):
            lease.release("ghost")

    def test_non_positive_budget_rejected(self):
        with pytest.raises(SimulationError, match="must be positive"):
            MemoryLease(0)

    def test_bounds_validated(self):
        with pytest.raises(SimulationError, match="bounds violated"):
            MemoryLease(100, min_bytes=200)
        with pytest.raises(SimulationError, match="bounds violated"):
            MemoryLease(100, max_bytes=50)


# -- broker: pool arithmetic and demand pulls --------------------------------

class TestBroker:
    def test_unbounded_broker_preserves_legacy(self):
        broker = MemoryBroker()
        lease = broker.lease("q", 1000)
        assert not broker.governed
        assert broker.spare_bytes() is None
        # min == max == budget: headroom is zero, arithmetic identical
        # to the old private MemoryManager.
        assert not lease.would_fit(1001)

    def test_governed_pool_bounds_leases(self):
        broker = MemoryBroker(1000)
        broker.lease("a", 600)
        with pytest.raises(SimulationError, match="exceeds spare pool"):
            broker.lease("b", 500)
        broker.lease("b", 400)
        assert broker.spare_bytes() == 0

    def test_non_positive_pool_rejected(self):
        with pytest.raises(SimulationError, match="must be positive"):
            MemoryBroker(0)

    def test_demand_pull_grows_lease(self):
        broker = MemoryBroker(1000)
        lease = broker.lease("q", 400, min_bytes=400, max_bytes=900)
        # would_fit sees the headroom a pull could claim: 400 budget
        # + min(900 - 400, 600 spare) = 900.
        assert lease.would_fit(900)
        assert not lease.would_fit(901)
        lease.reserve("t", 700)  # pulls 300 from the pool silently
        assert lease.total_bytes == 700
        assert broker.spare_bytes() == 300

    def test_pull_capped_by_max_bytes(self):
        broker = MemoryBroker(10_000)
        lease = broker.lease("q", 400, max_bytes=500)
        assert lease.would_fit(500)
        assert not lease.would_fit(501)
        lease.reserve("t", 500)
        assert lease.total_bytes == 500

    def test_release_offers_bytes_to_subscribed_lease(self):
        sim = Simulator()
        telemetry = Telemetry(sim=sim, enabled=True)
        broker = MemoryBroker(1000, sim=sim, telemetry=telemetry)
        stay = broker.lease("stay", 400, min_bytes=400, max_bytes=1000)
        done = broker.lease("done", 600)
        grows = []
        stay.subscribe_grow(lambda granted, total: grows.append(
            (granted, total)))
        broker.release(done)
        assert grows == [(600, 1000)]
        assert stay.grow_revision == 1
        assert [r.kind for r in telemetry.audit] == ["lease-grow"]

    def test_no_offer_without_subscription(self):
        broker = MemoryBroker(1000)
        stay = broker.lease("stay", 400, min_bytes=400, max_bytes=1000)
        broker.release(broker.lease("done", 600))
        assert stay.total_bytes == 400  # static query keeps its budget

    def test_reclaim_shrinks_only_under_demand(self):
        broker = MemoryBroker(1000)
        fat = broker.lease("fat", 800, min_bytes=200, max_bytes=800)
        fat.reserve("t", 300)
        fat.release("t")
        # Nobody is waiting: the query keeps its full budget.
        assert fat.total_bytes == 800

        hungry = broker.lease("hungry", 200, min_bytes=200, max_bytes=600)
        hungry.subscribe_grow(lambda *a: None)
        fat.reserve("t", 300)
        fat.release("t")
        # Demand exists: fat shrinks to max(used, min) and the freed
        # bytes are offered to the growable lease.
        assert fat.total_bytes == 200
        assert hungry.total_bytes == 600

    def test_released_lease_cannot_pull(self):
        broker = MemoryBroker(1000)
        lease = broker.lease("q", 400, max_bytes=900)
        broker.release(lease)
        assert not broker.expand_lease(lease, 100)
        assert not lease.would_fit(500)

    def test_lease_gauges(self):
        sim = Simulator()
        telemetry = Telemetry(sim=sim, enabled=True)
        broker = MemoryBroker(1000, sim=sim, telemetry=telemetry)
        lease = broker.lease("q", 600)
        lease.attach_metrics(telemetry.registry, prefix="memory.q")
        lease.reserve("t", 250)
        registry = telemetry.registry
        assert registry.gauge("memory.q.used_bytes").value == 250
        assert registry.gauge("memory.q.peak_bytes").value == 250
        assert registry.gauge("memory.q.available_bytes").value == 350
        assert registry.gauge("broker.mediator.pool_bytes").value == 1000
        assert registry.gauge("broker.mediator.leased_bytes").value == 600
        assert registry.gauge("broker.mediator.spare_bytes").value == 400
        assert registry.gauge("broker.mediator.active_leases").value == 1


# -- admission control -------------------------------------------------------

def _controller(pool=1000, policy="fifo", enabled=False):
    sim = Simulator()
    telemetry = Telemetry(sim=sim, enabled=enabled)
    broker = MemoryBroker(pool, sim=sim, telemetry=telemetry)
    return AdmissionController(broker, sim, telemetry=telemetry,
                               policy=policy), broker, telemetry


class TestAdmission:
    def test_immediate_grant_formula(self):
        controller, broker, _ = _controller(pool=1000)
        ticket = controller.request("q", min_bytes=200, max_bytes=700)
        # spare 1000: granted = min(700, max(200, 1000)) = 700
        assert ticket.granted
        assert ticket.lease.total_bytes == 700
        assert ticket.waited == 0.0

    def test_tight_grant_starts_at_spare(self):
        controller, broker, _ = _controller(pool=1000)
        broker.lease("other", 700)
        ticket = controller.request("q", min_bytes=200, max_bytes=900)
        # spare 300: granted = min(900, max(200, 300)) = 300
        assert ticket.granted
        assert ticket.lease.total_bytes == 300

    def test_queue_and_fifo_drain(self):
        controller, broker, telemetry = _controller(pool=1000)
        first = broker.lease("running", 900)
        a = controller.request("a", min_bytes=300, max_bytes=500)
        b = controller.request("b", min_bytes=200, max_bytes=300)
        assert not a.granted and not b.granted
        assert controller.queue_depth == 2
        broker.release(first)
        # Strict head-of-line: a admitted first even though b is smaller.
        assert a.granted and b.granted
        assert a.admitted_at is not None
        kinds = [r.kind for r in telemetry.audit]
        assert kinds == ["admission-queue", "admission-queue",
                         "admit", "admit"]
        assert [r.subject for r in telemetry.audit if r.kind == "admit"] \
            == ["a", "b"]

    def test_head_of_line_blocks_smaller_followers(self):
        controller, broker, _ = _controller(pool=1000)
        broker.lease("running", 600)
        big = controller.request("big", min_bytes=500, max_bytes=500)
        small = controller.request("small", min_bytes=100, max_bytes=100)
        # 400 spare fits small but not the head: nobody is admitted.
        assert not big.granted and not small.granted

    def test_priority_policy(self):
        controller, broker, _ = _controller(pool=1000, policy="priority")
        first = broker.lease("running", 900)
        low = controller.request("low", 300, 300, priority=1.0)
        high = controller.request("high", 300, 300, priority=5.0)
        broker.release(first)
        assert high.admitted_at is not None and low.admitted_at is not None
        assert high.lease is not None and low.lease is not None
        # Both fit after the release, but high was drained first.
        assert broker.leases.index(high.lease) \
            < broker.leases.index(low.lease)

    def test_invalid_bounds_rejected(self):
        controller, _, _ = _controller()
        with pytest.raises(ConfigurationError, match="need 0 < min <= max"):
            controller.request("q", min_bytes=0, max_bytes=100)
        with pytest.raises(ConfigurationError, match="need 0 < min <= max"):
            controller.request("q", min_bytes=200, max_bytes=100)

    def test_never_admittable_rejected(self):
        controller, _, _ = _controller(pool=1000)
        with pytest.raises(ConfigurationError, match="could never be admitted"):
            controller.request("q", min_bytes=2000, max_bytes=3000)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown admission"):
            _controller(policy="lifo")

    def test_metrics(self):
        controller, broker, telemetry = _controller(pool=1000, enabled=True)
        first = broker.lease("running", 900)
        controller.request("q", min_bytes=300, max_bytes=500)
        registry = telemetry.registry
        assert registry.gauge("admission.queue_depth").value == 1
        assert registry.counter("admission.queued").value == 1
        broker.release(first)
        assert registry.gauge("admission.queue_depth").value == 0
        assert registry.counter("admission.admitted").value == 1
