"""Client-command failure UX against an unreachable daemon.

`repro submit`, `repro watch` and `repro top --connect` talk to a
running `repro serve`; when nothing is listening they must exit 2 with
one crisp stderr line — not a traceback, and (for the streaming
commands) not a silent multi-second reconnect ladder.  Port 1 on
loopback is never listening, so every connection attempt is an
immediate refusal.
"""

import pytest

from repro.cli import main

#: nothing listens on tcp/1 (privileged, unused): instant refusal.
DEAD = "127.0.0.1:1"


@pytest.mark.parametrize("argv", [
    ["submit", "--connect", DEAD],
    ["submit", "--connect", DEAD, "--wait"],
    ["watch", "--connect", DEAD],
    ["top", "--connect", DEAD, "--once"],
])
def test_client_commands_exit_2_when_nothing_listens(argv, capsys):
    assert main(argv) == 2
    captured = capsys.readouterr()
    assert captured.err.startswith("error: ")
    assert "Traceback" not in captured.err
    # One-line diagnosis: the fail-fast path must not have looped
    # through the reconnect ladder printing retry notices.
    assert len(captured.err.strip().splitlines()) == 1


def test_error_line_names_the_endpoint(capsys):
    assert main(["submit", "--connect", DEAD]) == 2
    err = capsys.readouterr().err
    assert "127.0.0.1" in err
    assert "repro serve" in err  # points at the fix, not just the symptom
