"""Tests for the communication manager and the wrapper processes."""

import pytest

from repro.catalog import Relation
from repro.common.errors import SimulationError
from repro.config import SimulationParameters
from repro.core.runtime import World
from repro.wrappers import ConstantDelay, UniformDelay
from repro.wrappers.source import Wrapper


def make_world(**overrides):
    params = SimulationParameters().with_overrides(**overrides)
    return World(params, seed=42)


def start_wrapper(world, relation, model):
    wrapper = Wrapper(world.sim, relation, model, world.cm,
                      world.rng(f"wrapper:{relation.name}"), world.params)
    wrapper.start()
    return wrapper


# --------------------------------------------------------------------------
# CommunicationManager
# --------------------------------------------------------------------------

def test_register_source_creates_queue_and_estimator():
    world = make_world()
    queue = world.cm.register_source("W")
    assert world.cm.queue("W") is queue
    assert world.cm.estimator("W").tuples_delivered == 0


def test_register_twice_rejected():
    world = make_world()
    world.cm.register_source("W")
    with pytest.raises(SimulationError):
        world.cm.register_source("W")


def test_unknown_source_rejected():
    world = make_world()
    with pytest.raises(SimulationError):
        world.cm.queue("Z")


def test_deliver_charges_receive_cpu():
    world = make_world()
    world.cm.register_source("W")

    def producer():
        yield from world.cm.deliver("W", 100, eof=True,
                                    production_seconds=0.0)

    world.sim.process(producer())
    world.sim.run()
    expected = world.params.instructions_seconds(
        world.params.message_instructions)
    assert world.cpu.busy_time == pytest.approx(expected)
    assert world.cm.queue("W").tuples_available == 100


def test_rate_change_listener_fires():
    world = make_world(rate_change_threshold=0.5)
    world.cm.register_source("W")
    changes = []
    world.cm.set_rate_listener(lambda s, old, new: changes.append((s, old, new)))

    def producer():
        # Establish a baseline of 10 us/tuple, then slow to 100 us/tuple.
        for _ in range(5):
            yield from world.cm.deliver("W", 100, eof=False,
                                        production_seconds=0.001)
            world.cm.queue("W").take_batch(100)
        world.cm.arm_rate_baseline()
        for _ in range(5):
            yield from world.cm.deliver("W", 100, eof=False,
                                        production_seconds=0.01)
            world.cm.queue("W").take_batch(100)

    world.sim.process(producer())
    world.sim.run()
    assert changes
    source, old, new = changes[0]
    assert source == "W" and new > old


def test_no_rate_change_without_baseline():
    world = make_world()
    world.cm.register_source("W")
    changes = []
    world.cm.set_rate_listener(lambda *a: changes.append(a))

    def producer():
        yield from world.cm.deliver("W", 100, eof=False,
                                    production_seconds=0.001)
        yield from world.cm.deliver("W", 100, eof=False,
                                    production_seconds=0.1)

    world.sim.process(producer())
    world.sim.run()
    assert changes == []  # baseline never armed


def test_wait_snapshot_defaults():
    world = make_world()
    world.cm.register_source("W")
    snapshot = world.cm.wait_snapshot(default=7.0)
    assert snapshot == {"W": 7.0}


# --------------------------------------------------------------------------
# Wrapper
# --------------------------------------------------------------------------

def test_wrapper_ships_whole_relation():
    world = make_world()
    relation = Relation("W", 1000)
    wrapper = start_wrapper(world, relation, ConstantDelay(0.0))

    def consumer():
        queue = world.cm.queue("W")
        consumed = 0
        while consumed < 1000:
            yield queue.data_event()
            consumed += queue.take_batch(10_000)
        return consumed

    proc = world.sim.process(consumer())
    world.sim.run()
    assert proc.value == 1000
    assert wrapper.tuples_sent == 1000
    assert world.cm.queue("W").exhausted


def test_wrapper_production_time_matches_delay_model():
    world = make_world()
    relation = Relation("W", 500)
    wrapper = start_wrapper(world, relation, ConstantDelay(1e-4))

    def consumer():
        queue = world.cm.queue("W")
        while not queue.exhausted:
            yield queue.data_event()
            queue.take_batch(10_000)

    world.sim.process(consumer())
    world.sim.run()
    assert wrapper.production_time == pytest.approx(500 * 1e-4)
    assert wrapper.finished_at >= 500 * 1e-4


def test_wrapper_empty_relation_sends_eof():
    world = make_world()
    start_wrapper(world, Relation("W", 0), ConstantDelay(0.0))
    world.sim.run()
    queue = world.cm.queue("W")
    assert queue.eof_received and queue.exhausted


def test_wrapper_blocks_on_full_queue():
    world = make_world(queue_capacity_messages=1)
    relation = Relation("W", 5000)
    wrapper = start_wrapper(world, relation, ConstantDelay(0.0))
    world.sim.run(until=1.0)
    # Nobody consumes: at most 1 queued message + 2 in the outbound
    # pipeline + 1 in production.
    per_message = world.params.tuples_per_message
    assert wrapper.tuples_sent <= per_message
    assert world.cm.queue("W").is_full


def test_wrapper_start_twice_rejected():
    world = make_world()
    wrapper = Wrapper(world.sim, Relation("W", 10), ConstantDelay(0.0),
                      world.cm, world.rng("w"), world.params)
    wrapper.start()
    with pytest.raises(SimulationError):
        wrapper.start()


def test_wrapper_rate_estimate_converges():
    world = make_world()
    relation = Relation("W", 20_000)
    start_wrapper(world, relation, UniformDelay(5e-5))

    def consumer():
        queue = world.cm.queue("W")
        while not queue.exhausted:
            yield queue.data_event()
            queue.take_batch(10_000)

    world.sim.process(consumer())
    world.sim.run()
    estimate = world.cm.estimator("W").wait_estimate
    assert estimate == pytest.approx(5e-5, rel=0.25)
