"""Fast regressions of the paper's headline result *shapes*.

The benchmarks regenerate the full-scale figures; these tests pin the
same qualitative claims at 10% scale so the plain test suite catches any
regression of the reproduction itself within seconds.
"""

import pytest

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.core.strategies import lower_bound
from repro.experiments import figure5_workload, slowdown_waits


@pytest.fixture(scope="module")
def workload():
    # 25%: large enough that fixed overheads (chunked I/O positioning,
    # planning) no longer compress the gains, still fast to simulate.
    return figure5_workload(scale=0.25)


@pytest.fixture(scope="module")
def params():
    return SimulationParameters()


def run(workload, strategy, waits, seed=1):
    params = SimulationParameters()
    delays = {n: UniformDelay(w) for n, w in waits.items()}
    return QueryEngine(workload.catalog, workload.qep, make_policy(strategy),
                       delays, params=params, seed=seed).run()


def sweep(workload, strategy, relation, retrievals, params):
    out = []
    for retrieval in retrievals:
        waits = slowdown_waits(workload, relation, retrieval, params)
        out.append(run(workload, strategy, waits).response_time)
    return out


# -- Figure 6 shape -----------------------------------------------------

def test_seq_grows_linearly_with_slowdown(workload, params):
    retrievals = [0.5, 1.0, 1.5, 2.0]
    seq = sweep(workload, "SEQ", "A", retrievals, params)
    assert all(b > a for a, b in zip(seq, seq[1:]))
    slope = (seq[-1] - seq[0]) / (retrievals[-1] - retrievals[0])
    assert 0.7 <= slope <= 1.3


def test_ma_roughly_constant_under_single_slowdown(workload, params):
    retrievals = [0.5, 1.2, 2.0]
    ma = sweep(workload, "MA", "A", retrievals, params)
    seq = sweep(workload, "SEQ", "A", retrievals, params)
    assert max(ma) - min(ma) < 0.4 * (max(seq) - min(seq))


def test_dse_below_seq_across_the_sweep(workload, params):
    retrievals = [0.5, 1.2, 2.0]
    for relation in ("A", "F"):
        seq = sweep(workload, "SEQ", relation, retrievals, params)
        dse = sweep(workload, "DSE", relation, retrievals, params)
        assert all(d < s for d, s in zip(dse, seq)), relation


def test_dse_gain_at_w_min(workload, params):
    """The paper's surprise: a large gain with no slowdown at all."""
    waits = {n: params.w_min for n in workload.relation_names}
    seq = run(workload, "SEQ", waits).response_time
    dse = run(workload, "DSE", waits).response_time
    assert dse < 0.88 * seq


# -- Figure 7 shape -----------------------------------------------------

def test_dse_hides_f_almost_to_the_bound(workload, params):
    waits = slowdown_waits(workload, "F", 2.0, params)
    dse = run(workload, "DSE", waits).response_time
    assert dse <= lower_bound(workload.qep, waits, params) * 1.3


def test_f_gain_exceeds_a_gain_at_high_slowdown(workload, params):
    gains = {}
    for relation in ("A", "F"):
        waits = slowdown_waits(workload, relation, 2.0, params)
        seq = run(workload, "SEQ", waits).response_time
        dse = run(workload, "DSE", waits).response_time
        gains[relation] = 1 - dse / seq
    assert gains["F"] > gains["A"]


# -- Figure 8 shape -----------------------------------------------------

def test_gain_rises_with_uniform_slowdown(workload, params):
    def gain(w):
        waits = {n: w for n in workload.relation_names}
        point_params = params.with_overrides(w_min=w)
        delays = lambda: {n: UniformDelay(w)
                          for n in workload.relation_names}
        seq = QueryEngine(workload.catalog, workload.qep, make_policy("SEQ"),
                          delays(), params=point_params, seed=1).run()
        dse = QueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                          delays(), params=point_params, seed=1).run()
        return 1 - dse.response_time / seq.response_time

    fast = gain(5e-6)
    operating = gain(20e-6)
    slow = gain(100e-6)
    assert abs(fast) < 0.05       # CPU bound: nothing to gain
    assert operating > 0.12       # the paper's 100 Mb/s point
    assert slow > operating       # rising toward the plateau
    assert slow > 0.5
    # Plateau is bounded by the structural overlap limit.
    cards = [r.cardinality for r in workload.catalog]
    assert slow <= 1 - max(cards) / sum(cards) + 0.05


# -- Section 5.4 lessons ------------------------------------------------

def test_ma_worst_at_small_delays(workload, params):
    """Lesson (Section 5.4): MA 'fails since it may generate more
    overhead than gains' when delays are small."""
    waits = {n: params.w_min for n in workload.relation_names}
    ma = run(workload, "MA", waits).response_time
    dse = run(workload, "DSE", waits).response_time
    assert ma > dse


def test_gain_present_even_for_20us_delays(workload, params):
    """Lesson (i): 'potentially an important gain even with a rather
    small query and small slowdowns (around 20µs per tuple)'."""
    waits = {n: params.w_min for n in workload.relation_names}
    waits["F"] = 40e-6  # 20 µs of added slowdown
    seq = run(workload, "SEQ", waits).response_time
    dse = run(workload, "DSE", waits).response_time
    assert dse < seq
