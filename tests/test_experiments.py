"""Tests for the experiment harness (workloads, runners, sweeps, report)."""

import pytest

from repro.config import SimulationParameters
from repro.experiments import (
    average_response_time,
    figure5_workload,
    format_table,
    run_once,
    run_slowdown_experiment,
    run_strategies,
    run_uniform_slowdown_experiment,
    slowdown_waits,
)
from repro.plan import ancestor_closure, validate_qep
from repro.wrappers import UniformDelay


@pytest.fixture
def fast_params():
    return SimulationParameters()


def delay_factory_for(workload, params):
    def factory():
        return {name: UniformDelay(params.w_min)
                for name in workload.relation_names}
    return factory


# --------------------------------------------------------------------------
# Figure 5 workload
# --------------------------------------------------------------------------

def test_figure5_structure():
    workload = figure5_workload()
    validate_qep(workload.qep)
    assert sorted(workload.relation_names) == ["A", "B", "C", "D", "E", "F"]
    # 4 medium, 2 small (paper).
    cards = {r.name: r.cardinality for r in workload.catalog}
    mediums = [n for n, c in cards.items() if 100_000 <= c <= 200_000]
    smalls = [n for n, c in cards.items() if 10_000 <= c <= 20_000]
    assert len(mediums) == 4 and len(smalls) == 2


def test_figure5_paper_constraints():
    workload = figure5_workload()
    closure = ancestor_closure(workload.qep)
    assert {"pB", "pF"} <= {name for name, anc in closure.items()
                            if "pA" in anc}
    assert all("pC" not in ancestors for name, ancestors in closure.items())


def test_figure5_result_cardinality():
    workload = figure5_workload()
    assert workload.qep.root.estimated_output_cardinality == pytest.approx(
        50_000, rel=1e-6)


def test_figure5_scaling():
    workload = figure5_workload(scale=0.1)
    assert workload.catalog.relation("A").cardinality == 10_000
    assert workload.qep.root.estimated_output_cardinality == pytest.approx(
        5000, rel=1e-6)


def test_figure5_scale_validation():
    with pytest.raises(ValueError):
        figure5_workload(scale=0)


# --------------------------------------------------------------------------
# Runner
# --------------------------------------------------------------------------

def test_run_once(tiny_fig5, fast_params):
    result = run_once(tiny_fig5.catalog, tiny_fig5.qep, "SEQ",
                      delay_factory_for(tiny_fig5, fast_params), fast_params)
    assert result.result_tuples == 1000


def test_average_response_time_repeats(tiny_fig5, fast_params):
    point = average_response_time(
        tiny_fig5.catalog, tiny_fig5.qep, "SEQ",
        delay_factory_for(tiny_fig5, fast_params), fast_params,
        repetitions=3)
    assert point.repetitions == 3
    assert point.response_time > 0


def test_run_strategies_compares(tiny_fig5, fast_params):
    measured = run_strategies(tiny_fig5.catalog, tiny_fig5.qep,
                              ["SEQ", "DSE"],
                              delay_factory_for(tiny_fig5, fast_params),
                              fast_params, repetitions=1)
    assert set(measured) == {"SEQ", "DSE"}


def test_repetitions_validation(tiny_fig5, fast_params):
    with pytest.raises(ValueError):
        average_response_time(
            tiny_fig5.catalog, tiny_fig5.qep, "SEQ",
            delay_factory_for(tiny_fig5, fast_params), fast_params,
            repetitions=0)


# --------------------------------------------------------------------------
# Slowdown sweeps (fig 6/7 machinery)
# --------------------------------------------------------------------------

def test_slowdown_waits_computation(fast_params):
    workload = figure5_workload()
    waits = slowdown_waits(workload, "A", 8.0, fast_params)
    assert waits["A"] == pytest.approx(8.0 / 100_000)
    assert waits["B"] == fast_params.w_min


def test_slowdown_waits_floor_at_w_min(fast_params):
    workload = figure5_workload()
    waits = slowdown_waits(workload, "A", 0.0, fast_params)
    assert waits["A"] == fast_params.w_min


def test_slowdown_experiment_shape(fast_params):
    workload = figure5_workload(scale=0.02)
    points = run_slowdown_experiment(workload, "F", [0.05, 0.3], fast_params,
                                     repetitions=1)
    assert len(points) == 2
    for point in points:
        assert set(point.response_times) == {"SEQ", "MA", "DSE"}
        # 1% slack: LWB is on expected delays, runs are sampled.
        assert point.lwb <= min(point.response_times.values()) * 1.01
    # SEQ grows with the slowdown.
    assert (points[1].response_times["SEQ"]
            > points[0].response_times["SEQ"])


def test_slowdown_unknown_relation_rejected(fast_params):
    workload = figure5_workload(scale=0.02)
    with pytest.raises(ValueError):
        run_slowdown_experiment(workload, "Z", [1.0], fast_params)


def test_uniform_slowdown_gain(fast_params):
    workload = figure5_workload(scale=0.02)
    points = run_uniform_slowdown_experiment(
        workload, [5e-6, 60e-6], fast_params, repetitions=1)
    assert len(points) == 2
    # At 60 us everyone is slow: DSE gains clearly (the margin is smaller
    # at 2% scale, where fixed overheads weigh more).
    assert points[1].gain > 0.1
    # Gains grow with w (paper Figure 8).
    assert points[1].gain > points[0].gain


# --------------------------------------------------------------------------
# Report formatting
# --------------------------------------------------------------------------

def test_format_table_alignment():
    text = format_table(["a", "long_header"], [["1", "2"], ["333", "4"]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["1"]])
