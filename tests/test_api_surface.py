"""API-surface tests: public helpers, renderings and exports."""

import pytest

import repro
from repro.plan.operators import JoinSpec, Operator


# --------------------------------------------------------------------------
# Package exports
# --------------------------------------------------------------------------

def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_experiments_exports_resolve():
    import repro.experiments as experiments
    for name in experiments.__all__:
        assert hasattr(experiments, name), name


def test_core_exports_resolve():
    import repro.core as core
    for name in core.__all__:
        assert hasattr(core, name), name


# --------------------------------------------------------------------------
# Plan renderings and helpers
# --------------------------------------------------------------------------

def test_qep_describe_lists_chains_and_edges(small_qep):
    text = small_qep.describe()
    for chain in small_qep.chains:
        assert chain.name in text
    assert "(blocking)" in text


def test_qep_peak_memory_estimate(small_qep):
    # Upper bound: sum of every operator's memory annotation.
    expected = sum(op.memory_bytes for chain in small_qep.chains
                   for op in chain)
    assert small_qep.peak_memory_estimate() == expected


def test_joinspec_str():
    join = JoinSpec("J1", ("R",), ("S", "T"), crossing_selectivity=0.01)
    text = str(join)
    assert "J1" in text and "build={R}" in text and "probe={S,T}" in text


def test_operator_selectivity():
    op = Operator("x", estimated_input_cardinality=100,
                  estimated_output_cardinality=25)
    assert op.selectivity() == 0.25
    assert Operator("y").selectivity() == 0.0


def test_chain_iteration_and_len(small_qep):
    chain = small_qep.chain("pS")
    assert len(list(chain)) == len(chain) == 3


def test_qep_len_and_iter(small_qep):
    assert len(small_qep) == 3
    assert [c.name for c in small_qep] == ["pR", "pS", "pT"]


# --------------------------------------------------------------------------
# Tracer / result renderings
# --------------------------------------------------------------------------

def test_trace_event_str_includes_payload(sim):
    from repro.sim import Tracer
    tracer = Tracer(sim)
    tracer.emit("cat", "hello", key=7)
    text = str(tracer.events[0])
    assert "cat" in text and "hello" in text and "'key': 7" in text


def test_execution_result_dataclass_fields(tiny_fig5):
    from repro import (QueryEngine, SimulationParameters, UniformDelay,
                       make_policy)
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in tiny_fig5.relation_names}
    result = QueryEngine(tiny_fig5.catalog, tiny_fig5.qep,
                         make_policy("SEQ"), delays, params=params,
                         seed=1).run()
    # The contract downstream tooling relies on.
    assert result.strategy == "SEQ"
    assert result.planning_phases > 0
    assert result.batches_processed > 0
    assert result.memory_peak_bytes > 0
    assert isinstance(result.reopt_opportunities, list)
    assert result.statistics is not None


def test_symmetric_result_summary(tiny_fig5):
    from repro import SimulationParameters, SymmetricHashJoinEngine, UniformDelay
    params = SimulationParameters()
    delays = {n: UniformDelay(params.w_min) for n in tiny_fig5.relation_names}
    result = SymmetricHashJoinEngine(tiny_fig5.catalog, tiny_fig5.tree,
                                     delays, params=params, seed=1).run()
    text = result.summary()
    assert "DPHJ" in text and "MB" in text
