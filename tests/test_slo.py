"""SLO specs and the multi-window burn-rate alert state machine.

The tracker never reads a clock, so the acceptance scenario — a latency
breach fires the fast window first and the slow window only after the
burn persists — is pinned tick by tick with synthetic timestamps.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.service.slo import (
    ALL_TENANTS,
    FAST_BURN_THRESHOLD,
    SLOW_BURN_THRESHOLD,
    SLOSpec,
    SLOTracker,
    parse_slo_specs,
)


# --------------------------------------------------------------------------
# Spec grammar
# --------------------------------------------------------------------------

def test_spec_parses_the_canonical_form():
    spec = SLOSpec.parse("gold:p99<=30s@99.5%")
    assert spec.tenant == "gold"
    assert spec.metric == "p99"
    assert spec.threshold_s == 30.0
    assert spec.target == pytest.approx(0.995)
    assert spec.error_budget == pytest.approx(0.005)
    assert spec.name == "gold:p99<=30s@99.5%"


def test_spec_units_and_wildcard():
    assert SLOSpec.parse("gold:latency<=250ms@99%").threshold_s \
        == pytest.approx(0.25)
    spec = SLOSpec.parse("*:p50<=1m@90%")
    assert spec.tenant == ALL_TENANTS
    assert spec.threshold_s == 60.0
    assert spec.matches("anyone") and spec.matches(None)
    narrow = SLOSpec.parse("gold:p99<=1s@99%")
    assert narrow.matches("gold") and not narrow.matches("silver")


def test_spec_name_round_trips():
    for text in ("gold:p99<=30s@99.5%", "gold:latency<=250ms@99%",
                 "*:p50<=1m@90%"):
        spec = SLOSpec.parse(text)
        assert SLOSpec.parse(spec.name) == spec


def test_good_is_at_or_under_threshold():
    spec = SLOSpec.parse("gold:p99<=1s@99%")
    assert spec.good(1.0) and spec.good(0.1) and not spec.good(1.001)


@pytest.mark.parametrize("text", [
    "no-colon<=1s@99%",
    "gold:p42<=1s@99%",          # unknown metric
    "gold:p99<=0s@99%",          # zero threshold
    "gold:p99<=1s@100%",         # zero error budget
    "gold:p99<=1s@0%",
    "gold:p99<=1s@99",           # missing %
    "gold:p99>=1s@99%",          # wrong comparator
])
def test_bad_specs_are_rejected(text):
    with pytest.raises(ConfigurationError):
        SLOSpec.parse(text)


def test_parse_slo_specs_rejects_duplicates_after_normalisation():
    # 30000ms and 30s normalise to the same canonical objective.
    with pytest.raises(ConfigurationError):
        parse_slo_specs(["gold:p99<=30s@99.5%", "gold:p99<=30000ms@99.5%"])
    specs = parse_slo_specs(["gold:p99<=30s@99.5%", "silver:p99<=60s@99%"])
    assert [spec.tenant for spec in specs] == ["gold", "silver"]


def test_tracker_configuration_is_validated():
    spec = SLOSpec.parse("gold:p99<=1s@99%")
    with pytest.raises(ConfigurationError):
        SLOTracker([])
    with pytest.raises(ConfigurationError):
        SLOTracker([spec], fast_window_s=600.0, slow_window_s=600.0)
    with pytest.raises(ConfigurationError):
        SLOTracker([spec], capacity=0)


# --------------------------------------------------------------------------
# Burn-rate alert sequencing (the acceptance scenario)
# --------------------------------------------------------------------------

def _breach_scenario():
    """One objective, an hour of good traffic, then a hard breach.

    Returns the tracker primed with 300 good events at 10s spacing over
    [0, 3000).  Budget is 1% (target 99%), so with defaults the fast
    window (300s, x14.4) trips at >= 14.4% bad in-window and the slow
    window (3600s, x6.0) at >= 6% bad in-window.
    """
    spec = SLOSpec.parse("gold:p99<=0.1s@99%")
    tracker = SLOTracker([spec])
    for i in range(300):
        tracker.observe("gold", 0.01, at=10.0 * i)
    assert tracker.evaluate(2990.0) == []
    return tracker


def test_fast_window_fires_before_slow_window():
    tracker = _breach_scenario()
    fired = []  # (tick, window, state)
    for k in range(1, 21):
        now = 3000.0 + 10.0 * (k - 1)
        tracker.observe("gold", 1.0, at=now)  # breach: 1.0s >> 0.1s
        for transition in tracker.evaluate(now):
            fired.append((now, transition["window"], transition["state"]))
    # Fast fires on the 5th bad event (5/31 in-window = burn 16.1 over
    # threshold 14.4); slow only on the 20th (20/320 = burn 6.25 over
    # 6.0) -- 150 virtual seconds later.
    assert fired == [(3040.0, "fast", "firing"), (3190.0, "slow", "firing")]

    status = tracker.status(3190.0)[0]
    assert status["alerting"] is True
    assert status["windows"]["fast"]["firing"] is True
    assert status["windows"]["slow"]["firing"] is True
    assert status["windows"]["fast"]["burn_rate"] > FAST_BURN_THRESHOLD
    assert status["windows"]["slow"]["burn_rate"] > SLOW_BURN_THRESHOLD
    assert tracker.alerting_tenants() == {"gold": True}


def test_alerts_resolve_once_the_burn_subsides():
    tracker = _breach_scenario()
    for k in range(20):
        now = 3000.0 + 10.0 * k
        tracker.observe("gold", 1.0, at=now)
        tracker.evaluate(now)
    # Recovery: good traffic resumes; the bad events age out of the
    # fast window and get diluted in the slow one.
    for i in range(31):
        tracker.observe("gold", 0.01, at=3200.0 + 10.0 * i)
    transitions = tracker.evaluate(3500.0)
    assert [(t["window"], t["state"]) for t in transitions] \
        == [("fast", "resolved"), ("slow", "resolved")]
    status = tracker.status(3500.0)[0]
    assert status["alerting"] is False
    assert status["windows"]["fast"]["fired_total"] == 1
    assert status["windows"]["slow"]["fired_total"] == 1
    # Overall compliance still reflects the 20 bad events forever.
    assert status["bad"] == 20
    assert status["events"] == 300 + 20 + 31
    assert status["compliance"] == pytest.approx(1.0 - 20 / 351)


def test_transition_payload_is_json_ready():
    tracker = _breach_scenario()
    transition = None
    for k in range(10):
        now = 3000.0 + 10.0 * k
        tracker.observe("gold", 1.0, at=now)
        hits = tracker.evaluate(now)
        if hits:
            transition = hits[0]
            break
    assert transition is not None
    assert transition["objective"] == "gold:p99<=0.1s@99%"
    assert transition["tenant"] == "gold"
    assert transition["window"] == "fast"
    assert transition["window_s"] == 300.0
    assert transition["state"] == "firing"
    assert transition["burn_rate"] >= transition["burn_threshold"]
    assert transition["bad"] >= 1


def test_wildcard_objective_sees_all_tenants():
    tracker = SLOTracker([SLOSpec.parse("*:p99<=0.1s@99%")])
    tracker.observe("gold", 0.01, at=1.0)
    tracker.observe("silver", 5.0, at=2.0)
    status = tracker.status(3.0)[0]
    assert status["events"] == 2
    assert status["bad"] == 1
    assert tracker.alerting_tenants() == {"*": False}


def test_objectives_are_isolated_per_tenant():
    tracker = SLOTracker([SLOSpec.parse("gold:p99<=0.1s@99%"),
                          SLOSpec.parse("silver:p99<=0.1s@99%")])
    for i in range(10):
        tracker.observe("gold", 5.0, at=float(i))      # gold is breaching
        tracker.observe("silver", 0.01, at=float(i))   # silver is fine
    transitions = tracker.evaluate(10.0)
    assert {t["tenant"] for t in transitions} == {"gold"}
    firing = tracker.alerting_tenants()
    assert firing["gold"] is True
    assert firing["silver"] is False
