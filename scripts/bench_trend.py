#!/usr/bin/env python
"""Fold every committed BENCH_PR*.json into a cross-PR trajectory report.

Usage:
    PYTHONPATH=src python scripts/bench_trend.py [DIR]

DIR defaults to the repository root (where the BENCH_PR*.json reports
are committed).  Exit code 0 with the table on stdout; exit 2 when a
report is unreadable.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.common.errors import ConfigurationError  # noqa: E402
from repro.parallel.trend import find_bench_reports, format_trend  # noqa: E402


def main(argv: list[str]) -> int:
    directory = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1]
    try:
        print(format_trend(find_bench_reports(directory)))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
