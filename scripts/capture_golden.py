#!/usr/bin/env python
"""Capture golden `ExecutionResult` digests for the regression harness.

Runs SEQ / MA / DSE on three seeded workloads and writes one JSON file
per workload into ``tests/golden/``.  The digests pin down everything a
scheduling-relevant refactor could disturb: response time, tuple counts,
stall attribution, per-phase counters and the full decision audit log.

``tests/test_golden_snapshots.py`` re-runs the same configurations and
asserts bit-identical digests, so any change to virtual-time event
ordering is caught immediately.  Regenerate (only when a behaviour
change is intended and understood) with::

    PYTHONPATH=src python scripts/capture_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.config import SimulationParameters
from repro.core.engine import QueryEngine
from repro.core.strategies import make_policy
from repro.experiments import figure5_workload
from repro.wrappers.delays import UniformDelay

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
STRATEGIES = ("SEQ", "MA", "DSE")


def workload_configs() -> dict[str, dict]:
    """The three pinned scenarios: name -> config."""
    return {
        # Fast-and-even: no degradations expected, pins the happy path.
        "baseline": dict(scale=0.25, seed=1, slow={}, overrides={}),
        # One starved source: exercises degrade / mf-stop / cf-create.
        "slow_a": dict(scale=0.25, seed=2, slow={"A": 12.0}, overrides={}),
        # Slowed F, a tight (but feasible) memory budget and a cardinality
        # misestimate: memory splits + degradation + reopt detection.
        "tight_memory": dict(
            scale=0.35, seed=3, slow={"F": 8.0}, errors={"J1": 3.0},
            overrides=dict(query_memory_bytes=6_000_000)),
    }


def run_digest(name: str, config: dict) -> dict:
    workload = figure5_workload(scale=config["scale"])
    qep = workload.qep
    if config.get("errors"):
        from repro.plan import build_qep
        qep = build_qep(workload.catalog, workload.tree,
                        actual_output_factors=config["errors"])
    digests = {}
    for strategy in STRATEGIES:
        params = SimulationParameters().with_overrides(
            telemetry_enabled=True, **config["overrides"])
        waits = {rel: params.w_min * config["slow"].get(rel, 1.0)
                 for rel in workload.relation_names}
        delays = {rel: UniformDelay(wait) for rel, wait in waits.items()}
        engine = QueryEngine(workload.catalog, qep,
                             make_policy(strategy), delays, params=params,
                             seed=config["seed"])
        result = engine.run()
        digests[strategy] = {
            "response_time": result.response_time,
            "result_tuples": result.result_tuples,
            "time_to_first_tuple": result.time_to_first_tuple,
            "planning_phases": result.planning_phases,
            "context_switches": result.context_switches,
            "batches_processed": result.batches_processed,
            "stall_time": result.stall_time,
            "degradations": result.degradations,
            "memory_splits": result.memory_splits,
            "timeouts": result.timeouts,
            "cpu_busy_time": result.cpu_busy_time,
            "disk_ios": result.disk_ios,
            "tuples_spilled": result.tuples_spilled,
            "tuples_reloaded": result.tuples_reloaded,
            "stall_breakdown": result.stall_by_cause(),
            "decisions": [record.to_dict() for record in result.decisions],
        }
    return {"workload": name, "config": {k: v for k, v in config.items()},
            "strategies": digests}


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, config in workload_configs().items():
        digest = run_digest(name, config)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(digest, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
