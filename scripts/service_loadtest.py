#!/usr/bin/env python
"""Drive the always-on service with a sustained open-loop arrival stream.

Usage:
    PYTHONPATH=src python scripts/service_loadtest.py \
        [--submissions N] [--rate QPS] [--concurrency N] [--scale S] \
        [--strategy NAME] [--admission fifo|priority|none] [--seed N] \
        [--workers N] [--json PATH]

Wraps :func:`repro.service.loadtest.run_loadtest`: one in-process
:class:`~repro.service.service.QueryService` with the default
gold/silver/bronze tenant mix, submissions arriving on a fixed schedule
(open loop — the arrival process does not slow down when the service
falls behind), the pool sized to ``concurrency`` simultaneous leases so
the backlog queues in the admission controller.  Prints a human summary
and optionally writes the full JSON report (the shape consumed by the
``service_loadtest`` bench cases behind ``BENCH_PR10.json``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.common.errors import ConfigurationError  # noqa: E402
from repro.service.loadtest import run_loadtest  # noqa: E402


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="sustained-arrival load test for `repro serve`")
    parser.add_argument("--submissions", type=int, default=10_000)
    parser.add_argument("--rate", type=float, default=150.0,
                        help="arrival rate in submissions/second "
                             "(default 150)")
    parser.add_argument("--concurrency", type=int, default=64,
                        help="pool size in simultaneous leases (default 64)")
    parser.add_argument("--scale", type=float, default=0.0005)
    parser.add_argument("--wait-us", type=float, default=50.0)
    parser.add_argument("--jitter", type=float, default=1.0)
    parser.add_argument("--strategy", default="DSE")
    parser.add_argument("--admission", default="priority",
                        choices=["fifo", "priority", "none"])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes in the execution plane "
                             "(default 1 = in-process backend; >1 runs "
                             "the sharded work-stealing pool)")
    parser.add_argument("--archive-dir", metavar="DIR", default=None,
                        help="write the durable telemetry archive under DIR "
                             "during the run (measures the archive's cost "
                             "under load; query it with `repro history`)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full JSON report to PATH")
    args = parser.parse_args(argv[1:])

    def progress(submitted: int, completed: int) -> None:
        print(f"  submitted {submitted:>6}  completed {completed:>6}",
              flush=True)

    print(f"service loadtest: {args.submissions} submissions at "
          f"{args.rate:g}/s, {args.concurrency} leases, "
          f"{args.strategy} scale={args.scale:g}", flush=True)
    try:
        report = asyncio.run(run_loadtest(
            submissions=args.submissions, rate=args.rate,
            scale=args.scale, wait_us=args.wait_us, jitter=args.jitter,
            strategy=args.strategy, concurrency=args.concurrency,
            seed=args.seed, admission=args.admission,
            archive_dir=args.archive_dir, workers=args.workers,
            on_progress=progress))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    latency, admission = report["latency"], report["admission"]
    print(f"completed {report['completed']}/{report['submitted']} in "
          f"{report['wall_s']:.1f}s -> {report['service_qps']:.1f} q/s")
    print(f"latency   p50 {1e3 * latency['p50_s']:.1f}ms  "
          f"p95 {1e3 * latency['p95_s']:.1f}ms  "
          f"p99 {1e3 * latency['p99_s']:.1f}ms  "
          f"max {latency['max_s']:.2f}s")
    print(f"admission {admission['queued']} queued  "
          f"mean wait {1e3 * admission['mean_wait_s']:.1f}ms  "
          f"p99 {1e3 * admission['p99_wait_s']:.1f}ms")
    for tenant in report["tenants"]:
        print(f"  {tenant['name']:<10} done {tenant['completed']:>6}  "
              f"wait {1e3 * tenant['mean_wait_s']:>7.1f}ms  "
              f"latency {1e3 * tenant['mean_latency_s']:>7.1f}ms")
    workers = report.get("workers")
    if workers:
        for row in workers:
            print(f"  worker {row['id']}  done {row['completed']:>6}  "
                  f"failed {row['failed']:>3}  steals {row['steals']:>4}  "
                  f"restarts {row['restarts']}")
        print(f"steals    {report['steals']} total across the fleet")
    archive = report.get("archive")
    if archive is not None:
        print(f"archive   {archive['records_written']} records written  "
              f"{archive['segments_sealed']} sealed  "
              f"{archive['dropped_total']} dropped")
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
