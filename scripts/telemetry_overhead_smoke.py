#!/usr/bin/env python
"""Smoke check: disabled telemetry must be (near-)free.

Runs the smallest Figure 6 point (retrieval time 2.0 s for relation A,
full-scale workload, one repetition) with telemetry disabled and with it
fully enabled, taking the best of a few wall-clock timings each.  The
disabled path goes through the same instrumented code but every metric
resolves to the shared no-op ``NULL_METRIC``, so it must not run
measurably slower than the enabled path — the check fails if the
disabled run exceeds enabled * 1.05 plus a small absolute grace for
timer noise.

Also asserts the structural guarantees of the disabled path: the
registry hands out the null metric without registering it, the result
carries no metrics object, and no samples are collected.

Exit status 0 on success; used as a CI step.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import QueryEngine, UniformDelay, make_policy
from repro.config import SimulationParameters
from repro.experiments import figure5_workload, run_slowdown_experiment
from repro.observability import NULL_METRIC, MetricsRegistry

ROUNDS = 3
RETRIEVAL_TIME = 2.0  # the smallest Figure 6 point


def timed_sweep(workload, params) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        run_slowdown_experiment(workload, "A", [RETRIEVAL_TIME], params,
                                repetitions=1)
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    disabled_registry = MetricsRegistry(enabled=False)
    assert disabled_registry.counter("smoke") is NULL_METRIC
    assert len(disabled_registry) == 0

    workload = figure5_workload()
    disabled = timed_sweep(workload, SimulationParameters())
    enabled = timed_sweep(workload, SimulationParameters(
        telemetry_enabled=True, telemetry_sample_interval=0.05))

    params = SimulationParameters()
    small = figure5_workload(scale=0.05)
    delays = {name: UniformDelay(params.w_min)
              for name in small.relation_names}
    result = QueryEngine(small.catalog, small.qep, make_policy("DSE"),
                         delays, params=params, seed=1).run()
    assert result.metrics is None, "disabled run must not carry a registry"
    assert result.samples == [], "disabled run must not collect samples"

    budget = enabled * 1.05 + 0.05  # 5% relative + 50 ms timer grace
    print(f"disabled telemetry: {disabled:.3f} s (best of {ROUNDS})")
    print(f"enabled  telemetry: {enabled:.3f} s (best of {ROUNDS})")
    print(f"budget for disabled path: {budget:.3f} s")
    if disabled > budget:
        print("FAIL: disabled-telemetry path is measurably slower than "
              "the enabled path — the no-op instrumentation is not free")
        return 1
    print("OK: disabled-telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
