#!/usr/bin/env python
"""Smoke check: disabled telemetry must be (near-)free.

Runs the smallest Figure 6 point (retrieval time 2.0 s for relation A,
full-scale workload, one repetition) with telemetry disabled and with it
fully enabled, taking the best of a few wall-clock timings each.  The
disabled path goes through the same instrumented code but every metric
resolves to the shared no-op ``NULL_METRIC``, so it must not run
measurably slower than the enabled path — the check fails if the
disabled run exceeds enabled * 1.05 plus a small absolute grace for
timer noise.

Also asserts the structural guarantees of the disabled path: the
registry hands out the null metric without registering it, the result
carries no metrics object, and no samples are collected.

A span section repeats the check for the causal span recorder with a
*tighter* budget: spans ride the compiled DQP hook table, so the
spans-disabled batch loop (one falsy-tuple check per batch) must stay
within 1% of the spans-enabled loop plus timer grace — and the compiled
hook table itself must be the shared ``NULL_HOOKS`` no-op when every
consumer is off.

A second section repeats the comparison on the wall-clock asyncio
backend: one small live run with telemetry (and the wall-clock sampler)
fully enabled versus one with telemetry disabled.  Live runs are
dominated by real source delays, so the budget is the same shape —
the instrumented run must not beat the uninstrumented one by more than
noise, i.e. disabled <= enabled * 1.05 + grace.

Exit status 0 on success; used as a CI step.
"""

import asyncio
import sys
import time
import zlib
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import QueryEngine, UniformDelay, make_policy
from repro.config import SimulationParameters
from repro.experiments import figure5_workload, run_slowdown_experiment
from repro.observability import NULL_HOOKS, NULL_METRIC, MetricsRegistry

ROUNDS = 3
RETRIEVAL_TIME = 2.0  # the smallest Figure 6 point
LIVE_SCALE = 0.02     # live rounds are wall-clock; keep them tiny
DQP_SCALE = 0.2       # the span-overhead rounds: one batch-loop-bound run


def timed_sweep(workload, params) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        run_slowdown_experiment(workload, "A", [RETRIEVAL_TIME], params,
                                repetitions=1)
        best = min(best, time.perf_counter() - started)
    return best


def timed_dqp_run(params):
    """Best wall-clock of ROUNDS single DSE runs (batch-loop bound)."""
    workload = figure5_workload(scale=DQP_SCALE)
    best, result = float("inf"), None
    for _ in range(ROUNDS):
        delays = {name: UniformDelay(params.w_min)
                  for name in workload.relation_names}
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy("DSE"), delays, params=params,
                             seed=1)
        started = time.perf_counter()
        result = engine.run()
        best = min(best, time.perf_counter() - started)
    return best, result


def timed_live_run(params) -> float:
    """Best wall-clock of ROUNDS small live (asyncio-backend) runs."""
    from repro.exec.live import LiveQueryEngine, jittered_batches

    workload = figure5_workload(scale=LIVE_SCALE)
    cards = {name: workload.catalog.relation(name).cardinality
             for name in workload.relation_names}

    def sources():
        def factory(rel):
            def make():
                rng = np.random.default_rng([1, zlib.crc32(rel.encode())])
                return jittered_batches(cards[rel],
                                        params.tuples_per_message,
                                        100e-6, rng, jitter=1.0)
            return make
        return {rel: factory(rel) for rel in workload.relation_names}

    best = float("inf")
    for _ in range(ROUNDS):
        engine = LiveQueryEngine(workload.catalog, workload.qep,
                                 make_policy("DSE"), sources(),
                                 params=params, seed=1)
        started = time.perf_counter()
        result = asyncio.run(engine.run())
        best = min(best, time.perf_counter() - started)
        if params.telemetry_enabled:
            assert result.metrics is not None
            if params.telemetry_sample_interval > 0:
                assert result.samples, \
                    "wall-clock sampler produced no samples"
        else:
            assert result.metrics is None
            assert result.samples == []
    return best


def main() -> int:
    disabled_registry = MetricsRegistry(enabled=False)
    assert disabled_registry.counter("smoke") is NULL_METRIC
    assert len(disabled_registry) == 0

    workload = figure5_workload()
    disabled = timed_sweep(workload, SimulationParameters())
    enabled = timed_sweep(workload, SimulationParameters(
        telemetry_enabled=True, telemetry_sample_interval=0.05))

    params = SimulationParameters()
    small = figure5_workload(scale=0.05)
    delays = {name: UniformDelay(params.w_min)
              for name in small.relation_names}
    result = QueryEngine(small.catalog, small.qep, make_policy("DSE"),
                         delays, params=params, seed=1).run()
    assert result.metrics is None, "disabled run must not carry a registry"
    assert result.samples == [], "disabled run must not collect samples"

    budget = enabled * 1.05 + 0.05  # 5% relative + 50 ms timer grace
    print(f"disabled telemetry: {disabled:.3f} s (best of {ROUNDS})")
    print(f"enabled  telemetry: {enabled:.3f} s (best of {ROUNDS})")
    print(f"budget for disabled path: {budget:.3f} s")
    if disabled > budget:
        print("FAIL: disabled-telemetry path is measurably slower than "
              "the enabled path — the no-op instrumentation is not free")
        return 1
    print("OK: disabled-telemetry overhead within budget")

    # Spans ride the compiled hook table: with every consumer off the
    # table is the shared no-op and the batch loop pays one falsy check.
    assert not NULL_HOOKS.enabled
    assert NULL_HOOKS.batch == () and NULL_HOOKS.stall == ()
    spans_off, off_result = timed_dqp_run(SimulationParameters())
    assert off_result.spans is None, "spans-off run must not carry spans"
    spans_on, on_result = timed_dqp_run(
        SimulationParameters(telemetry_spans=True))
    assert on_result.spans, "spans-on run recorded no spans"
    assert on_result.response_time == off_result.response_time, \
        "span recording perturbed the simulation"
    spans_budget = spans_on * 1.01 + 0.05  # 1% relative + timer grace
    print(f"spans disabled: {spans_off:.3f} s (best of {ROUNDS})")
    print(f"spans enabled : {spans_on:.3f} s (best of {ROUNDS}, "
          f"{len(on_result.spans)} spans)")
    print(f"budget for spans-disabled path: {spans_budget:.3f} s")
    if spans_off > spans_budget:
        print("FAIL: the spans-disabled DQP batch loop is more than 1% "
              "slower than the recording loop — the compiled hook "
              "table's off path is not free")
        return 1
    print("OK: spans-disabled batch-loop overhead within 1%")

    live_disabled = timed_live_run(SimulationParameters())
    live_enabled = timed_live_run(SimulationParameters(
        telemetry_enabled=True, telemetry_sample_interval=0.05))
    # Live rounds are wall-clock and source-delay dominated; same shape
    # of budget, with a larger absolute grace for scheduler jitter.
    live_budget = live_enabled * 1.05 + 0.25
    print(f"live disabled telemetry: {live_disabled:.3f} s "
          f"(best of {ROUNDS})")
    print(f"live enabled  telemetry: {live_enabled:.3f} s "
          f"(best of {ROUNDS})")
    print(f"budget for live disabled path: {live_budget:.3f} s")
    if live_disabled > live_budget:
        print("FAIL: disabled-telemetry live run is measurably slower "
              "than the instrumented one on the wall-clock backend")
        return 1
    print("OK: live-backend disabled-telemetry overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
