#!/usr/bin/env python
"""Scenario: dynamic scheduling against *real* asynchronous sources.

Everything else in this repository runs in deterministic virtual time.
This demo runs the same unchanged DQO → DQS → DQP stack on the
wall-clock :class:`~repro.exec.aio.AsyncioKernel`: six asyncio tasks
ship the Figure 5 relations in message-sized batches with real, jittery
sleeps, and one source (A) is ten times slower than the rest — the
paper's "overloaded remote server".

SEQ consumes sources in plan order, so the window protocol blocks every
producer whose consumer fragment is not yet schedulable; their remaining
retrieval time serializes behind the slow source.  DSE degrades the
blocked chains, keeps draining every producer into temps, and finishes
close to the slow source's own retrieval time.  Expect DSE to beat SEQ
by roughly 25-35% wall-clock (exact numbers vary run to run — that is
the point of a live backend).

Takes ~10 seconds of real time.  Run with::

    PYTHONPATH=src python examples/live_sources_demo.py
"""

import asyncio
import time
import zlib

import numpy as np

from repro import SimulationParameters, make_policy
from repro.exec.live import LiveQueryEngine, jittered_batches
from repro.experiments import figure5_workload, format_table

SCALE = 0.02          # live runs are wall-clock: keep the data small
SEED = 7
MEAN_WAIT = 200e-6    # per-tuple wait of a healthy source (seconds)
SLOW = {"A": 10.0}    # the overloaded source


def make_sources(workload, params):
    """A fresh factory per relation (one engine run consumes a stream)."""
    cards = {name: workload.catalog.relation(name).cardinality
             for name in workload.relation_names}

    def factory(rel):
        def make():
            # Seeded per relation: every strategy faces the same delays.
            rng = np.random.default_rng([SEED, zlib.crc32(rel.encode())])
            return jittered_batches(cards[rel], params.tuples_per_message,
                                    MEAN_WAIT * SLOW.get(rel, 1.0), rng)
        return make

    return {rel: factory(rel) for rel in workload.relation_names}


def main() -> None:
    workload = figure5_workload(scale=SCALE)
    params = SimulationParameters().with_overrides(telemetry_enabled=True)

    rows = []
    results = {}
    for strategy in ["SEQ", "DSE"]:
        engine = LiveQueryEngine(workload.catalog, workload.qep,
                                 make_policy(strategy),
                                 make_sources(workload, params),
                                 params=params, seed=SEED)
        started = time.perf_counter()
        result = asyncio.run(engine.run())
        wall = time.perf_counter() - started
        results[strategy] = result
        rows.append([strategy, f"{result.response_time:.3f}", f"{wall:.3f}",
                     f"{result.stall_time:.3f}", str(result.degradations),
                     str(result.result_tuples)])

    print(format_table(
        ["strategy", "response (s)", "wall (s)", "stalled (s)",
         "degradations", "tuples"],
        rows, title=f"Live asyncio sources, {SLOW} slowed "
                    f"(scale {SCALE}, mean wait {MEAN_WAIT * 1e6:.0f}µs)"))

    print("\nWhere each strategy waited (stall attribution):")
    for strategy, result in results.items():
        top = ", ".join(f"{cause} {seconds:.2f}s" for cause, seconds
                        in list(result.stall_by_cause().items())[:4])
        print(f"  {strategy}: {top}")

    seq, dse = results["SEQ"], results["DSE"]
    gain = 100.0 * (1 - dse.response_time / seq.response_time)
    print(f"\nDSE finished {gain:.1f}% faster than SEQ "
          f"({seq.response_time:.3f}s -> {dse.response_time:.3f}s).")
    print("DSE degraded the chains blocked behind the slow source, so the")
    print("window protocol never paused the healthy producers — their")
    print("retrieval overlapped A's instead of serializing after it.")


if __name__ == "__main__":
    main()
