#!/usr/bin/env python
"""Scenario: define your own data integration query from scratch.

Models a small federated analytics setup: four wrapped sources (orders,
customers, products, clickstream) with hand-specified cardinalities and
join selectivities.  The query is optimized by the classical
dynamic-programming optimizer, macro-expanded into a QEP, and executed
with dynamic scheduling while the clickstream source trickles slowly.
"""

from repro import (
    Catalog,
    CostModel,
    DynamicProgrammingOptimizer,
    JoinStatistics,
    Query,
    QueryEngine,
    Relation,
    SimulationParameters,
    UniformDelay,
    build_qep,
    make_policy,
)


def main() -> None:
    # 1. Describe the sources (content-free: cardinalities only).
    statistics = JoinStatistics({
        ("orders", "customers"): 1 / 40_000,     # FK join
        ("orders", "products"): 1 / 5_000,       # FK join
        ("customers", "clicks"): 1 / 40_000,     # sessions per customer
    })
    catalog = Catalog([
        Relation("orders", 120_000),
        Relation("customers", 40_000),
        Relation("products", 5_000),
        Relation("clicks", 150_000),
    ], statistics)

    # 2. Optimize the join order (bushy DP, as in the paper).
    query = Query(catalog, ["orders", "customers", "products", "clicks"])
    optimizer = DynamicProgrammingOptimizer(CostModel(catalog))
    tree = optimizer.optimize(query)
    print("Optimized join tree:", tree.render())
    print("Estimated result size:",
          f"{catalog.estimate_cardinality(query.relation_names):,.0f} tuples")

    # 3. Macro-expand into a QEP and show the pipeline chains.
    qep = build_qep(catalog, tree)
    print("\nQuery execution plan:")
    print(qep.describe())

    # 4. Execute: the clickstream wrapper is slow (an analytics appliance
    #    under load), everything else is at network speed.
    params = SimulationParameters()
    delays = {name: UniformDelay(params.w_min)
              for name in query.relation_names}
    delays["clicks"] = UniformDelay(8 * params.w_min)

    print("\nExecution (clicks source 8x slower):")
    for strategy in ["SEQ", "DSE"]:
        fresh = {name: UniformDelay(model.w) for name, model in delays.items()}
        engine = QueryEngine(catalog, qep, make_policy(strategy), fresh,
                             params=params, seed=7)
        result = engine.run()
        print(f"  {result.summary()}")


if __name__ == "__main__":
    main()
