#!/usr/bin/env python
"""Scenario: one overloaded remote source (the paper's motivating case).

A mediator integrates six sources; one of them (F, the largest) sits on
an overloaded server and delivers tuples ten times slower than the rest.
The classical iterator engine (SEQ) stalls on it; Materialize-All (MA)
hides the delay but pays full materialization I/O for *every* relation;
the paper's dynamic scheduling (DSE) materializes exactly the blocked
slow source, partially, and overlaps its delay with useful work.

The script compares all three against the analytic lower bound and shows
the DSE scheduler's decisions from the execution trace.
"""

from repro import (
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    lower_bound,
    make_policy,
)
from repro.experiments import figure5_workload, format_table


def main() -> None:
    workload = figure5_workload()
    params = SimulationParameters()

    waits = {name: params.w_min for name in workload.relation_names}
    waits["F"] = 10 * params.w_min  # the overloaded source

    def delays():
        return {name: UniformDelay(wait) for name, wait in waits.items()}

    rows = []
    traced = None
    for strategy in ["SEQ", "MA", "DSE"]:
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy(strategy), delays(),
                             params=params, seed=1, trace=(strategy == "DSE"))
        result = engine.run()
        if strategy == "DSE":
            traced = result
        rows.append([strategy, f"{result.response_time:.3f}",
                     f"{result.stall_time:.3f}",
                     f"{result.cpu_utilization:.0%}",
                     str(result.degradations),
                     f"{result.tuples_spilled:,}"])
    bound = lower_bound(workload.qep, waits, params)
    rows.append(["LWB", f"{bound:.3f}", "-", "-", "-", "-"])

    print(format_table(
        ["strategy", "response (s)", "stall (s)", "CPU", "degradations",
         "spilled tuples"],
        rows, title="Six sources, F ten times slower (2 ms -> 200 µs/tuple)"))

    print("\nDSE scheduler decisions (from the execution trace):")
    for category in ["degrade", "mf-stop", "cf-create", "chain-complete"]:
        for event in traced.tracer.filter(category):
            print(f"  {event}")


if __name__ == "__main__":
    main()
