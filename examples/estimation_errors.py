#!/usr/bin/env python
"""Scenario: the optimizer's estimates are wrong (Section 3.1 / [9]).

Autonomous sources make selectivity statistics unreliable: here the
mediator's optimizer believed A ⋈ B would produce 50 K tuples while the
sources really produce 150 K.  The runtime-statistics module observes
the true size the moment the blocking edge completes; the DQO then swaps
the build/probe sides of the still-pending joins whose orientation the
error invalidated — putting the genuinely smaller inputs in memory.
"""

from repro import (
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    build_qep,
    make_policy,
)
from repro.experiments import figure5_workload, format_table


def main() -> None:
    workload = figure5_workload(scale=0.5)
    qep = build_qep(workload.catalog, workload.tree,
                    actual_output_factors={"J1": 3.0})

    print("Injected error: J1 = A ⋈ B actually produces 3x the estimate.\n")
    # Note the interaction with scheduling aggressiveness: SEQ leaves
    # downstream chains untouched for a long time, so the DQO finds open
    # swap windows; DSE touches (degrades) blocked chains early, which
    # closes them — its scheduling already absorbs what re-optimization
    # would have bought.
    rows = []
    for strategy in ("SEQ", "DSE"):
        for reopt in (False, True):
            params = SimulationParameters().with_overrides(
                enable_reoptimization=reopt)
            delays = {name: UniformDelay(params.w_min)
                      for name in workload.relation_names}
            engine = QueryEngine(workload.catalog, qep,
                                 make_policy(strategy), delays,
                                 params=params, seed=1, trace=True)
            result = engine.run()
            rows.append([strategy, "on" if reopt else "off",
                         f"{result.response_time:.3f}",
                         f"{result.memory_peak_bytes / 1e6:.2f}",
                         ",".join(result.reopt_opportunities) or "-",
                         ",".join(result.reopt_swaps) or "-",
                         f"{result.result_tuples:,}"])
            if strategy == "SEQ" and reopt:
                print("DQO trace (SEQ, re-optimization on):")
                for category in ["reopt-opportunity", "reopt-swap"]:
                    for event in result.tracer.filter(category):
                        print(f"  {event}")
                print()

    print(format_table(
        ["strategy", "reopt", "response (s)", "peak mem (MB)", "detected",
         "swapped", "result tuples"],
        rows, title="A 3x misestimate on J1: detect vs act"))


if __name__ == "__main__":
    main()
