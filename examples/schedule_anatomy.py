#!/usr/bin/env python
"""Scenario: dissecting a dynamic schedule.

Runs SEQ and DSE with F slowed, then prints (a) a side-by-side anatomy
of where each strategy's response time went, and (b) DSE's fragment
timeline — the concrete schedule the DQS produced: which pipeline chains
ran when, which materialization fragments absorbed the slow source, and
when the complement fragments replayed the temp.
"""

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.experiments import (
    comparison_report,
    figure5_workload,
    slowdown_waits,
)


def main() -> None:
    workload = figure5_workload(scale=0.5)
    params = SimulationParameters()
    waits = slowdown_waits(workload, "F", 4.0, params)

    results = {}
    for strategy in ("SEQ", "DSE"):
        delays = {name: UniformDelay(wait) for name, wait in waits.items()}
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy(strategy), delays, params=params,
                             seed=1)
        results[strategy] = engine.run()

    print(comparison_report(
        results, title="Where the response time goes (F slowed to 4 s)"))

    print("\nDSE fragment timeline (seconds of virtual time):")
    print(results["DSE"].render_timeline())


if __name__ == "__main__":
    main()
