#!/usr/bin/env python
"""Tour of the telemetry layer on one DSE run.

Runs the paper's Figure 5 query with source A ten times slower than the
rest and telemetry enabled, then walks through every channel the run
exposes:

* the stall-attribution breakdown (which cause accounts for each second
  the DQP sat idle, summing exactly to ``result.stall_time``);
* the scheduler decision audit log (degradations, MF stops, CF
  creations, memory splits) with the numbers behind each decision --
  critical degree, bmi vs bmt, memory in use;
* a few counters/gauges/histograms from the metrics registry;
* the periodic time-series samples of memory occupancy and queue depth.

Finally the whole snapshot is exported to JSON / CSV / Prometheus text,
the same files ``python -m repro metrics`` writes.
"""

import tempfile
from pathlib import Path

from repro import (
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    make_policy,
)
from repro.experiments import figure5_workload
from repro.observability import (
    telemetry_snapshot,
    write_metrics_csv,
    write_metrics_json,
    write_metrics_prometheus,
)


def main() -> None:
    workload = figure5_workload(scale=0.2)
    params = SimulationParameters(telemetry_enabled=True,
                                  telemetry_sample_interval=0.05)

    waits = {name: params.w_min for name in workload.relation_names}
    waits["A"] = 10 * params.w_min  # the overloaded source
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}

    engine = QueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                         delays, params=params, seed=1)
    result = engine.run()

    print(f"DSE run: {result.result_tuples:,} result tuples in "
          f"{result.response_time:.3f} s "
          f"(stalled {result.stall_time:.3f} s)")

    print("\nStall attribution (sums to stall_time):")
    for cause, seconds in result.stall_by_cause().items():
        print(f"  {cause:<24} {seconds:.6f} s")
    print(f"  {'total':<24} {sum(result.stall_breakdown.values()):.6f} s")

    print("\nScheduler decision audit log:")
    for record in result.decisions:
        print(f"  {record}")

    print("\nSelected metrics:")
    registry = result.metrics
    for name in ["dqp.batches", "dqp.context_switches",
                 "dqs.planning_phases", "fragments.completed"]:
        print(f"  {name:<24} {registry.get(name).value}")
    duration = registry.get("fragments.duration_seconds")
    print(f"  fragments.duration_seconds "
          f"count={duration.count} mean={duration.mean:.6f} s")

    print(f"\nPeriodic samples: {len(result.samples)} points every "
          f"{params.telemetry_sample_interval} s of virtual time")
    for point in result.samples[:3]:
        print(f"  t={point.time:.3f}  memory={point.memory_used_bytes:,}B"
              f"  queue={point.queue_depth_tuples} tuples")

    snapshot = telemetry_snapshot(result)
    out = Path(tempfile.mkdtemp(prefix="telemetry-"))
    write_metrics_json(snapshot, out / "metrics.json")
    write_metrics_csv(snapshot, out / "metrics.csv")
    write_metrics_prometheus(snapshot, out / "metrics.prom")
    print(f"\nExported JSON / CSV / Prometheus snapshots under {out}")


if __name__ == "__main__":
    main()
