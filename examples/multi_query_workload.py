#!/usr/bin/env python
"""Scenario: several users query the mediator at once (Section 6).

Four analysts fire the same integration query within a second of each
other.  The mediator's single CPU is shared; each query keeps its own
wrappers, queues and memory budget.  The script contrasts an all-SEQ
mediator with an all-DSE one, at a fast and at a slow network, showing
the throughput/response-time tradeoff the paper predicts for its future
work: DSE's materializations are extra total work — wasted when the CPU
is already saturated, decisive when slow sources leave it idle.
"""

from repro import SimulationParameters
from repro.experiments import (
    figure5_workload,
    format_table,
    run_multiquery_experiment,
)


def main() -> None:
    workload = figure5_workload(scale=0.25)
    params = SimulationParameters()

    points = run_multiquery_experiment(
        workload,
        strategies=["SEQ", "DSE"],
        waits=[params.w_min, 5 * params.w_min],
        params=params,
        num_queries=4,
        inter_arrival=0.25,
        seed=11)

    print(format_table(
        ["strategy", "w (µs)", "mean resp (s)", "makespan (s)", "queries/s",
         "CPU"],
        [p.row() for p in points],
        title="4 staggered queries on one mediator"))

    fast = {p.strategy: p for p in points if p.wait == params.w_min}
    slow = {p.strategy: p for p in points if p.wait != params.w_min}
    print("\nfast sources : DSE - SEQ mean response = "
          f"{fast['DSE'].mean_response - fast['SEQ'].mean_response:+.3f} s "
          "(materialization overhead on a saturated CPU)")
    print("slow sources : DSE - SEQ mean response = "
          f"{slow['DSE'].mean_response - slow['SEQ'].mean_response:+.3f} s "
          "(idle time reclaimed)")


if __name__ == "__main__":
    main()
