#!/usr/bin/env python
"""Quickstart: run the paper's experiment query with dynamic scheduling.

Builds the Figure 5 workload (six remote sources, five hash joins),
executes it with the paper's DSE strategy over simulated wrappers at the
default network speed (w_min = 20 µs per tuple), and prints what the
engine did.
"""

from repro import QueryEngine, SimulationParameters, UniformDelay, make_policy
from repro.experiments import figure5_workload


def main() -> None:
    workload = figure5_workload()
    params = SimulationParameters()

    print("Query:", workload.tree.render())
    print("\nQuery execution plan:")
    print(workload.qep.describe())

    delays = {name: UniformDelay(params.w_min)
              for name in workload.relation_names}
    engine = QueryEngine(workload.catalog, workload.qep, make_policy("DSE"),
                         delays, params=params, seed=1)
    result = engine.run()

    print("\nExecution result:")
    print(f"  response time      : {result.response_time:.3f} s")
    print(f"  result tuples      : {result.result_tuples:,}")
    print(f"  CPU utilization    : {result.cpu_utilization:.0%}")
    print(f"  engine stall time  : {result.stall_time:.3f} s")
    print(f"  planning phases    : {result.planning_phases}")
    print(f"  PC degradations    : {result.degradations}")
    print(f"  tuples spilled     : {result.tuples_spilled:,}")
    print(f"  analytic lower bound: {engine.lower_bound():.3f} s")


if __name__ == "__main__":
    main()
