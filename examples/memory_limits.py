#!/usr/bin/env python
"""Scenario: running a query that does not fit in memory (Section 4.2).

The hash tables of the Figure 5 plan need about 8.8 MB at once at 50%
scale.  This script shrinks the memory budget step by step and shows the
DQO's reaction: chains discovered to be not M-schedulable are split by
inserting a materialization at the highest possible point, trading disk
I/O for feasibility — until the budget drops below the plan's floor and
the query is (correctly) refused.
"""

from repro import (
    MemoryOverflowError,
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    make_policy,
)
from repro.experiments import figure5_workload, format_table


def main() -> None:
    workload = figure5_workload(scale=0.5)
    params = SimulationParameters()

    budgets_mb = [64, 4.4, 4.0, 3.7, 3.0]
    rows = []
    for budget in budgets_mb:
        point_params = params.with_overrides(
            query_memory_bytes=int(budget * 1024 * 1024))
        delays = {name: UniformDelay(params.w_min)
                  for name in workload.relation_names}
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy("DSE"), delays,
                             params=point_params, seed=5)
        try:
            result = engine.run()
        except MemoryOverflowError as exc:
            rows.append([f"{budget:g}", "refused", "-", "-", "-",
                         f"{exc.chain_name} needs "
                         f"{exc.required / 1e6:.1f} MB"])
            continue
        rows.append([
            f"{budget:g}",
            f"{result.response_time:.3f}",
            str(result.memory_splits),
            f"{result.memory_peak_bytes / 1024 / 1024:.2f}",
            f"{result.tuples_spilled:,}",
            f"{result.result_tuples:,} tuples",
        ])

    print(format_table(
        ["budget (MB)", "response (s)", "DQO splits", "peak (MB)",
         "spilled", "outcome"],
        rows, title="Shrinking the memory budget (Figure 5 at 50% scale)"))


if __name__ == "__main__":
    main()
