#!/usr/bin/env python
"""Scenario: the three delay categories of Section 1.2.

Query scrambling handled initial delays ([15]) and bursty arrivals ([1])
separately and had no answer for slow delivery; the paper's claim is
that dynamic scheduling handles *all three* uniformly.  This script
applies each delay category to relation A — the chain that gates half of
the Figure 5 plan — and compares SEQ with DSE.
"""

from repro import (
    BurstyDelay,
    InitialDelay,
    QueryEngine,
    SimulationParameters,
    UniformDelay,
    make_policy,
)
from repro.experiments import figure5_workload, format_table


def main() -> None:
    workload = figure5_workload(scale=0.5)
    params = SimulationParameters()
    base = params.w_min

    scenarios = {
        "initial delay (2 s before the first tuple)":
            lambda: InitialDelay(2.0, UniformDelay(base)),
        "bursty arrival (10k-tuple bursts, 0.5 s gaps)":
            lambda: BurstyDelay(burst_tuples=10_000, gap=0.5,
                                within_burst_wait=base),
        "slow delivery (8x slower, regular)":
            lambda: UniformDelay(8 * base),
    }

    rows = []
    for label, make_slow_model in scenarios.items():
        measured = {}
        for strategy in ["SEQ", "DSE"]:
            delays = {name: UniformDelay(base)
                      for name in workload.relation_names}
            delays["A"] = make_slow_model()
            engine = QueryEngine(workload.catalog, workload.qep,
                                 make_policy(strategy), delays,
                                 params=params, seed=3)
            measured[strategy] = engine.run().response_time
        gain = 1 - measured["DSE"] / measured["SEQ"]
        rows.append([label, f"{measured['SEQ']:.3f}",
                     f"{measured['DSE']:.3f}", f"{gain:.0%}"])

    print(format_table(
        ["delay on A", "SEQ (s)", "DSE (s)", "DSE gain"], rows,
        title="One mechanism for every delay category (Section 1.2)"))


if __name__ == "__main__":
    main()
