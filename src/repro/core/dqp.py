"""The Dynamic Query Processor (Section 3.2).

"At each execution phase, the task of the DQP is to interleave the
execution of the query fragments in order to maximize the processor
utilization with respect to the priorities defined in the scheduling
plan."  The DQP always serves the highest-priority fragment that has data
(a *batch* at a time), returning to the top of the priority list after
every batch; it stalls only when **no** scheduled fragment has data, and
after ``timeout`` of stalling returns a TimeOut interruption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.common.errors import SchedulingError
from repro.core.events import (
    BudgetGrow,
    EndOfQEP,
    EndOfQF,
    InterruptionEvent,
    MemoryOverflow,
    PhaseComplete,
    RateChange,
    TimeOut,
)
from repro.core.fragments import (
    BATCH_FINISHED,
    BATCH_OVERFLOW,
    Fragment,
    FragmentKind,
    FragmentStatus,
)
from repro.core.runtime import QueryRuntime
from repro.mediator.queues import SourceQueue
from repro.observability import (
    STALL_MEMORY_WAIT,
    STALL_NO_SCHEDULABLE,
    STALL_TIMEOUT,
    source_wait,
)
from repro.observability.hooks import compile_dqp_hooks
from repro.exec import AnyOf, SimEvent


@dataclass
class SchedulingPlan:
    """A totally ordered set of query fragments (highest priority first)."""

    fragments: list[Fragment]
    priorities: dict[str, float] = field(default_factory=dict)
    #: set when the top fragment is not M-schedulable even alone; the DQS
    #: hands this straight to the DQO (Section 4.2).
    overflow_fragment: Optional[Fragment] = None
    # live() cache: the DQP calls live() once per batch, but fragments
    # only leave the live set when one finalizes — which bumps the
    # runtime's done_revision.  Caching against that counter makes the
    # per-batch call an O(1) attribute check instead of a fresh filtered
    # list allocation (see benchmarks/test_bench_dqp_loop.py).
    _live: Optional[list[Fragment]] = field(
        default=None, repr=False, compare=False)
    _live_revision: int = field(default=-1, repr=False, compare=False)

    def live(self) -> list[Fragment]:
        fragments = self.fragments
        if not fragments:
            return fragments
        revision = fragments[0].runtime.done_revision
        if self._live is None or revision != self._live_revision:
            self._live = [f for f in fragments
                          if f.status is not FragmentStatus.DONE]
            self._live_revision = revision
        return self._live

    def describe(self) -> str:
        return " > ".join(
            f"{f.name}({self.priorities.get(f.name, 0.0):.3g})"
            for f in self.fragments)


class DynamicQueryProcessor:
    """Executes one scheduling plan until an interruption event."""

    def __init__(self, runtime: QueryRuntime):
        self.runtime = runtime
        self.context_switches = 0
        self.batches_processed = 0
        self.stall_time = 0.0
        self._last_fragment: Optional[Fragment] = None
        self._rate_change: Optional[tuple[str, float, float]] = None
        self._budget_grow: Optional[tuple[int, int]] = None
        self._rate_event: Optional[SimEvent] = None
        # Stall-path caches: the rate-change event and per-fragment wait
        # events are one-shot but usually survive a stall untriggered, so
        # the next stall reuses them instead of allocating (and, for
        # source queues, piling up) fresh waiters every iteration.
        self._cached_rate_event: Optional[SimEvent] = None
        self._wait_cache: dict[str, tuple[Any, SimEvent]] = {}
        self._rr_cursor = 0
        # Batch-sizing scalars, hoisted out of the per-batch loop
        # (``effective_batch_tuples`` recomputes two divisions per call).
        params = runtime.world.params
        self._batch_base = params.effective_batch_tuples
        self._adaptive = params.adaptive_batching
        self._batch_ceiling = (self._batch_base
                               * params.adaptive_batch_max_messages)
        self._round_robin = params.dqp_discipline == "round-robin"
        telemetry = runtime.world.telemetry
        self._stalls = telemetry.stalls
        #: current execution-phase span id (set by the DQO per phase);
        #: the compiled span hooks read it at call time.
        self.current_phase_span: Optional[int] = None
        #: compiled observability dispatch table.  Every active channel
        #: (metrics, flight recorder, spans) contributed its pre-bound
        #: callables at compile time; when everything is off the slots
        #: are empty tuples and the hot loop pays one truthiness check.
        self.hooks = compile_dqp_hooks(
            telemetry, phase_span_of=lambda: self.current_phase_span)
        # Subscribe to broker grow offers so a mid-flight budget increase
        # interrupts the execution phase for a replan (same pattern as
        # the CM's rate-change listener).  Only when the feature is on:
        # a subscribed lease is also what the broker reclaims bytes for.
        if params.dynamic_budget_replanning:
            subscribe = getattr(runtime.world.memory, "subscribe_grow", None)
            if subscribe is not None:
                subscribe(self.notify_budget_grow)

    # -- rate-change plumbing (installed as the CM listener) ---------------
    def notify_rate_change(self, source: str, old_wait: float,
                           new_wait: float) -> None:
        """CM callback: remember the change and wake the DQP if waiting."""
        self._rate_change = (source, old_wait, new_wait)
        if self._rate_event is not None and not self._rate_event.triggered:
            self._rate_event.succeed("rate-change")

    # -- budget-grow plumbing (subscribed on the memory lease) -------------
    def notify_budget_grow(self, granted_bytes: int,
                           total_bytes: int) -> None:
        """Broker callback: the lease grew; replan at the next boundary."""
        self._budget_grow = (granted_bytes, total_bytes)
        if self._rate_event is not None and not self._rate_event.triggered:
            self._rate_event.succeed("budget-grow")

    def recompile_hooks(self) -> None:
        """Rebuild the dispatch table after a channel attaches/detaches.

        Cheap (registry getters are get-or-create), and picked up by the
        next ``execute`` call, i.e. the next scheduling plan.
        """
        self.hooks = compile_dqp_hooks(
            self.runtime.world.telemetry,
            phase_span_of=lambda: self.current_phase_span)

    # -- main loop ---------------------------------------------------------
    def execute(self, sp: SchedulingPlan) -> Generator[
            SimEvent, Any, InterruptionEvent]:
        """Process ``sp`` until an interruption event. ``yield from`` me."""
        world = self.runtime.world
        sim, params = world.sim, world.params
        batch_hooks = self.hooks.batch
        switch_hooks = self.hooks.switch
        while True:
            if self._rate_change is not None:
                source, old, new = self._rate_change
                self._rate_change = None
                return RateChange(sim.now, source=source, old_wait=old,
                                  new_wait=new)
            if self._budget_grow is not None:
                granted, total = self._budget_grow
                self._budget_grow = None
                return BudgetGrow(sim.now, granted_bytes=granted,
                                  total_bytes=total)

            live = sp.live()
            if not live:
                if self.runtime.all_done:
                    return EndOfQEP(sim.now,
                                    result_tuples=self.runtime.result_tuples)
                return PhaseComplete(sim.now)

            if self._round_robin:
                workable = [f for f in live if f.has_work()]
                fragment = (workable[self._rr_cursor % len(workable)]
                            if workable else None)
                if fragment is not None:
                    self._rr_cursor += 1
            else:
                # Priority discipline wants only the first fragment with
                # data; scan instead of building a filtered list per batch.
                fragment = None
                for candidate in live:
                    if candidate.has_work():
                        fragment = candidate
                        break
            if fragment is None:
                timed_out = yield from self._stall(live)
                if timed_out:
                    return TimeOut(sim.now, stalled_for=params.timeout)
                continue
            if (fragment is not self._last_fragment
                    and params.context_switch_instructions > 0):
                yield from world.cpu.work(params.context_switch_instructions)
                self.context_switches += 1
                if switch_hooks:
                    for hook in switch_hooks:
                        hook(sim.now, fragment)
            self._last_fragment = fragment

            if batch_hooks:
                batch_started = sim.now
                tuples_before = fragment.tuples_in
            outcome = yield from fragment.process_batch(
                self._batch_size(fragment))
            self.batches_processed += 1
            if batch_hooks:
                now = sim.now
                tuples = fragment.tuples_in - tuples_before
                for hook in batch_hooks:
                    hook(batch_started, now, fragment, tuples)

            if outcome == BATCH_OVERFLOW:
                return self._overflow_event(fragment)
            if outcome == BATCH_FINISHED:
                world.tracer.emit("qf-end", fragment.name)
                if self.runtime.all_done:
                    return EndOfQEP(sim.now,
                                    result_tuples=self.runtime.result_tuples)
                return EndOfQF(sim.now, fragment_name=fragment.name)
            # BATCH_OK / BATCH_EMPTY: return to the top of the priority list.

    def _batch_size(self, fragment: Fragment) -> int:
        """The quantum for this fragment's next batch.

        Fixed by default; with ``adaptive_batching`` (the paper's
        footnote: "batch size can vary dynamically") it tracks half the
        fragment's current backlog, clamped to [1 message,
        ``adaptive_batch_max_messages`` messages].
        """
        base = self._batch_base
        if not self._adaptive:
            return base
        source = fragment.source
        if isinstance(source, SourceQueue):
            backlog = source.tuples_available
        else:
            backlog = source.available_tuples
        return max(base, min(self._batch_ceiling, backlog // 2))

    def _stall(self, live: list[Fragment]) -> Generator[SimEvent, Any, bool]:
        """Wait for data, a rate change, or the timeout; True on timeout.

        Every stall is attributed to exactly one cause — the source whose
        message woke us, a temp prefetch (memory wait), a replanning
        wake-up, or the timeout — so the sum of the attributed intervals
        equals :attr:`stall_time` by construction.
        """
        world = self.runtime.world
        sim, params = world.sim, world.params
        waits = []
        for fragment in live:
            cached = self._wait_cache.get(fragment.name)
            if (cached is not None and cached[0] is fragment.source
                    and not cached[1].triggered):
                # Still armed from an earlier stall (and the fragment's
                # source has not been swapped by a degradation): reuse.
                waits.append((fragment, cached[1]))
                continue
            event = fragment.wait_event()
            if event is not None:
                self._wait_cache[fragment.name] = (fragment.source, event)
                waits.append((fragment, event))
        if not waits:
            raise SchedulingError(
                "DQP stalled although only local fragments are scheduled")
        if (self._cached_rate_event is None
                or self._cached_rate_event.triggered):
            self._cached_rate_event = sim.event(name="rate-change")
        self._rate_event = self._cached_rate_event
        timeout = sim.timeout(params.timeout)
        started = sim.now
        world.tracer.emit("stall", "no data on any scheduled fragment",
                          fragments=[f.name for f in live])
        waiter = sim.any_of([event for _, event in waits]
                            + [self._rate_event, timeout])
        yield waiter
        self._rate_event = None
        # Unhook the spent composite from its untriggered children (they
        # will be reused) and withdraw the guard timeout so it neither
        # fires later nor keeps the kernel busy until then.
        waiter.detach()
        if not timeout.processed:
            timeout.cancel()
        stalled_for = sim.now - started
        self.stall_time += stalled_for
        data_arrived = any(event.processed for _, event in waits)
        timed_out = (timeout.processed and not data_arrived
                     and self._rate_change is None
                     and self._budget_grow is None)
        cause = self._stall_cause(waits, data_arrived, timed_out)
        self._stalls.record(cause, started, sim.now)
        stall_hooks = self.hooks.stall
        if stall_hooks:
            for hook in stall_hooks:
                hook(started, sim.now, cause)
        return timed_out

    @staticmethod
    def _stall_cause(waits: list[tuple[Fragment, SimEvent]],
                     data_arrived: bool, timed_out: bool) -> str:
        """Attribute one finished stall to its wake-up cause."""
        if data_arrived:
            for fragment, event in waits:
                if event.processed:
                    source = fragment.source
                    if isinstance(source, SourceQueue):
                        return source_wait(source.source)
                    return STALL_MEMORY_WAIT  # temp reload completed
        if timed_out:
            return STALL_TIMEOUT
        # Woken for replanning (rate change) while nothing had work.
        return STALL_NO_SCHEDULABLE

    def _overflow_event(self, fragment: Fragment) -> MemoryOverflow:
        world = self.runtime.world
        join_name = fragment.builds_join or ""
        needed = world.params.page_size
        world.tracer.emit("memory-overflow", fragment.name, join=join_name)
        return MemoryOverflow(
            world.sim.now,
            fragment_name=fragment.name,
            join_name=join_name,
            pending_tuples=fragment.pending_spill,
            required_bytes=needed,
            available_bytes=world.memory.available_bytes)
