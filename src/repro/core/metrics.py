"""Scheduling metrics: critical degree and benefit materialization indicator.

Section 4.3:  ``critical(p) = n_p * (w_p - c_p)`` — the total CPU idle
time if pipeline chain ``p`` ran with no concurrent work; positive means
``p`` is *critical* (retrieval slower than processing).

Section 4.4:  ``bmi(p) = w_p / (2 * IO_p)`` — the profitability of
degrading ``p`` into a materialization fragment plus a complement
fragment; compared against the threshold ``bmt``.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.errors import SchedulingError
from repro.config import SimulationParameters
from repro.plan.operators import MatOp, Operator, OutputOp, ProbeOp, ScanOp


def chain_cpu_seconds_per_source_tuple(
        operators: Iterable[Operator], params: SimulationParameters,
        include_receive: bool = True, use_actuals: bool = False) -> float:
    """Estimated mediator CPU seconds to process one source tuple (``c_p``).

    Walks the operator segment accumulating per-source-tuple instruction
    counts, expanding by each probe's fanout, exactly mirroring how the
    runtime charges batches.  ``include_receive`` adds the per-tuple share
    of the message receive cost (the source tuple had to be received
    before processing).  ``use_actuals`` switches probe fanouts from the
    optimizer estimates to the simulation's actual values — the scheduler
    itself uses estimates, like the paper.
    """
    instructions = 0.0
    flow = 1.0  # tuples reaching the current operator per source tuple
    for op in operators:
        if isinstance(op, ScanOp):
            instructions += flow * params.move_tuple_instructions
            flow *= op.scan_selectivity
        elif isinstance(op, ProbeOp):
            instructions += flow * params.hash_search_instructions
            fanout = (op.join.actual_fanout() if use_actuals
                      else op.join.estimated_fanout())
            flow *= fanout
            instructions += flow * params.produce_tuple_instructions
        elif isinstance(op, MatOp):
            instructions += flow * params.move_tuple_instructions
        elif isinstance(op, OutputOp):
            pass  # result tuples were already priced by the producing probe
        else:
            raise SchedulingError(f"unknown operator type: {op!r}")
    seconds = params.instructions_seconds(instructions)
    if include_receive:
        seconds += params.receive_cpu_seconds_per_tuple()
    return seconds


def critical_degree(remaining_tuples: float, wait_per_tuple: float,
                    cpu_per_tuple: float) -> float:
    """``critical(p) = n_p * (w_p - c_p)``, Section 4.3.

    ``remaining_tuples`` is the number of source tuples still to retrieve
    — at the start of execution this is the full ``n_p``; the scheduler
    re-evaluates with what is left.
    """
    if remaining_tuples < 0:
        raise SchedulingError(f"negative remaining tuples: {remaining_tuples}")
    if wait_per_tuple < 0 or cpu_per_tuple < 0:
        raise SchedulingError("waiting/processing times must be >= 0")
    return remaining_tuples * (wait_per_tuple - cpu_per_tuple)


def benefit_materialization_indicator(wait_per_tuple: float,
                                      io_per_tuple: float) -> float:
    """``bmi = w_p / (2 * IO_p)``, Section 4.4.

    ``io_per_tuple`` is the disk time to write *or* read one tuple of the
    materialization fragment's output; the factor 2 accounts for writing
    it now and reading it back later.
    """
    if io_per_tuple <= 0:
        raise SchedulingError(f"io_per_tuple must be positive, got {io_per_tuple}")
    if wait_per_tuple < 0:
        raise SchedulingError(f"negative wait: {wait_per_tuple}")
    return wait_per_tuple / (2.0 * io_per_tuple)
