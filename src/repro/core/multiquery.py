"""Multi-query execution on one mediator (the paper's future work).

Section 6: "We also plan to study the behavior of our approach in the
context of multi-query execution.  As soon as we consider such context,
we face the classical tradeoff between throughput and response time."

:class:`MultiQueryEngine` runs several queries concurrently on one
simulated machine: the CPU, disks, page cache and (optionally) the
inbound link are shared; each query keeps its own wrappers, queues,
rate estimation, memory budget, and its own DQO → DQS → DQP stack.
Contention arises naturally from the shared resources — no additional
scheduler is needed above the per-query engines, which is exactly the
setting the paper's discussion contemplates.

**Memory governance** (``global_memory_bytes``): by default every query
gets a private static budget, as in the paper.  With a global pool the
machine's :class:`~repro.resources.broker.MemoryBroker` is bounded and an
:class:`~repro.resources.admission.AdmissionController` queues
submissions whose declared minimum working set does not fit, admitting
them FIFO (or by priority) as running queries release their leases.
Combined with ``dynamic_budget_replanning`` the released bytes are also
*offered* to running queries, whose DQS then re-plans against the grown
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Optional

from repro.catalog.catalog import Catalog
from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SimulationParameters
from repro.core.dqo import DynamicQEPOptimizer
from repro.core.dqp import DynamicQueryProcessor
from repro.core.dqs import DynamicQueryScheduler, PlanningPolicy
from repro.core.events import EndOfQEP
from repro.core.runtime import QueryRuntime, World
from repro.exec import Process, SimEvent
from repro.observability import (
    SPAN_ADMISSION_WAIT,
    STALL_ADMISSION_WAIT,
    DecisionRecord,
)
from repro.plan.qep import QEP
from repro.plan.validation import validate_qep
from repro.resources import ADMISSION_POLICIES, AdmissionController, MemoryBroker
from repro.wrappers.delays import DelayModel
from repro.wrappers.source import Wrapper


@dataclass
class QuerySubmission:
    """One query to run: plan, policy, sources and arrival time."""

    name: str
    catalog: Catalog
    qep: QEP
    policy: PlanningPolicy
    delay_models: Mapping[str, DelayModel]
    start_time: float = 0.0
    #: per-query memory budget; None uses the configured default.
    memory_bytes: Optional[int] = None
    #: minimum working set the query can *start* with (admission gate);
    #: defaults to the initial budget.
    min_memory_bytes: Optional[int] = None
    #: budget ceiling the lease may grow to via broker offers; defaults
    #: to the initial budget (i.e. static, as in the paper).
    max_memory_bytes: Optional[int] = None
    #: admission priority (higher admits first under ``priority`` policy).
    priority: float = 0.0
    #: owning tenant ("" outside the multi-tenant service).
    tenant: str = ""

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("submission needs a name")
        if self.start_time < 0:
            raise ConfigurationError(
                f"start_time must be >= 0, got {self.start_time}")
        for label, value in (("memory_bytes", self.memory_bytes),
                             ("min_memory_bytes", self.min_memory_bytes),
                             ("max_memory_bytes", self.max_memory_bytes)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"query {self.name!r}: {label} must be positive, "
                    f"got {value}")
        if (self.min_memory_bytes is not None
                and self.max_memory_bytes is not None
                and self.min_memory_bytes > self.max_memory_bytes):
            raise ConfigurationError(
                f"query {self.name!r}: min_memory_bytes "
                f"{self.min_memory_bytes} exceeds max_memory_bytes "
                f"{self.max_memory_bytes}")
        if self.memory_bytes is not None:
            if (self.min_memory_bytes is not None
                    and self.memory_bytes < self.min_memory_bytes):
                raise ConfigurationError(
                    f"query {self.name!r}: memory_bytes {self.memory_bytes} "
                    f"below min_memory_bytes {self.min_memory_bytes}")
            if (self.max_memory_bytes is not None
                    and self.memory_bytes > self.max_memory_bytes):
                raise ConfigurationError(
                    f"query {self.name!r}: memory_bytes {self.memory_bytes} "
                    f"exceeds max_memory_bytes {self.max_memory_bytes}")
        validate_qep(self.qep)
        missing = set(self.qep.source_relations()) - set(self.delay_models)
        if missing:
            raise ConfigurationError(
                f"query {self.name!r}: no delay model for {sorted(missing)}")

    def resolved_budgets(self, params: SimulationParameters) -> tuple[
            int, int, int]:
        """``(initial, min, max)`` lease bytes with defaults applied."""
        initial = (self.memory_bytes if self.memory_bytes is not None
                   else params.query_memory_bytes)
        min_bytes = (self.min_memory_bytes
                     if self.min_memory_bytes is not None else initial)
        max_bytes = (self.max_memory_bytes
                     if self.max_memory_bytes is not None else initial)
        initial = min(max(initial, min_bytes), max_bytes)
        return initial, min_bytes, max_bytes


@dataclass
class QueryOutcome:
    """Per-query measurements of a multi-query run."""

    name: str
    strategy: str
    start_time: float
    completion_time: float
    result_tuples: int
    degradations: int
    memory_splits: int
    stall_time: float
    planning_phases: int
    #: virtual seconds spent queued by admission control before the
    #: lease was granted (0.0 for immediate admission / no governance).
    admission_wait: float = 0.0
    #: lease bytes granted at admission (the initial budget).
    memory_granted_bytes: int = 0
    #: high-water mark of the query's reserved bytes.
    memory_peak_bytes: int = 0
    #: lease grow offers the query accepted mid-flight.
    budget_grows: int = 0
    #: owning tenant ("" outside the multi-tenant service).
    tenant: str = ""
    #: service submission id (None for batch multi-query runs).
    submission_id: Optional[str] = None

    @property
    def response_time(self) -> float:
        """Arrival to completion — queue wait included."""
        return self.completion_time - self.start_time


@dataclass
class MultiQueryResult:
    """Aggregate outcome of one multi-query run."""

    outcomes: list[QueryOutcome]
    makespan: float
    cpu_busy_time: float
    disk_busy_time: float
    #: the machine's decision audit log (admission, lease grow/shrink,
    #: degradations of every query interleaved in decision-time order).
    decisions: list[DecisionRecord] = field(default_factory=list)
    #: the machine-wide causal span tree (every query's spans, plus the
    #: admission waits that link them); ``None`` when spans were off.
    spans: Optional[list] = None

    @property
    def mean_response_time(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(o.response_time for o in self.outcomes)
                / len(self.outcomes))

    @property
    def max_response_time(self) -> float:
        return max((o.response_time for o in self.outcomes), default=0.0)

    @property
    def throughput(self) -> float:
        """Completed queries per (virtual) second."""
        if self.makespan <= 0:
            return 0.0
        return len(self.outcomes) / self.makespan

    @property
    def cpu_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.cpu_busy_time / self.makespan

    @property
    def queued_queries(self) -> int:
        """Queries that had to wait in the admission queue."""
        return sum(1 for o in self.outcomes if o.admission_wait > 0)

    @property
    def mean_admission_wait(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(o.admission_wait for o in self.outcomes)
                / len(self.outcomes))

    def outcome(self, name: str) -> QueryOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no query named {name!r}")


class MultiQueryEngine:
    """Runs a batch of query submissions on one shared machine.

    ``global_memory_bytes`` bounds the machine's memory pool and turns
    admission control on (``admission``: ``"fifo"`` or ``"priority"``).
    ``admission="none"`` keeps the legacy private-budget behavior even
    when a pool size is given.
    """

    def __init__(self, params: Optional[SimulationParameters] = None,
                 seed: int = 0, trace: bool = False,
                 global_memory_bytes: Optional[int] = None,
                 admission: str = "fifo"):
        self.params = params if params is not None else SimulationParameters()
        self.seed = seed
        self.trace = trace
        if admission not in ADMISSION_POLICIES + ("none",):
            raise ConfigurationError(
                f"unknown admission policy {admission!r}; expected one of "
                f"{ADMISSION_POLICIES + ('none',)}")
        if global_memory_bytes is not None and global_memory_bytes <= 0:
            raise ConfigurationError(
                f"global_memory_bytes must be positive, "
                f"got {global_memory_bytes}")
        self.global_memory_bytes = global_memory_bytes
        self.admission = admission
        self._controller: Optional[AdmissionController] = None
        self._submissions: list[QuerySubmission] = []

    @property
    def governed(self) -> bool:
        """True when a bounded pool with admission control is active."""
        return (self.global_memory_bytes is not None
                and self.admission != "none")

    def submit(self, submission: QuerySubmission) -> None:
        """Queue one query for the next :meth:`run`."""
        if any(existing.name == submission.name
               for existing in self._submissions):
            raise ConfigurationError(
                f"duplicate submission name {submission.name!r}")
        self._submissions.append(submission)

    def run(self) -> MultiQueryResult:
        """Execute every submitted query; returns aggregate results."""
        if not self._submissions:
            raise ConfigurationError("no queries submitted")
        machine = World(self.params, seed=self.seed, trace=self.trace)
        if self.governed:
            pool = self.global_memory_bytes
            assert pool is not None
            for submission in self._submissions:
                _, min_bytes, _ = submission.resolved_budgets(self.params)
                if min_bytes > pool:
                    raise ConfigurationError(
                        f"query {submission.name!r}: minimum working set "
                        f"{min_bytes} exceeds the global memory pool {pool}")
            machine.broker = MemoryBroker(pool, sim=machine.sim,
                                          telemetry=machine.telemetry)
            self._controller = AdmissionController(
                machine.broker, machine.sim, telemetry=machine.telemetry,
                policy=self.admission)
        else:
            self._controller = None
        launchers: list[tuple[QuerySubmission, Process]] = []
        for submission in self._submissions:
            process = machine.sim.process(
                self._launch(submission, machine),
                name=f"query:{submission.name}")
            process.defused = True
            launchers.append((submission, process))

        machine.sim.run()

        outcomes = []
        for submission, process in launchers:
            if process.failure is not None:
                raise process.failure
            outcomes.append(process.value)
        makespan = max(o.completion_time for o in outcomes)
        return MultiQueryResult(
            outcomes=outcomes,
            makespan=makespan,
            cpu_busy_time=machine.cpu.busy_time,
            disk_busy_time=sum(d.busy_time for d in machine.disks),
            decisions=list(machine.telemetry.audit),
            spans=(list(machine.telemetry.spans.spans)
                   if machine.telemetry.spans is not None else None),
        )

    def _launch(self, submission: QuerySubmission,
                machine: World) -> Generator[SimEvent, Any, QueryOutcome]:
        if submission.start_time > 0:
            yield machine.sim.timeout(submission.start_time)
        submitted = machine.sim.now
        initial, min_bytes, max_bytes = submission.resolved_budgets(self.params)
        admission_wait = 0.0
        wait_span = None
        spans = machine.telemetry.spans
        if self._controller is not None:
            ticket = self._controller.request(
                submission.name, min_bytes, max_bytes,
                priority=submission.priority, tenant=submission.tenant)
            if not ticket.granted:
                assert ticket.event is not None
                yield ticket.event
            lease = ticket.lease
            assert lease is not None
            admission_wait = ticket.waited
            if admission_wait > 0:
                machine.telemetry.stalls.record(
                    STALL_ADMISSION_WAIT, submitted, machine.sim.now)
                if spans is not None:
                    wait_span = spans.add(
                        SPAN_ADMISSION_WAIT, submission.name, submitted,
                        machine.sim.now, min_bytes=min_bytes)
        else:
            lease = machine.broker.lease(submission.name, initial,
                                         min_bytes=min_bytes,
                                         max_bytes=max_bytes,
                                         tenant=submission.tenant)
        granted_bytes = lease.total_bytes
        world = World(self.params, share_machine=machine, lease=lease,
                      query_name=submission.name)
        try:
            for source in submission.qep.source_relations():
                model = submission.delay_models[source]
                reset = getattr(model, "reset", None)
                if reset is not None:
                    reset()
                wrapper = Wrapper(
                    world.sim, submission.catalog.relation(source), model,
                    world.cm,
                    world.rng(f"{submission.name}:wrapper:{source}"),
                    self.params)
                wrapper.start()

            runtime = QueryRuntime(world, submission.qep)
            if wait_span is not None and runtime.query_span is not None:
                # The query ran late *because of* this admission wait.
                spans.set_cause(runtime.query_span, wait_span)
            scheduler = DynamicQueryScheduler(runtime, submission.policy)
            processor = DynamicQueryProcessor(runtime)
            optimizer = DynamicQEPOptimizer(runtime, scheduler, processor)
            event = yield from optimizer.run()
            if not isinstance(event, EndOfQEP):
                raise SimulationError(
                    f"query {submission.name!r} ended without EndOfQEP")
            return QueryOutcome(
                name=submission.name,
                strategy=submission.policy.name,
                start_time=submitted,
                completion_time=event.time,
                result_tuples=runtime.result_tuples,
                degradations=len(runtime.degraded_chains),
                memory_splits=runtime.memory_splits,
                stall_time=processor.stall_time,
                planning_phases=scheduler.planning_phases,
                admission_wait=admission_wait,
                memory_granted_bytes=granted_bytes,
                memory_peak_bytes=lease.peak_bytes,
                budget_grows=optimizer.budget_grows,
                tenant=submission.tenant,
            )
        finally:
            # Query over (or failed): the lease goes back to the pool,
            # which admits queued queries and offers grow events to the
            # survivors.
            machine.broker.release(lease)
