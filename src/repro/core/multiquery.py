"""Multi-query execution on one mediator (the paper's future work).

Section 6: "We also plan to study the behavior of our approach in the
context of multi-query execution.  As soon as we consider such context,
we face the classical tradeoff between throughput and response time."

:class:`MultiQueryEngine` runs several queries concurrently on one
simulated machine: the CPU, disks, page cache and (optionally) the
inbound link are shared; each query keeps its own wrappers, queues,
rate estimation, memory budget, and its own DQO → DQS → DQP stack.
Contention arises naturally from the shared resources — no additional
scheduler is needed above the per-query engines, which is exactly the
setting the paper's discussion contemplates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Optional

from repro.catalog.catalog import Catalog
from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SimulationParameters
from repro.core.dqo import DynamicQEPOptimizer
from repro.core.dqp import DynamicQueryProcessor
from repro.core.dqs import DynamicQueryScheduler, PlanningPolicy
from repro.core.events import EndOfQEP
from repro.core.runtime import QueryRuntime, World
from repro.exec import Process, SimEvent
from repro.plan.qep import QEP
from repro.plan.validation import validate_qep
from repro.wrappers.delays import DelayModel
from repro.wrappers.source import Wrapper


@dataclass
class QuerySubmission:
    """One query to run: plan, policy, sources and arrival time."""

    name: str
    catalog: Catalog
    qep: QEP
    policy: PlanningPolicy
    delay_models: Mapping[str, DelayModel]
    start_time: float = 0.0
    #: per-query memory budget; None uses the configured default.
    memory_bytes: Optional[int] = None

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("submission needs a name")
        if self.start_time < 0:
            raise ConfigurationError(
                f"start_time must be >= 0, got {self.start_time}")
        validate_qep(self.qep)
        missing = set(self.qep.source_relations()) - set(self.delay_models)
        if missing:
            raise ConfigurationError(
                f"query {self.name!r}: no delay model for {sorted(missing)}")


@dataclass
class QueryOutcome:
    """Per-query measurements of a multi-query run."""

    name: str
    strategy: str
    start_time: float
    completion_time: float
    result_tuples: int
    degradations: int
    memory_splits: int
    stall_time: float
    planning_phases: int

    @property
    def response_time(self) -> float:
        return self.completion_time - self.start_time


@dataclass
class MultiQueryResult:
    """Aggregate outcome of one multi-query run."""

    outcomes: list[QueryOutcome]
    makespan: float
    cpu_busy_time: float
    disk_busy_time: float

    @property
    def mean_response_time(self) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(o.response_time for o in self.outcomes)
                / len(self.outcomes))

    @property
    def max_response_time(self) -> float:
        return max((o.response_time for o in self.outcomes), default=0.0)

    @property
    def throughput(self) -> float:
        """Completed queries per (virtual) second."""
        if self.makespan <= 0:
            return 0.0
        return len(self.outcomes) / self.makespan

    @property
    def cpu_utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.cpu_busy_time / self.makespan

    def outcome(self, name: str) -> QueryOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no query named {name!r}")


class MultiQueryEngine:
    """Runs a batch of query submissions on one shared machine."""

    def __init__(self, params: Optional[SimulationParameters] = None,
                 seed: int = 0, trace: bool = False):
        self.params = params if params is not None else SimulationParameters()
        self.seed = seed
        self.trace = trace
        self._submissions: list[QuerySubmission] = []

    def submit(self, submission: QuerySubmission) -> None:
        """Queue one query for the next :meth:`run`."""
        if any(existing.name == submission.name
               for existing in self._submissions):
            raise ConfigurationError(
                f"duplicate submission name {submission.name!r}")
        self._submissions.append(submission)

    def run(self) -> MultiQueryResult:
        """Execute every submitted query; returns aggregate results."""
        if not self._submissions:
            raise ConfigurationError("no queries submitted")
        machine = World(self.params, seed=self.seed, trace=self.trace)
        launchers: list[tuple[QuerySubmission, Process]] = []
        for submission in self._submissions:
            world = World(self.params, share_machine=machine,
                          memory_bytes=submission.memory_bytes)
            process = machine.sim.process(
                self._launch(submission, world),
                name=f"query:{submission.name}")
            process.defused = True
            launchers.append((submission, process))

        machine.sim.run()

        outcomes = []
        for submission, process in launchers:
            if process.failure is not None:
                raise process.failure
            outcomes.append(process.value)
        makespan = max(o.completion_time for o in outcomes)
        return MultiQueryResult(
            outcomes=outcomes,
            makespan=makespan,
            cpu_busy_time=machine.cpu.busy_time,
            disk_busy_time=sum(d.busy_time for d in machine.disks),
        )

    def _launch(self, submission: QuerySubmission,
                world: World) -> Generator[SimEvent, Any, QueryOutcome]:
        if submission.start_time > 0:
            yield world.sim.timeout(submission.start_time)
        started = world.sim.now
        for source in submission.qep.source_relations():
            model = submission.delay_models[source]
            reset = getattr(model, "reset", None)
            if reset is not None:
                reset()
            wrapper = Wrapper(
                world.sim, submission.catalog.relation(source), model,
                world.cm,
                world.rng(f"{submission.name}:wrapper:{source}"),
                self.params)
            wrapper.start()

        runtime = QueryRuntime(world, submission.qep)
        scheduler = DynamicQueryScheduler(runtime, submission.policy)
        processor = DynamicQueryProcessor(runtime)
        optimizer = DynamicQEPOptimizer(runtime, scheduler, processor)
        event = yield from optimizer.run()
        if not isinstance(event, EndOfQEP):
            raise SimulationError(
                f"query {submission.name!r} ended without EndOfQEP")
        return QueryOutcome(
            name=submission.name,
            strategy=submission.policy.name,
            start_time=started,
            completion_time=event.time,
            result_tuples=runtime.result_tuples,
            degradations=len(runtime.degraded_chains),
            memory_splits=runtime.memory_splits,
            stall_time=processor.stall_time,
            planning_phases=scheduler.planning_phases,
        )
