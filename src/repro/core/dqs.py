"""The Dynamic Query Scheduler (Sections 3.3–4.5).

The DQS turns runtime state into a :class:`SchedulingPlan`.  What varies
between execution strategies is *which fragments are candidates and in
what order* — that is a :class:`PlanningPolicy` (SEQ, MA and DSE are
policies over the same machinery).  What is common is **admission**: every
candidate must fit in memory, in priority order; a top-priority fragment
that does not fit even alone is flagged for the DQO (Section 4.2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.dqp import SchedulingPlan
from repro.core.fragments import Fragment, FragmentKind, FragmentStatus
from repro.core.runtime import QueryRuntime
from repro.observability import SPAN_BUDGET_REPLAN, SPAN_LEASE_GROW
from repro.observability.hooks import compile_dqp_hooks


class PlanningPolicy(ABC):
    """Chooses and orders candidate fragments at each planning phase."""

    #: short name used in results and reports.
    name: str = "policy"
    #: whether the CM should interrupt execution phases on rate changes.
    wants_rate_events: bool = False
    #: whether the policy's machinery can carry a memory-blocked chain
    #: through the degraded lifecycle (MF -> stop -> CF -> PC).  SEQ
    #: never advances degraded chains, so degrading under it would
    #: deadlock; MA pre-degrades everything anyway.  Only policies that
    #: set this participate in dynamic budget re-planning.
    supports_memory_degradation: bool = False

    @abstractmethod
    def select(self, runtime: QueryRuntime) -> list[Fragment]:
        """Candidate fragments in priority order (highest first).

        Every returned fragment must be C-schedulable and not done.  The
        policy may mutate runtime structure first (e.g. degrade chains).
        """

    def priorities(self, runtime: QueryRuntime) -> dict[str, float]:
        """Optional priority values for tracing/reporting."""
        return {}


class DynamicQueryScheduler:
    """Admission and bookkeeping around a planning policy."""

    def __init__(self, runtime: QueryRuntime, policy: PlanningPolicy):
        self.runtime = runtime
        self.policy = policy
        self.planning_phases = 0
        #: dynamic budget re-planning: react to broker grow offers by
        #: un-degrading memory-blocked chains (multi-query, governed
        #: pools).  Off in the paper's static single-query model.
        self._dynamic = (runtime.world.params.dynamic_budget_replanning
                         and policy.supports_memory_degradation)
        self._grow_seen = getattr(runtime.world.memory, "grow_revision", 0)
        # Planning is rare (once per phase), so the DQS shares the same
        # compiled hook surface as the DQP rather than keeping its own
        # metric fields; only the ``plan`` slot is dispatched here.
        self._hooks = compile_dqp_hooks(runtime.world.telemetry)

    def plan(self) -> SchedulingPlan:
        """One planning phase: select candidates, admit them into memory."""
        self.planning_phases += 1
        world = self.runtime.world
        self.runtime.statistics.snapshot_rates(
            world.sim.now, world.cm.wait_snapshot(world.params.w_min))
        if self._dynamic:
            self._replan_after_grow()
        candidates = self.policy.select(self.runtime)
        if self._dynamic and self._degrade_memory_blocked(candidates):
            # Memory-blocked PCs were just degraded (suspended, replaced
            # by MFs): re-select so the plan sees the new fragment set.
            candidates = self.policy.select(self.runtime)
        for fragment in candidates:
            if not self.runtime.is_c_schedulable(fragment):
                # Defensive: a policy bug here would deadlock the DQP.
                raise_from_policy = (
                    f"policy {self.policy.name!r} selected "
                    f"{fragment.name!r} which is not C-schedulable")
                from repro.common.errors import SchedulingError
                raise SchedulingError(raise_from_policy)
        admitted, overflow = self._admit(candidates)
        plan_hooks = self._hooks.plan
        if plan_hooks:
            now = world.sim.now
            for hook in plan_hooks:
                hook(now, len(admitted))
        priorities = self.policy.priorities(self.runtime)
        sp = SchedulingPlan(admitted, priorities, overflow_fragment=overflow)
        self.runtime.world.tracer.emit(
            "plan", sp.describe() or "(empty)",
            phase=self.planning_phases,
            overflow=overflow.name if overflow else None)
        return sp

    def _admit(self, candidates: list[Fragment]) -> tuple[
            list[Fragment], Fragment | None]:
        """Walk candidates in priority order, reserving memory.

        A fragment whose *new* memory does not fit is skipped for this
        phase — unless it is the first candidate and nothing else was
        admitted, in which case it is not M-schedulable even alone and
        the DQO must revise the plan.
        """
        memory = self.runtime.world.memory
        admitted: list[Fragment] = []
        overflow: Fragment | None = None
        for fragment in candidates:
            needed = self.runtime.new_memory_needed(fragment)
            if memory.would_fit(needed):
                self.runtime.ensure_hash_table(fragment)
                admitted.append(fragment)
            elif not admitted and overflow is None:
                overflow = fragment
        if admitted:
            overflow = None
        return admitted, overflow

    # -- dynamic budget re-planning ----------------------------------------
    def _replan_after_grow(self) -> None:
        """React to lease growth since the last planning phase.

        A chain that was degraded *for memory* and whose build table now
        fits the grown budget gets its MF stopped: the complement replays
        the temp, the unsuspended PC takes the remaining wrapper data
        live — the degradation is reversed mid-flight.
        """
        revision = getattr(self.runtime.world.memory, "grow_revision", 0)
        if revision == self._grow_seen:
            return
        self._grow_seen = revision
        runtime = self.runtime
        for chain in runtime.qep.chains:
            if chain.name not in runtime.memory_degraded_chains:
                continue
            mf = runtime.chain_fragments[chain.name][0]
            if (mf.kind is FragmentKind.MATERIALIZATION
                    and mf.status is not FragmentStatus.DONE
                    and not mf.stop_requested
                    and runtime.chain_table_fits(chain)):
                runtime.request_stop_materialization(chain,
                                                     reason="budget-grow")
                spans = runtime.world.telemetry.spans
                if spans is not None:
                    spans.instant(SPAN_BUDGET_REPLAN, chain.name,
                                  parent_id=runtime.query_span,
                                  caused_by=spans.last(SPAN_LEASE_GROW),
                                  mf=mf.name)

    def _degrade_memory_blocked(self, candidates: list[Fragment]) -> bool:
        """Degrade C-schedulable PCs whose build table does not fit.

        Under a static budget a blocked top-priority PC goes to the DQO
        for a memory split; under a shared pool the better response is
        the paper's own degradation machinery: materialize to disk now,
        revert when the broker offers the query more memory.
        """
        runtime = self.runtime
        memory = runtime.world.memory
        degraded = False
        for fragment in candidates:
            if fragment.kind is not FragmentKind.PIPELINE_CHAIN:
                continue
            if fragment.status is not FragmentStatus.PENDING or fragment.suspended:
                continue
            chain = fragment.chain
            if chain.name in runtime.degraded_chains:
                continue
            needed = runtime.new_memory_needed(fragment)
            if needed <= 0 or memory.would_fit(needed):
                continue
            runtime.degrade_chain(chain, prefer_memory=False,
                                  decision_inputs=dict(
                                      memory_blocked=True,
                                      needed_bytes=needed,
                                      available_bytes=memory.available_bytes))
            runtime.memory_degraded_chains.add(chain.name)
            degraded = True
        return degraded
