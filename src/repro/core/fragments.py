"""Runtime query fragments (QFs).

A query fragment is the unit the scheduling plan orders and the DQP
executes: a pipeline-chain segment bound to an input (a wrapper queue or
a temp relation) and a terminal sink (a hash-table build, a temp
materialization, or the query output).  Section 3.3: "the query fragments
of an SP can be PC's or partial materializations of wrappers results";
two more kinds exist at runtime: the complement fragment of a degraded PC
and the continuation fragment the DQO creates when handling memory
overflow.

Tuple flow is content-free: each batch of ``n`` input tuples expands
through the segment's operators using the joins' *actual* fanouts, with
fractional carries so that totals converge to the true cardinalities, and
the whole batch's instruction count is charged to the mediator CPU in one
piece.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional, TYPE_CHECKING, Union

from repro.common.errors import SchedulingError, SimulationError
from repro.mediator.buffer import HashTable, TempReader, TempWriter
from repro.mediator.queues import SourceQueue
from repro.plan.operators import MatOp, Operator, OutputOp, ProbeOp, ScanOp
from repro.exec import SimEvent
from repro.plan.qep import PipelineChain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import QueryRuntime


class FragmentKind(enum.Enum):
    """What role a fragment plays (Section 3.3 + DQO splitting)."""

    PIPELINE_CHAIN = "pc"       #: a whole PC executed in pipeline
    MATERIALIZATION = "mf"      #: MF(p): wrapper -> temp (PC degradation)
    COMPLEMENT = "cf"           #: CF(p): temp -> rest of the degraded PC
    CONTINUATION = "cont"       #: DQO memory split: temp -> hash build


class FragmentStatus(enum.Enum):
    PENDING = "pending"   #: exists but not yet admitted to any SP
    RUNNING = "running"   #: has processed at least one batch
    DONE = "done"         #: input consumed and terminal finalized


#: Batch outcome markers returned by :meth:`Fragment.process_batch`.
BATCH_OK = "ok"
BATCH_EMPTY = "empty"
BATCH_FINISHED = "finished"
BATCH_OVERFLOW = "overflow"

FragmentInput = Union[SourceQueue, TempReader]


class Fragment:
    """One executable query fragment."""

    def __init__(self, runtime: "QueryRuntime", name: str, kind: FragmentKind,
                 chain: PipelineChain, operators: list[Operator],
                 source: FragmentInput):
        if not operators:
            raise SchedulingError(f"fragment {name!r} has no operators")
        self.runtime = runtime
        self.name = name
        self.kind = kind
        self.chain = chain
        self.operators = list(operators)
        self._carry_keys = [(chain.name, op.name) for op in self.operators]
        self.source = source
        #: fractional-tuple accumulators, shared per (chain, operator
        #: name) across all fragments of the chain: a degraded chain's
        #: MF/CF/PC parts then produce exactly the same totals as the
        #: undivided pipeline would, whatever the interleaving.
        self._carry_pool = runtime.carry_pool
        self.status = FragmentStatus.PENDING
        #: a suspended fragment is never C-schedulable (the PC part of a
        #: degraded chain stays suspended while its MF runs).
        self.suspended = False
        #: set by the scheduler to stop a materialization fragment early
        #: ("partial materialization", Section 3.3): the fragment
        #: finalizes on its next turn, leaving unconsumed data for the PC.
        self.stop_requested = False
        # Terminal sink state (set lazily / by the runtime):
        self.hash_table: Optional[HashTable] = None
        self.temp_writer: Optional[TempWriter] = None
        #: tuples that could not be inserted on a memory overflow; the
        #: DQO's revision must dispose of them.
        self.pending_spill = 0
        # Statistics.
        self.tuples_in = 0
        self.tuples_out = 0
        self.batches = 0
        self.cpu_seconds = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- structure ---------------------------------------------------------
    @property
    def terminal(self) -> Operator:
        return self.operators[-1]

    @property
    def builds_join(self) -> Optional[str]:
        """Name of the join whose hash table this fragment builds, if any."""
        terminal = self.terminal
        if isinstance(terminal, MatOp) and terminal.join is not None:
            return terminal.join.name
        return None

    @property
    def writes_temp(self) -> bool:
        terminal = self.terminal
        return isinstance(terminal, MatOp) and terminal.join is None

    @property
    def is_output(self) -> bool:
        return isinstance(self.terminal, OutputOp)

    def probed_joins(self) -> list[str]:
        """Names of the joins probed inside this fragment."""
        return [op.join.name for op in self.operators if isinstance(op, ProbeOp)]

    # -- data availability ---------------------------------------------------
    @property
    def source_exhausted(self) -> bool:
        if isinstance(self.source, SourceQueue):
            return self.source.exhausted
        return self.source.exhausted

    def has_work(self) -> bool:
        """True if processing or finalization can make progress *now*.

        Neither source kind ever blocks the DQP inside a batch: queues
        hold arrived messages, temp readers hold prefetched tuples.  A
        stop request or an exhausted source leaves finalization work.
        """
        if self.status is FragmentStatus.DONE:
            return False
        if self.stop_requested or self.source_exhausted:
            return True
        if isinstance(self.source, SourceQueue):
            return self.source.has_data()
        return self.source.has_data()

    def wait_event(self) -> SimEvent:
        """Event that fires when this fragment may have work again."""
        if isinstance(self.source, SourceQueue):
            return self.source.data_event()
        return self.source.wait_event()

    # -- execution -----------------------------------------------------------
    def process_batch(self, max_tuples: int) -> Generator[SimEvent, Any, str]:
        """Process one batch; returns a ``BATCH_*`` marker. ``yield from`` me."""
        if self.status is FragmentStatus.DONE:
            raise SchedulingError(f"fragment {self.name!r} already done")
        if self.status is FragmentStatus.PENDING:
            self.status = FragmentStatus.RUNNING
            self.started_at = self.runtime.world.sim.now
        if self.stop_requested or self.source_exhausted:
            yield from self._finalize()
            return BATCH_FINISHED

        if isinstance(self.source, SourceQueue):
            count = self.source.take_batch(max_tuples)
        else:
            count = self.source.read_now(max_tuples)
        if count == 0:
            # EOF-only message, or the prefetcher has not caught up yet.
            if self.source_exhausted:
                yield from self._finalize()
                return BATCH_FINISHED
            return BATCH_EMPTY

        instructions, terminal_tuples = self._flow(count)
        world = self.runtime.world
        yield from world.cpu.work(instructions)
        # Pure operator work: queueing behind other CPU users (message
        # receives, I/O issue costs) is overhead, not fragment work.
        self.cpu_seconds += world.params.instructions_seconds(instructions)
        self.tuples_in += count
        self.batches += 1

        outcome = yield from self._sink(terminal_tuples)
        if outcome is not None:
            return outcome
        self.tuples_out += terminal_tuples

        if self.source_exhausted:
            yield from self._finalize()
            return BATCH_FINISHED
        return BATCH_OK

    def _flow(self, count: int) -> tuple[float, int]:
        """Instruction cost and terminal tuple count for ``count`` inputs."""
        params = self.runtime.world.params
        instructions = 0.0
        flowing: float = count
        for i, op in enumerate(self.operators):
            if isinstance(op, ScanOp):
                instructions += flowing * params.move_tuple_instructions
                flowing = self._carry(i, flowing * op.scan_selectivity)
            elif isinstance(op, ProbeOp):
                instructions += flowing * params.hash_search_instructions
                flowing = self._carry(i, flowing * op.join.actual_fanout())
                instructions += flowing * params.produce_tuple_instructions
            elif isinstance(op, MatOp):
                instructions += flowing * params.move_tuple_instructions
            elif isinstance(op, OutputOp):
                pass
            else:
                raise SchedulingError(f"unknown operator {op!r} in {self.name!r}")
        return instructions, int(flowing)

    def _carry(self, op_index: int, value: float) -> int:
        """Accumulate fractional tuples so totals match cardinalities."""
        key = self._carry_keys[op_index]
        total = value + self._carry_pool.get(key, 0.0)
        whole = int(total)
        self._carry_pool[key] = total - whole
        return whole

    def _sink(self, tuples: int) -> Generator[SimEvent, Any, Optional[str]]:
        """Deliver ``tuples`` to the terminal; returns an outcome on overflow."""
        if self.builds_join is not None:
            table = self._require_table()
            if not table.insert(tuples):
                self.pending_spill = tuples
                return BATCH_OVERFLOW
        elif self.writes_temp:
            self._require_writer().write(tuples)
        elif self.is_output:
            if tuples > 0 and self.runtime.result_tuples == 0:
                self.runtime.first_result_at = self.runtime.world.sim.now
            self.runtime.result_tuples += tuples
        else:
            raise SchedulingError(
                f"fragment {self.name!r} has unsupported terminal "
                f"{self.terminal!r}")
        return None
        yield  # pragma: no cover - makes this a generator for uniformity

    def _finalize(self) -> Generator[SimEvent, Any, None]:
        # Hash-table sealing and release are chain-level concerns handled
        # by the runtime: a degraded chain's CF and PC parts both insert
        # into (and probe against) the same tables.
        if self.status is FragmentStatus.DONE:
            return
        if self.writes_temp:
            yield from self._require_writer().finish()
        self.status = FragmentStatus.DONE
        self.finished_at = self.runtime.world.sim.now
        registry = self.runtime.world.telemetry.registry
        registry.counter("fragments.completed",
                         "Query fragments run to completion.").inc()
        if self.started_at is not None:
            registry.histogram(
                "fragments.duration_seconds",
                help="Wall (virtual) time from first batch to finalize."
            ).observe(self.finished_at - self.started_at)
        self.runtime.on_fragment_done(self)

    def _require_table(self) -> HashTable:
        if self.hash_table is None:
            raise SimulationError(
                f"fragment {self.name!r} runs without its hash table "
                "(was it admitted through the scheduler?)")
        return self.hash_table

    def _require_writer(self) -> TempWriter:
        if self.temp_writer is None:
            raise SimulationError(
                f"fragment {self.name!r} runs without its temp writer")
        return self.temp_writer

    def describe(self) -> str:
        ops = " -> ".join(
            op.name if not isinstance(op, MatOp) else
            (f"mat[{op.join.name}]" if op.join else "mat[temp]")
            for op in self.operators)
        source = (self.source.source if isinstance(self.source, SourceQueue)
                  else self.source.temp.name)
        return f"{self.name}({self.kind.value}) {source}: {ops}"

    def __repr__(self) -> str:
        return (f"Fragment({self.name!r}, {self.kind.value}, "
                f"{self.status.value}, in={self.tuples_in})")
