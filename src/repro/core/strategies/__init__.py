"""Execution strategies (Section 5.1.2).

All strategies share the same lower-level machinery — fragments, DQP,
memory admission — and differ only in their *planning policy*:

* :class:`SequentialPolicy` (**SEQ**) — the classical iterator model: one
  pipeline chain at a time, in left-to-right recursion order;
* :class:`MaterializeAllPolicy` (**MA**) — the strategy of Urhan et
  al. [1]: first materialize every remote relation on the local disk
  (overlapping all delivery delays), then execute sequentially from disk;
* :class:`DsePolicy` (**DSE**) — the paper's contribution: dynamic
  scheduling with critical-degree priorities and bmi-gated PC degradation;
* :func:`lower_bound` (**LWB**) — the analytic response-time lower bound
  no strategy can beat.
"""

from repro.core.strategies.base import PlanningPolicy
from repro.core.strategies.seq import SequentialPolicy
from repro.core.strategies.ma import MaterializeAllPolicy
from repro.core.strategies.dse import DsePolicy
from repro.core.strategies.concurrent import ConcurrentOnlyPolicy
from repro.core.strategies.lwb import lower_bound

__all__ = [
    "ConcurrentOnlyPolicy",
    "DsePolicy",
    "MaterializeAllPolicy",
    "PlanningPolicy",
    "SequentialPolicy",
    "lower_bound",
    "make_policy",
]


def make_policy(name: str) -> PlanningPolicy:
    """Instantiate a policy by its short name.

    ``"SEQ"``, ``"MA"``, ``"DSE"`` are the paper's strategies;
    ``"DSE-ND"`` is the no-degradation ablation.
    """
    policies = {
        "SEQ": SequentialPolicy,
        "MA": MaterializeAllPolicy,
        "DSE": DsePolicy,
        "DSE-ND": ConcurrentOnlyPolicy,
    }
    try:
        return policies[name.upper()]()
    except KeyError:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"choose from {sorted(policies)}") from None
