"""Planning-policy base class (re-exported from the scheduler module).

The abstract interface lives with the DQS because admission is the
scheduler's job; strategies only choose and order candidates.
"""

from repro.core.dqs import PlanningPolicy

__all__ = ["PlanningPolicy"]
