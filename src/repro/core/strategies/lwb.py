"""LWB: the analytic response-time lower bound (Section 5.1.2).

    LWB(Q) = max(  Σ_p n_p · c_p ,   max_p (n_p · w_p)  )

The first term is the total mediator CPU work (the engine is a
monoprocessor: it cannot finish before having executed every
instruction); the second is the retrieval time of the slowest wrapper
(the result is not complete before its last tuple arrived).  "No
execution strategy can obtain an execution time lower than LWB", and it
is generally not attainable.
"""

from __future__ import annotations

from typing import Mapping

from repro.common.errors import SchedulingError
from repro.config import SimulationParameters
from repro.core.metrics import chain_cpu_seconds_per_source_tuple
from repro.plan.qep import QEP


def lower_bound(qep: QEP, mean_waits: Mapping[str, float],
                params: SimulationParameters) -> float:
    """The LWB for ``qep`` given each source's mean per-tuple wait.

    ``mean_waits`` maps every source relation to its analytic average
    waiting time (e.g. ``DelayModel.mean_wait()``); actual fanouts are
    used for the CPU term, since the bound is about what really executes.
    """
    total_cpu = 0.0
    slowest_retrieval = 0.0
    for chain in qep.chains:
        source = chain.source_relation
        try:
            wait = mean_waits[source]
        except KeyError:
            raise SchedulingError(
                f"no mean wait provided for source {source!r}") from None
        tuples = chain.scan.estimated_input_cardinality
        cpu = chain_cpu_seconds_per_source_tuple(
            chain.operators, params, include_receive=True, use_actuals=True)
        total_cpu += tuples * cpu
        slowest_retrieval = max(slowest_retrieval, tuples * wait)
    return max(total_cpu, slowest_retrieval)
