"""DSE: Dynamic Scheduling Execution — the paper's strategy.

Each planning phase (Section 4.5):

1. take the current delivery-rate snapshot from the communication
   manager (and re-arm its rate-change baseline);
2. *degrade* critical, non-C-schedulable PCs whose benefit
   materialization indicator exceeds the threshold ``bmt`` (Section 4.4);
3. collect every C-schedulable fragment and order by **critical degree**
   (Section 4.3), most critical first — local (temp-backed) fragments
   have no waiting time, so they sort naturally to the back;
4. memory admission is handled by the shared scheduler.

The returned order is the DQP's priority list: a lower-priority fragment
only gets a batch when every higher-priority fragment is out of data.
"""

from __future__ import annotations

from repro.config import SimulationParameters
from repro.core.dqs import PlanningPolicy
from repro.core.fragments import Fragment, FragmentKind, FragmentStatus
from repro.core.metrics import (
    benefit_materialization_indicator,
    chain_cpu_seconds_per_source_tuple,
    critical_degree,
)
from repro.core.runtime import QueryRuntime
from repro.mediator.queues import SourceQueue
from repro.plan.qep import PipelineChain


class DsePolicy(PlanningPolicy):
    """Critical-degree scheduling with bmi-gated PC degradation."""

    name = "DSE"
    wants_rate_events = True
    supports_memory_degradation = True

    def __init__(self):
        self.last_priorities: dict[str, float] = {}
        self.degradations: list[str] = []

    def select(self, runtime: QueryRuntime) -> list[Fragment]:
        params = runtime.world.params
        waits = runtime.world.cm.wait_snapshot(default=params.w_min)
        runtime.world.cm.arm_rate_baseline()

        runtime.advance_degraded_chains()
        self._stop_satisfied_materializations(runtime)
        self._degrade_critical_chains(runtime, waits)

        candidates = [fragment for fragment in runtime.live_fragments()
                      if runtime.is_c_schedulable(fragment)]
        chain_index = {chain.name: i
                       for i, chain in enumerate(runtime.qep.chains)}
        keys = {fragment.name: self._priority_key(runtime, fragment, waits,
                                                  chain_index)
                for fragment in candidates}
        self.last_priorities = {name: key[1] for name, key in keys.items()}
        candidates.sort(key=lambda f: (
            -keys[f.name][0],          # band: sparse > dense > local
            keys[f.name][2],           # dense band: pipeline before MF
            -keys[f.name][1],          # critical degree within the band
            chain_index[f.chain.name],
            runtime.chain_fragments[f.chain.name].index(f),
        ))
        return candidates

    def priorities(self, runtime: QueryRuntime) -> dict[str, float]:
        return dict(self.last_priorities)

    # -- partial materialization (Section 3.3) -----------------------------
    @staticmethod
    def _stop_satisfied_materializations(runtime: QueryRuntime) -> None:
        """Stop MFs whose chains have become schedulable.

        The remaining wrapper data then streams through the pipeline
        directly — materialization stays *partial*, covering only the
        period during which the chain was blocked.
        """
        for chain in runtime.qep.chains:
            if chain.name not in runtime.degraded_chains:
                continue
            mf = runtime.chain_fragments[chain.name][0]
            if (mf.kind is FragmentKind.MATERIALIZATION
                    and mf.status is not FragmentStatus.DONE
                    and not mf.stop_requested):
                ancestors_done = all(runtime.chain_complete(name)
                                     for name in runtime.closure[chain.name])
                if ancestors_done and runtime.memory_stop_allowed(chain):
                    runtime.request_stop_materialization(chain)

    # -- degradation (Section 4.4) ----------------------------------------
    def _degrade_critical_chains(self, runtime: QueryRuntime,
                                 waits: dict[str, float]) -> None:
        params = runtime.world.params
        io_per_tuple = self._bmi_io_seconds(params)
        for chain in runtime.qep.chains:
            if (chain.name in runtime.degraded_chains
                    or runtime.chain_complete(chain.name)):
                continue
            fragment = runtime.fragments.get(chain.name)
            if fragment is None or fragment.status is not FragmentStatus.PENDING:
                continue
            if runtime.is_c_schedulable(fragment):
                continue  # will run in pipeline; no reason to materialize
            remaining = runtime.remaining_source_tuples(chain)
            if remaining <= 2 * params.tuples_per_message:
                continue  # nothing worth materializing anymore
            wait = waits.get(chain.source_relation, params.w_min)
            cpu = chain_cpu_seconds_per_source_tuple(chain.operators, params)
            crit = critical_degree(remaining, wait, cpu)
            if crit <= 0:
                continue
            bmi = benefit_materialization_indicator(wait, io_per_tuple)
            if bmi > params.bmt:
                runtime.degrade_chain(chain, decision_inputs=dict(
                    critical=crit, bmi=bmi, bmt=params.bmt,
                    wait_per_tuple=wait, remaining_tuples=remaining))
                self.degradations.append(chain.name)

    @staticmethod
    def _bmi_io_seconds(params: SimulationParameters) -> float:
        """``IO_p`` for the bmi: sequential transfer time of one tuple.

        The materialization fragment streams through the write-behind
        path, so the positioning costs are a second-order term the rough
        bmi approximation ignores (the *charged* simulation costs include
        them in full).
        """
        return params.tuple_size / params.disk_transfer_rate

    # -- priorities (Section 4.3, plus demand banding) -----------------------
    #
    # The paper orders fragments by critical degree and the DQP serves
    # them in strict priority.  Strict priority is only safe when the
    # top fragments have *sparse* data (w >> c): their rare batches
    # preempt nothing for long.  When several fragments are *dense*
    # (c comparable to w, i.e. the CPU cannot keep up with everyone),
    # whoever sits on top monopolizes the processor and — much worse —
    # a starved pipeline chain stalls the whole dependency DAG behind
    # it.  The paper itself observes that its total order misbehaves
    # "when several PC's have quite the same critical degree"
    # (Section 5.3); the banding below is our concrete resolution:
    #
    #   band 2 — sparse remote fragments (c/w <= threshold), by
    #            critical degree: the paper's rule where it works;
    #   band 1 — dense remote fragments: pipeline chains first (they
    #            gate the DAG), then materializations, iterator order;
    #   band 0 — local replay fragments (CF/CONT): data always
    #            available, so they absorb whatever is left.
    def _priority_key(self, runtime: QueryRuntime, fragment: Fragment,
                      waits: dict[str, float],
                      chain_index: dict[str, int]) -> tuple[int, float, int]:
        params = runtime.world.params
        if isinstance(fragment.source, SourceQueue):
            wait = waits.get(fragment.source.source, params.w_min)
            remaining = runtime.remaining_source_tuples(fragment.chain)
            cpu = chain_cpu_seconds_per_source_tuple(fragment.operators, params)
            crit = critical_degree(remaining, wait, cpu)
            sparse = wait > 0 and (cpu / wait) <= params.sparse_demand_threshold
            if sparse:
                return (2, crit, 0)
            is_mf = fragment.kind is FragmentKind.MATERIALIZATION
            return (1, crit, 1 if is_mf else 0)
        # Temp-backed fragment: the local disk never makes the engine
        # wait for "delivery"; its (negative) critical degree is -n*c.
        remaining = fragment.source.temp.tuples - fragment.source.tuples_read
        cpu = chain_cpu_seconds_per_source_tuple(
            fragment.operators, params, include_receive=False)
        return (0, critical_degree(max(0.0, remaining), 0.0, cpu), 0)
