"""DSE-ND: dynamic scheduling *without* PC degradation (ablation).

Section 2.3 sketches this intermediate design before introducing
materialization: "interleave the execution of several parts of the
query, i.e., PC's … However, this approach is limited by the number of
PC's which can be executed concurrently (due to dependency constraints
…)".  DSE-ND isolates how much of DSE's gain comes from concurrent
scheduling alone and how much from degradation: it orders C-schedulable
fragments exactly like DSE but never creates materialization fragments.
"""

from __future__ import annotations

from repro.core.fragments import Fragment
from repro.core.runtime import QueryRuntime
from repro.core.strategies.dse import DsePolicy


class ConcurrentOnlyPolicy(DsePolicy):
    """DSE's priorities and interleaving, but no materialization ever."""

    name = "DSE-ND"

    def _degrade_critical_chains(self, runtime: QueryRuntime,
                                 waits: dict[str, float]) -> None:
        """Degradation disabled: blocked chains simply wait."""

    def select(self, runtime: QueryRuntime) -> list[Fragment]:
        # No degradations ever happen, so the partial-materialization
        # bookkeeping inherited from DsePolicy is all no-ops; the
        # selection logic itself is shared.
        return super().select(runtime)
