"""SEQ: the classical iterator-model execution (Section 2.3).

One pipeline chain at a time, in the QEP's iterator order; the engine
consumes a wrapper entirely before touching the next one, and therefore
stalls whenever the current wrapper is slow.  The paper uses SEQ as the
baseline "when nothing is done to handle unpredictable data delivery".
"""

from __future__ import annotations

from repro.core.dqs import PlanningPolicy
from repro.core.fragments import Fragment, FragmentStatus
from repro.core.runtime import QueryRuntime


class SequentialPolicy(PlanningPolicy):
    """Schedule exactly one fragment: the next one in iterator order."""

    name = "SEQ"
    wants_rate_events = False

    def select(self, runtime: QueryRuntime) -> list[Fragment]:
        for chain in runtime.qep.chains:
            if runtime.chain_complete(chain.name):
                continue
            for fragment in runtime.chain_fragments[chain.name]:
                if fragment.status is not FragmentStatus.DONE:
                    return [fragment]
        return []
