"""MA: Materialize All (Urhan, Franklin, Amsaleg [1]).

Two phases (Section 5.1.2): first, every remote relation is materialized
on the mediator's disk *simultaneously*, so delivery delays of different
sources overlap each other (but not query processing); second, the query
runs sequentially against the local copies.  MA pays the full
materialization I/O for every relation, which is why it loses when
delays are small relative to the I/O overhead (Section 5.4).
"""

from __future__ import annotations

from repro.core.dqs import PlanningPolicy
from repro.core.fragments import Fragment, FragmentKind, FragmentStatus
from repro.core.runtime import QueryRuntime


class MaterializeAllPolicy(PlanningPolicy):
    """Phase 1: all MFs concurrently; phase 2: sequential from disk."""

    name = "MA"
    wants_rate_events = False

    def select(self, runtime: QueryRuntime) -> list[Fragment]:
        self._ensure_degraded(runtime)
        runtime.advance_degraded_chains()
        materializations = [
            fragment
            for chain in runtime.qep.chains
            for fragment in runtime.chain_fragments[chain.name]
            if fragment.kind is FragmentKind.MATERIALIZATION
            and fragment.status is not FragmentStatus.DONE
        ]
        if materializations:
            return materializations
        # Phase 2: iterator order over the complement fragments.
        for chain in runtime.qep.chains:
            if runtime.chain_complete(chain.name):
                continue
            for fragment in runtime.chain_fragments[chain.name]:
                if fragment.status is not FragmentStatus.DONE:
                    return [fragment]
        return []

    @staticmethod
    def _ensure_degraded(runtime: QueryRuntime) -> None:
        """Degrade every chain once, on the first planning phase.

        MA materializes "on the disk of the mediator" ([1]) — never into
        query memory, whatever the configuration says.
        """
        for chain in runtime.qep.chains:
            if chain.name not in runtime.degraded_chains:
                runtime.degrade_chain(chain, prefer_memory=False)
