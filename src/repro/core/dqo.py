"""The Dynamic QEP Optimizer (Sections 3.1 and 4.2).

The DQO owns the outer execution loop: it drives planning phases
(delegated to the DQS) and execution phases (the DQP), and handles the
interruption events that may invalidate the QEP itself:

* **MemoryOverflow** — a fragment is not M-schedulable; the DQO applies
  the technique of [4]: insert a materialization at the highest possible
  point, producing an always-M-schedulable first fragment and a
  continuation (see :meth:`QueryRuntime.split_for_memory`);
* **TimeOut** — the engine stalled badly; a full system would trigger
  run-time re-optimization (phase 2 of query scrambling [15]); this
  implementation records the event and resumes waiting, keeping the hook
  where re-optimization would plug in.

Normal events (EndOfQF, PhaseComplete, RateChange) simply start the next
planning phase.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.common.errors import (
    MemoryOverflowError,
    QueryTimeoutError,
    SchedulingError,
)
from repro.core.dqp import DynamicQueryProcessor
from repro.core.dqs import DynamicQueryScheduler
from repro.core.events import (
    BudgetGrow,
    EndOfQEP,
    MemoryOverflow,
    RateChange,
    TimeOut,
)
from repro.core.fragments import FragmentKind
from repro.core.runtime import QueryRuntime
from repro.observability import (
    SPAN_EXEC_PHASE,
    SPAN_LEASE_GROW,
    SPAN_PLANNING,
    SPAN_RATE_REPLAN,
)
from repro.exec import SimEvent


class DynamicQEPOptimizer:
    """Outer loop: plan, execute, react."""

    def __init__(self, runtime: QueryRuntime,
                 scheduler: DynamicQueryScheduler,
                 processor: DynamicQueryProcessor):
        self.runtime = runtime
        self.scheduler = scheduler
        self.processor = processor
        registry = runtime.world.telemetry.registry
        self._timeout_metric = registry.counter(
            "dqo.timeouts", "TimeOut interruptions handled.")
        self._overflow_metric = registry.counter(
            "dqo.overflows", "Memory-overflow splits applied.")
        self.timeouts = 0
        self._consecutive_timeouts = 0
        self.overflows_handled = 0
        self.rate_changes = 0
        self.budget_grows = 0
        #: joins whose observed build size invalidated the estimates —
        #: each is a re-optimization opportunity a plan-revision module
        #: (à la [9]/[15] phase 2) would act on.
        self.reopt_opportunities: list[str] = []
        #: joins whose sides the DQO actually swapped
        #: (``enable_reoptimization``).
        self.reopt_swaps: list[str] = []

    def run(self) -> Generator[SimEvent, Any, EndOfQEP]:
        """Execute the query to completion. ``yield from`` me (or wrap in
        a simulation process)."""
        world = self.runtime.world
        spans = world.telemetry.spans
        query_span = self.runtime.query_span
        if spans is not None and query_span is not None:
            spans.spans[query_span].attrs["strategy"] = \
                self.scheduler.policy.name
        #: span id of the event that *caused* the next planning phase
        #: (a lease grow or rate change); None for ordinary progress.
        replan_cause = None
        if self.scheduler.policy.wants_rate_events:
            world.cm.set_rate_listener(self.processor.notify_rate_change)
        while True:
            if spans is not None:
                planning_span = spans.begin(
                    SPAN_PLANNING,
                    f"planning-{self.scheduler.planning_phases + 1}",
                    parent_id=query_span, caused_by=replan_cause)
                replan_cause = None
            yield from world.cpu.work(world.params.planning_instructions)
            sp = self.scheduler.plan()
            if spans is not None:
                spans.finish(planning_span, fragments=len(sp.fragments))

            if sp.overflow_fragment is not None:
                self._handle_overflow_fragment(sp.overflow_fragment)
                continue
            if not sp.fragments:
                raise SchedulingError(
                    "planning produced no schedulable fragment although the "
                    "query is not complete")

            if spans is not None:
                phase_span = spans.begin(
                    SPAN_EXEC_PHASE,
                    f"exec-{self.scheduler.planning_phases}",
                    parent_id=query_span, caused_by=planning_span,
                    fragments=[f.name for f in sp.fragments])
                self.processor.current_phase_span = phase_span

            event = yield from self.processor.execute(sp)

            if spans is not None:
                spans.finish(phase_span, outcome=type(event).__name__)
                self.processor.current_phase_span = None
                if isinstance(event, BudgetGrow):
                    replan_cause = spans.instant(
                        SPAN_LEASE_GROW, "lease-grow", parent_id=query_span,
                        granted_bytes=event.granted_bytes,
                        total_bytes=event.total_bytes)
                elif isinstance(event, RateChange):
                    replan_cause = spans.instant(
                        SPAN_RATE_REPLAN, f"rate-change:{event.source}",
                        parent_id=query_span, source=event.source,
                        old_wait=event.old_wait, new_wait=event.new_wait)

            self._check_estimates()

            if isinstance(event, EndOfQEP):
                world.tracer.emit("qep-end", "query complete",
                                  result_tuples=event.result_tuples)
                if spans is not None and query_span is not None:
                    spans.finish(query_span,
                                 result_tuples=event.result_tuples)
                return event
            if isinstance(event, MemoryOverflow):
                fragment = self.runtime.fragments[event.fragment_name]
                self._handle_overflow_fragment(fragment)
                self._consecutive_timeouts = 0
            elif isinstance(event, TimeOut):
                self.timeouts += 1
                self._timeout_metric.inc()
                self._consecutive_timeouts += 1
                world.tracer.emit(
                    "timeout", "engine stalled; re-optimization hook",
                    stalled_for=event.stalled_for)
                limit = world.params.max_consecutive_timeouts
                if limit and self._consecutive_timeouts >= limit:
                    raise QueryTimeoutError(
                        self._consecutive_timeouts,
                        self._consecutive_timeouts * world.params.timeout)
            else:
                # EndOfQF / PhaseComplete / RateChange / BudgetGrow: real
                # progress or new information; replan on the next loop.
                self._consecutive_timeouts = 0
                if isinstance(event, RateChange):
                    self.rate_changes += 1
                elif isinstance(event, BudgetGrow):
                    self.budget_grows += 1
                    world.tracer.emit(
                        "budget-grow", "lease grew; replanning",
                        granted_bytes=event.granted_bytes,
                        total_bytes=event.total_bytes)

    def _check_estimates(self) -> None:
        """Flag observed cardinality misestimates; optionally act on them.

        Detection always runs (Section 3.1's statistics feedback); with
        ``enable_reoptimization`` the DQO additionally applies the one
        plan revision that is safe mid-flight: swapping the build/probe
        sides of still-pending joins whose *corrected* build estimate
        turned out larger than the probe side's.
        """
        threshold = self.runtime.world.params.reoptimization_threshold
        found_new = False
        for observation in self.runtime.statistics.misestimated_joins(threshold):
            if observation.join_name in self.reopt_opportunities:
                continue
            found_new = True
            self.reopt_opportunities.append(observation.join_name)
            self.runtime.world.tracer.emit(
                "reopt-opportunity", observation.join_name,
                estimated=observation.estimated_build,
                observed=observation.observed_build,
                ratio=observation.error_ratio)
        if found_new and self.runtime.world.params.enable_reoptimization:
            self._swap_misoriented_joins()

    def _swap_misoriented_joins(self) -> None:
        """Swap pending joins whose corrected orientation is wrong."""
        params = self.runtime.world.params
        for join_name in list(self.runtime.qep.joins):
            if not self.runtime.can_swap_join(join_name):
                continue
            join = self.runtime.qep.joins[join_name]
            corrected_build = self._corrected_cardinality(
                join.build_relations, join.estimated_build_cardinality)
            corrected_probe = self._corrected_cardinality(
                join.probe_relations, join.estimated_probe_cardinality)
            if corrected_build > corrected_probe * params.reopt_swap_margin:
                self.runtime.swap_pending_join(join_name, decision_inputs=dict(
                    corrected_build=corrected_build,
                    corrected_probe=corrected_probe,
                    swap_margin=params.reopt_swap_margin))
                self.reopt_swaps.append(join_name)

    def _corrected_cardinality(self, relations: tuple[str, ...],
                               estimate: float) -> float:
        """Scale an estimate by the best applicable observed error.

        Uses the largest observed relation-set contained in ``relations``
        (independence assumption for everything outside it) — the same
        correction a statistics-propagating re-optimizer would make.
        """
        inside = set(relations)
        best_obs = None
        best_size = 0
        for observation in self.runtime.statistics.observations():
            if observation.observed_build is None:
                continue
            join = self.runtime.qep.joins.get(observation.join_name)
            if join is None:
                continue
            observed_set = set(join.build_relations)
            if observed_set <= inside and len(observed_set) > best_size:
                best_obs = observation
                best_size = len(observed_set)
        if best_obs is None or best_obs.error_ratio is None:
            return estimate
        return estimate * best_obs.error_ratio

    def _handle_overflow_fragment(self, fragment) -> None:
        if fragment.kind is FragmentKind.CONTINUATION:
            # Splitting a continuation reproduces the same fragment: the
            # query genuinely does not fit in the memory budget.
            raise MemoryOverflowError(
                fragment.chain.name,
                required=self.runtime.table_estimate_bytes(
                    fragment.builds_join or ""),
                available=self.runtime.world.memory.available_bytes)
        self.overflows_handled += 1
        self._overflow_metric.inc()
        self.runtime.split_for_memory(fragment)
