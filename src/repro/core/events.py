"""Interruption events (Section 3.1).

The DQP returns an interruption event to the DQS when an execution phase
must end; the DQS handles it or passes it to the DQO.  "Normal"
interruptions signal the end of a query fragment or of the whole QEP;
"abnormal" interruptions signal a significant change that may invalidate
the scheduling plan (RateChange), a stalled engine (TimeOut) or a memory
problem only the DQO can fix (MemoryOverflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class InterruptionEvent:
    """Base class for every interruption returned by the DQP."""

    time: float

    @property
    def is_abnormal(self) -> bool:
        """Abnormal events may require revising the SP or the QEP."""
        return True


@dataclass(frozen=True)
class EndOfQF(InterruptionEvent):
    """A scheduled query fragment terminated (normal; handled by the DQS)."""

    fragment_name: str = ""

    @property
    def is_abnormal(self) -> bool:
        return False


@dataclass(frozen=True)
class EndOfQEP(InterruptionEvent):
    """The whole plan terminated (normal; handled by the DQO)."""

    result_tuples: int = 0

    @property
    def is_abnormal(self) -> bool:
        return False


@dataclass(frozen=True)
class PhaseComplete(InterruptionEvent):
    """Every fragment of the current SP is done but the QEP is not.

    Normal; the DQS must plan the next phase (typically fragments that
    just became C-schedulable).
    """

    @property
    def is_abnormal(self) -> bool:
        return False


@dataclass(frozen=True)
class RateChange(InterruptionEvent):
    """Some source's delivery rate moved significantly (DQS replans)."""

    source: str = ""
    old_wait: float = 0.0
    new_wait: float = 0.0


@dataclass(frozen=True)
class BudgetGrow(InterruptionEvent):
    """The query's memory lease grew (broker offered reclaimed bytes).

    The DQS replans against the larger budget: a chain degraded for
    memory whose build table now fits gets its MF stopped and resumes
    direct scheduling (partial materialization, Section 4.4 — but
    triggered by a *grown* budget rather than a schedulability change).
    """

    granted_bytes: int = 0
    total_bytes: int = 0


@dataclass(frozen=True)
class TimeOut(InterruptionEvent):
    """The DQP stalled with no data on any scheduled fragment (DQO)."""

    stalled_for: float = 0.0


@dataclass(frozen=True)
class MemoryOverflow(InterruptionEvent):
    """A fragment cannot proceed within the memory budget (DQO).

    ``pending_tuples`` is the batch that could not be inserted into the
    overflowing hash table; the DQO's revision must dispose of it.
    """

    fragment_name: str = ""
    join_name: str = ""
    pending_tuples: int = 0
    required_bytes: int = 0
    available_bytes: int = 0
