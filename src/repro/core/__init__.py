"""The paper's core contribution: dynamic query scheduling.

Architecture (Figure 4 of the paper):

* the **Dynamic QEP Optimizer** (:mod:`repro.core.dqo`) owns the QEP and
  handles events that invalidate it (memory overflow, timeouts);
* the **Dynamic Query Scheduler** (:mod:`repro.core.dqs`) turns the QEP
  plus runtime state into a *scheduling plan* — a totally ordered list of
  query fragments;
* the **Dynamic Query Processor** (:mod:`repro.core.dqp`) interleaves the
  scheduled fragments at batch granularity and returns interruption
  events up the chain.

The three components interact synchronously; wrappers and the
communication manager run as concurrent simulation processes.
:mod:`repro.core.engine` wires everything together and
:mod:`repro.core.strategies` provides SEQ / MA / DSE / LWB.
"""

from repro.core.events import (
    EndOfQEP,
    EndOfQF,
    InterruptionEvent,
    MemoryOverflow,
    PhaseComplete,
    RateChange,
    TimeOut,
)
from repro.core.fragments import Fragment, FragmentKind, FragmentStatus
from repro.core.metrics import (
    benefit_materialization_indicator,
    chain_cpu_seconds_per_source_tuple,
    critical_degree,
)
from repro.core.runtime import QueryRuntime, World
from repro.core.engine import ExecutionResult, QueryEngine
from repro.core.multiquery import (
    MultiQueryEngine,
    MultiQueryResult,
    QueryOutcome,
    QuerySubmission,
)
from repro.core.statistics import JoinObservation, RuntimeStatistics
from repro.core.symmetric import (
    SymmetricHashJoinEngine,
    SymmetricPlan,
    SymmetricResult,
)
from repro.core.dqs import DynamicQueryScheduler, SchedulingPlan
from repro.core.dqp import DynamicQueryProcessor
from repro.core.dqo import DynamicQEPOptimizer

__all__ = [
    "DynamicQEPOptimizer",
    "DynamicQueryProcessor",
    "DynamicQueryScheduler",
    "EndOfQEP",
    "EndOfQF",
    "ExecutionResult",
    "Fragment",
    "FragmentKind",
    "FragmentStatus",
    "InterruptionEvent",
    "JoinObservation",
    "MemoryOverflow",
    "MultiQueryEngine",
    "MultiQueryResult",
    "PhaseComplete",
    "QueryEngine",
    "QueryOutcome",
    "QueryRuntime",
    "QuerySubmission",
    "RuntimeStatistics",
    "RateChange",
    "SchedulingPlan",
    "SymmetricHashJoinEngine",
    "SymmetricPlan",
    "SymmetricResult",
    "TimeOut",
    "World",
    "benefit_materialization_indicator",
    "chain_cpu_seconds_per_source_tuple",
    "critical_degree",
]
