"""The query engine: one simulated execution end to end.

:class:`QueryEngine` builds a fresh :class:`World`, spawns the wrapper
processes, wires DQO → DQS → DQP around the chosen planning policy, runs
the simulation to completion and collects an :class:`ExecutionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.catalog.catalog import Catalog
from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SimulationParameters
from repro.core.dqo import DynamicQEPOptimizer
from repro.core.dqp import DynamicQueryProcessor
from repro.core.dqs import DynamicQueryScheduler, PlanningPolicy
from repro.core.events import EndOfQEP
from repro.core.runtime import QueryRuntime, World
from repro.core.statistics import RuntimeStatistics
from repro.core.strategies.lwb import lower_bound
from repro.observability import (
    DecisionRecord,
    MetricsRegistry,
    SamplePoint,
    Span,
    span_summary,
)
from repro.plan.qep import QEP
from repro.plan.validation import validate_qep
from repro.sim.tracing import Tracer
from repro.wrappers.delays import DelayModel
from repro.wrappers.source import Wrapper


@dataclass(frozen=True)
class FragmentStat:
    """Lifecycle summary of one query fragment."""

    name: str
    kind: str
    chain: str
    started_at: Optional[float]
    finished_at: Optional[float]
    tuples_in: int
    tuples_out: int
    batches: int
    cpu_seconds: float

    @property
    def duration(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at


@dataclass
class ExecutionResult:
    """Everything measured during one simulated execution."""

    strategy: str
    response_time: float
    result_tuples: int
    #: virtual time at which the first result tuple was produced (None
    #: for an empty result) — the metric operator-level adaptation
    #: optimizes for.
    time_to_first_tuple: Optional[float] = None
    # Submission identity (set by the multi-tenant service; None for the
    # one-shot front-ends).
    submission_id: Optional[str] = None
    tenant: Optional[str] = None
    #: executing worker in a sharded `repro serve --workers N` fleet
    #: (None when the query ran in the coordinator/front-end process).
    worker_id: Optional[int] = None
    # Engine behaviour.
    planning_phases: int = 0
    context_switches: int = 0
    batches_processed: int = 0
    stall_time: float = 0.0
    degradations: int = 0
    memory_splits: int = 0
    timeouts: int = 0
    rate_change_events: int = 0
    # Resource usage.
    cpu_busy_time: float = 0.0
    cpu_utilization: float = 0.0
    disk_busy_time: float = 0.0
    disk_ios: int = 0
    disk_seeks: int = 0
    cache_hit_ratio: float = 0.0
    memory_peak_bytes: int = 0
    tuples_spilled: int = 0
    tuples_reloaded: int = 0
    # Per-wrapper detail: name -> (tuples sent, production time, blocked time).
    wrapper_stats: dict[str, tuple[int, float, float]] = field(default_factory=dict)
    #: lifecycle of every fragment the execution created.
    fragment_stats: dict[str, FragmentStat] = field(default_factory=dict)
    #: joins flagged by the DQO as re-optimization opportunities.
    reopt_opportunities: list[str] = field(default_factory=list)
    #: joins whose sides the DQO swapped (enable_reoptimization).
    reopt_swaps: list[str] = field(default_factory=list)
    #: observed runtime statistics (cardinalities, rate history).
    statistics: Optional["RuntimeStatistics"] = None
    tracer: Optional[Tracer] = None
    #: idle-time breakdown by cause; its values sum to ``stall_time``.
    stall_breakdown: dict[str, float] = field(default_factory=dict)
    #: scheduler decisions with the inputs that drove them.
    decisions: list[DecisionRecord] = field(default_factory=list)
    #: periodic occupancy samples (telemetry sampling enabled only).
    samples: list[SamplePoint] = field(default_factory=list)
    #: the run's metrics registry (None when telemetry was disabled).
    metrics: Optional[MetricsRegistry] = None
    #: causal span tree of the run (``telemetry_spans`` enabled only).
    spans: Optional[list[Span]] = None
    #: compact span-derived summary (count, response time, critical-path
    #: totals) — cheap enough to ship through result payloads.
    span_summary: Optional[dict] = None

    def stall_by_cause(self) -> dict[str, float]:
        """Stall breakdown sorted largest first."""
        return dict(sorted(self.stall_breakdown.items(),
                           key=lambda item: (-item[1], item[0])))

    def summary(self) -> str:
        """One line suitable for experiment logs."""
        return (f"{self.strategy}: {self.response_time:.3f}s "
                f"({self.result_tuples} tuples, cpu {self.cpu_utilization:.0%}, "
                f"stall {self.stall_time:.3f}s, {self.degradations} degradations, "
                f"{self.tuples_spilled} spilled)")

    def timeline(self) -> list[FragmentStat]:
        """Fragment lifecycle rows ordered by start time (never-started
        fragments last)."""
        return sorted(self.fragment_stats.values(),
                      key=lambda s: (s.started_at is None,
                                     s.started_at or 0.0, s.name))

    def render_timeline(self) -> str:
        """A printable per-fragment schedule (for reports/examples)."""
        lines = [f"{'fragment':<12} {'kind':<5} {'start':>9} {'end':>9} "
                 f"{'in':>9} {'out':>9} {'cpu s':>8}"]
        for stat in self.timeline():
            start = f"{stat.started_at:.3f}" if stat.started_at is not None else "-"
            end = f"{stat.finished_at:.3f}" if stat.finished_at is not None else "-"
            lines.append(f"{stat.name:<12} {stat.kind:<5} {start:>9} {end:>9} "
                         f"{stat.tuples_in:>9} {stat.tuples_out:>9} "
                         f"{stat.cpu_seconds:>8.3f}")
        return "\n".join(lines)


def collect_execution_result(world: World, runtime: QueryRuntime,
                             scheduler: DynamicQueryScheduler,
                             processor: DynamicQueryProcessor,
                             optimizer: DynamicQEPOptimizer,
                             wrappers, end: EndOfQEP,
                             trace: bool = False) -> ExecutionResult:
    """Assemble the :class:`ExecutionResult` of one finished execution.

    Shared by every engine front-end (virtual-time :class:`QueryEngine`,
    multi-query launcher, the asyncio-backed live engine): wrappers only
    need ``name`` / ``tuples_sent`` / ``production_time`` /
    ``blocked_time`` attributes.
    """
    return ExecutionResult(
        strategy=scheduler.policy.name,
        response_time=end.time,
        result_tuples=runtime.result_tuples,
        time_to_first_tuple=runtime.first_result_at,
        planning_phases=scheduler.planning_phases,
        context_switches=processor.context_switches,
        batches_processed=processor.batches_processed,
        stall_time=processor.stall_time,
        degradations=len(runtime.degraded_chains),
        memory_splits=runtime.memory_splits,
        timeouts=optimizer.timeouts,
        rate_change_events=optimizer.rate_changes,
        cpu_busy_time=world.cpu.busy_time,
        cpu_utilization=(world.cpu.busy_time / end.time
                         if end.time > 0 else 0.0),
        disk_busy_time=sum(d.busy_time for d in world.disks),
        disk_ios=int(sum(d.ios.value for d in world.disks)),
        disk_seeks=int(sum(d.seeks.value for d in world.disks)),
        cache_hit_ratio=world.cache.hit_ratio(),
        memory_peak_bytes=world.memory.peak_bytes,
        tuples_spilled=int(world.buffer.tuples_spilled.value),
        tuples_reloaded=int(world.buffer.tuples_reloaded.value),
        wrapper_stats={w.name: (w.tuples_sent, w.production_time,
                                w.blocked_time)
                       for w in wrappers},
        fragment_stats={
            fragment.name: FragmentStat(
                name=fragment.name,
                kind=fragment.kind.value,
                chain=fragment.chain.name,
                started_at=fragment.started_at,
                finished_at=fragment.finished_at,
                tuples_in=fragment.tuples_in,
                tuples_out=fragment.tuples_out,
                batches=fragment.batches,
                cpu_seconds=fragment.cpu_seconds)
            for fragment in runtime.fragments.values()},
        reopt_opportunities=list(optimizer.reopt_opportunities),
        reopt_swaps=list(optimizer.reopt_swaps),
        statistics=runtime.statistics,
        tracer=world.tracer if trace else None,
        stall_breakdown=world.telemetry.stalls.by_cause(),
        decisions=list(world.telemetry.audit),
        samples=list(world.telemetry.samples),
        metrics=(world.telemetry.registry
                 if world.telemetry.enabled else None),
        spans=(list(world.telemetry.spans.spans)
               if world.telemetry.spans is not None else None),
        span_summary=(span_summary(world.telemetry.spans.spans)
                      if world.telemetry.spans is not None else None),
    )


class QueryEngine:
    """Runs one query with one strategy over simulated sources."""

    def __init__(self, catalog: Catalog, qep: QEP, policy: PlanningPolicy,
                 delay_models: Mapping[str, DelayModel],
                 params: Optional[SimulationParameters] = None,
                 seed: int = 0, trace: bool = False):
        self.catalog = catalog
        self.qep = qep
        self.policy = policy
        self.params = params if params is not None else SimulationParameters()
        self.seed = seed
        self.trace = trace
        validate_qep(qep)
        self.delay_models = dict(delay_models)
        missing = set(qep.source_relations()) - set(self.delay_models)
        if missing:
            raise ConfigurationError(
                f"no delay model for source(s): {sorted(missing)}")

    def run(self) -> ExecutionResult:
        """Execute once and collect the result."""
        world = World(self.params, seed=self.seed, trace=self.trace)
        wrappers: list[Wrapper] = []
        for source in self.qep.source_relations():
            model = self.delay_models[source]
            reset = getattr(model, "reset", None)
            if reset is not None:
                reset()  # one-shot models re-arm between repetitions
            wrapper = Wrapper(world.sim, self.catalog.relation(source), model,
                              world.cm, world.rng(f"wrapper:{source}"),
                              self.params)
            wrapper.start()
            wrappers.append(wrapper)

        runtime = QueryRuntime(world, self.qep)
        scheduler = DynamicQueryScheduler(runtime, self.policy)
        processor = DynamicQueryProcessor(runtime)
        optimizer = DynamicQEPOptimizer(runtime, scheduler, processor)
        main = world.sim.process(optimizer.run(), name="engine")
        # The engine handles its own failure below; keep the kernel's
        # unhandled-failure backstop from wrapping it first.
        main.defused = True

        if world.telemetry.sampling:
            world.telemetry.start_sampler(world.memory, world.cm)
            # Stop the periodic sampler when the engine ends (success or
            # failure), or its timeouts would keep the simulation alive.
            main.add_callback(lambda _event: world.telemetry.stop_sampler())

        world.sim.run()

        if main.failure is not None:
            raise main.failure
        if not isinstance(main.value, EndOfQEP):
            raise SimulationError(
                f"engine ended without EndOfQEP: {main.value!r}")
        if not runtime.all_done:
            raise SimulationError("simulation drained but query incomplete")

        return collect_execution_result(world, runtime, scheduler, processor,
                                        optimizer, wrappers, main.value,
                                        trace=self.trace)

    def lower_bound(self) -> float:
        """The analytic LWB for this engine's query and delay models."""
        waits = {name: model.mean_wait()
                 for name, model in self.delay_models.items()}
        return lower_bound(self.qep, waits, self.params)
