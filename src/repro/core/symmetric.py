"""DPHJ: operator-level adaptation via double-pipelined hash joins.

Section 1.1's first adaptation level: "using relational operators that
are able to absorb delays in delivery.  [8] has adapted the
double-pipelined hash join [16] … However, such an approach is
restricted to hash-based queries."

A double-pipelined (symmetric) hash join keeps **two** hash tables, one
per input; a tuple arriving on either side is inserted into its own
table and immediately probes the opposite one.  No input is blocking, so
the whole plan is a single pipeline region: the engine can consume any
source the moment data arrives, which absorbs delivery delays exactly
like DSE — at the price of holding *every* table of *both* sides in
memory simultaneously and of extra per-tuple work (every stream pays an
insert at every level it crosses).

Content-free semantics: when a batch of ``n`` tuples flows into a join
from one side while the opposite side has ``m`` of its eventual ``M``
tuples resident, the expected match count is ``n * σ * m`` (``σ`` the
crossing selectivity).  Every (left, right) pair is counted exactly once
— when its *later* element arrives — so totals converge to the exact
join cardinalities, independent of interleaving.

The engine half of this module mirrors :class:`~repro.core.engine.QueryEngine`
but runs one simple data-driven loop (round-robin over sources with
data): with symmetric operators there are no dependency constraints for
a scheduler to reason about, which is precisely why the paper's
contribution targets the scheduling level instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Mapping, Optional

from repro.catalog.catalog import Catalog
from repro.common.errors import (
    ConfigurationError,
    MemoryOverflowError,
    SimulationError,
)
from repro.config import SimulationParameters
from repro.core.runtime import World
from repro.mediator.buffer import HashTable
from repro.query.tree import JoinTree
from repro.exec import SimEvent
from repro.wrappers.delays import DelayModel
from repro.wrappers.source import Wrapper

LEFT = "left"
RIGHT = "right"


@dataclass
class SymmetricJoin:
    """One double-pipelined join node.

    With spilling enabled (the XJoin-style variant), each side tracks a
    *resident* portion (in its hash table) and a *spilled* portion (on a
    disk temp); online probing matches against the resident portion only,
    and a cleanup phase after the last arrival produces the remaining
    matches from the spilled data.
    """

    name: str
    left_relations: tuple[str, ...]
    right_relations: tuple[str, ...]
    crossing_selectivity: float
    #: exact number of tuples each side will eventually contribute.
    left_total: float
    right_total: float
    left_inserted: float = 0.0
    right_inserted: float = 0.0
    left_spilled: int = 0
    right_spilled: int = 0
    left_table: Optional[HashTable] = None
    right_table: Optional[HashTable] = None
    #: exact (pre-rounding) output emitted so far, online + cleanup.
    emitted_true: float = 0.0
    #: the joins the output of this one flows through on its way up.
    continuation: list[tuple["SymmetricJoin", str]] = field(
        default_factory=list)

    def side_total(self, side: str) -> float:
        return self.left_total if side == LEFT else self.right_total

    def inserted(self, side: str) -> float:
        return self.left_inserted if side == LEFT else self.right_inserted

    def spilled(self, side: str) -> int:
        return self.left_spilled if side == LEFT else self.right_spilled

    def opposite_inserted(self, side: str) -> float:
        return self.right_inserted if side == LEFT else self.left_inserted

    def opposite_resident(self, side: str) -> float:
        """Tuples of the opposite side currently probe-able online."""
        if side == LEFT:
            return self.right_inserted - self.right_spilled
        return self.left_inserted - self.left_spilled

    def record_insert(self, side: str, count: float) -> None:
        if side == LEFT:
            self.left_inserted += count
        else:
            self.right_inserted += count

    def record_spill(self, side: str, count: int) -> None:
        if side == LEFT:
            self.left_spilled += count
        else:
            self.right_spilled += count

    @property
    def expected_output(self) -> float:
        return self.crossing_selectivity * self.left_total * self.right_total

    @property
    def missing_output(self) -> float:
        """Output still owed once every input has arrived."""
        return max(0.0, self.expected_output - self.emitted_true)

    def table(self, side: str) -> HashTable:
        table = self.left_table if side == LEFT else self.right_table
        if table is None:
            raise SimulationError(f"join {self.name}: {side} table missing")
        return table


@dataclass
class SourcePath:
    """The joins a source's stream crosses on its way to the root."""

    relation: str
    #: (join, side) from the leaf upward; ``side`` is where the stream
    #: inserts (and the opposite side is probed).
    steps: list[tuple[SymmetricJoin, str]] = field(default_factory=list)


class SymmetricPlan:
    """A join tree expanded into double-pipelined joins."""

    def __init__(self, catalog: Catalog, tree: JoinTree):
        self.catalog = catalog
        self.tree = tree
        self.joins: list[SymmetricJoin] = []
        self.paths: dict[str, SourcePath] = {
            name: SourcePath(name) for name in tree.relations()}
        # Post-order expansion appends joins deepest-first, so every
        # path's steps are already in leaf-to-root order.
        self._expand(tree)
        # Each join's output continues along the shared suffix of its
        # members' paths (needed by the spill-cleanup phase).
        for join in self.joins:
            member = join.left_relations[0]
            steps = self.paths[member].steps
            index = next(i for i, (j, _side) in enumerate(steps)
                         if j is join)
            join.continuation = steps[index + 1:]

    def _expand(self, node: JoinTree) -> tuple[str, ...]:
        if node.is_leaf:
            return (node.relation,)
        left = self._expand(node.left)
        right = self._expand(node.right)
        stats = self.catalog.statistics
        crossing = 1.0
        found = False
        for a in left:
            for b in right:
                if stats.has_edge(a, b):
                    crossing *= stats.selectivity(a, b)
                    found = True
        if not found:
            raise ConfigurationError(
                f"no join edge between {left} and {right} (cross product)")
        join = SymmetricJoin(
            name=f"S{len(self.joins) + 1}",
            left_relations=left,
            right_relations=right,
            crossing_selectivity=crossing,
            left_total=self.catalog.estimate_cardinality(left),
            right_total=self.catalog.estimate_cardinality(right))
        self.joins.append(join)
        # Every stream feeding either side crosses this join.
        for name in left:
            self.paths[name].steps.append((join, LEFT))
        for name in right:
            self.paths[name].steps.append((join, RIGHT))
        return left + right

    def total_table_bytes(self) -> int:
        """Memory needed with every table of every join resident."""
        tuple_size = self.catalog.result_tuple_size
        return int(sum(join.left_total + join.right_total
                       for join in self.joins) * tuple_size)


@dataclass
class SymmetricResult:
    """Measurements of one DPHJ execution."""

    strategy: str
    response_time: float
    result_tuples: int
    cpu_busy_time: float
    cpu_utilization: float
    stall_time: float
    memory_peak_bytes: int
    batches_processed: int
    tuples_spilled: int = 0
    cleanup_time: float = 0.0
    #: virtual time of the first result tuple — DPHJ's strong suit.
    time_to_first_tuple: Optional[float] = None

    def summary(self) -> str:
        return (f"{self.strategy}: {self.response_time:.3f}s "
                f"({self.result_tuples} tuples, cpu {self.cpu_utilization:.0%}, "
                f"stall {self.stall_time:.3f}s, "
                f"peak {self.memory_peak_bytes / 1e6:.1f} MB, "
                f"{self.tuples_spilled} spilled)")


class SymmetricHashJoinEngine:
    """Executes a join tree with double-pipelined hash joins."""

    name = "DPHJ"

    def __init__(self, catalog: Catalog, tree: JoinTree,
                 delay_models: Mapping[str, DelayModel],
                 params: Optional[SimulationParameters] = None,
                 seed: int = 0, trace: bool = False,
                 allow_spill: bool = False):
        self.catalog = catalog
        self.tree = tree
        self.params = params if params is not None else SimulationParameters()
        self.seed = seed
        self.trace = trace
        #: XJoin-style reactive spilling: when the tables no longer fit,
        #: batches spill to disk and a cleanup phase finishes the join
        #: after the last arrival.  Off by default: plain DPHJ *requires*
        #: everything resident and refuses otherwise.
        self.allow_spill = allow_spill
        self.delay_models = dict(delay_models)
        missing = set(tree.relations()) - set(self.delay_models)
        if missing:
            raise ConfigurationError(
                f"no delay model for source(s): {sorted(missing)}")

    def run(self) -> SymmetricResult:
        world = World(self.params, seed=self.seed, trace=self.trace)
        plan = SymmetricPlan(self.catalog, self.tree)
        self._allocate_tables(world, plan)
        for name in self.tree.relations():
            model = self.delay_models[name]
            reset = getattr(model, "reset", None)
            if reset is not None:
                reset()
            Wrapper(world.sim, self.catalog.relation(name), model, world.cm,
                    world.rng(f"wrapper:{name}"), self.params).start()

        driver = _Driver(world, plan, self.params,
                         allow_spill=self.allow_spill)
        main = world.sim.process(driver.run(), name="dphj")
        main.defused = True
        world.sim.run()
        if main.failure is not None:
            raise main.failure

        response_time = main.value
        return SymmetricResult(
            strategy=self.name if not self.allow_spill else "DPHJ-X",
            response_time=response_time,
            result_tuples=driver.result_tuples,
            cpu_busy_time=world.cpu.busy_time,
            cpu_utilization=(world.cpu.busy_time / response_time
                             if response_time > 0 else 0.0),
            stall_time=driver.stall_time,
            memory_peak_bytes=world.memory.peak_bytes,
            batches_processed=driver.batches,
            tuples_spilled=int(world.buffer.tuples_spilled.value),
            cleanup_time=driver.cleanup_time,
            time_to_first_tuple=driver.first_result_at)

    def _allocate_tables(self, world: World, plan: SymmetricPlan) -> None:
        """Reserve both tables of every join up front (DPHJ's price).

        The spilling variant starts with empty reservations and grows
        page by page; plain DPHJ refuses a budget that cannot hold
        everything.
        """
        params = self.params
        if not self.allow_spill:
            needed = plan.total_table_bytes()
            if not world.memory.would_fit(needed):
                raise MemoryOverflowError(
                    "symmetric-plan", required=needed,
                    available=world.memory.available_bytes)
        for join in plan.joins:
            estimate = 0.0 if self.allow_spill else None
            join.left_table = HashTable(
                f"{join.name}:{LEFT}", world.memory, params.tuple_size,
                params.page_size,
                join.left_total if estimate is None else estimate)
            join.right_table = HashTable(
                f"{join.name}:{RIGHT}", world.memory, params.tuple_size,
                params.page_size,
                join.right_total if estimate is None else estimate)


class _Driver:
    """The data-driven execution loop (round-robin over ready sources)."""

    def __init__(self, world: World, plan: SymmetricPlan,
                 params: SimulationParameters, allow_spill: bool = False):
        self.world = world
        self.plan = plan
        self.params = params
        self.allow_spill = allow_spill
        self.result_tuples = 0
        self.first_result_at: Optional[float] = None
        self.stall_time = 0.0
        self.cleanup_time = 0.0
        self.batches = 0
        self._carries: dict[tuple[str, str], float] = {}
        #: lazily created spill temps per (join name, side).
        self._spill_writers: dict[tuple[str, str], Any] = {}

    def run(self) -> Generator[SimEvent, Any, float]:
        sim = self.world.sim
        cm = self.world.cm
        sources = list(self.plan.paths)
        cursor = 0
        while not cm.all_exhausted():
            ready = [name for name in sources
                     if cm.queue(name).has_data()]
            if not ready:
                events = [cm.queue(name).data_event() for name in sources
                          if not cm.queue(name).exhausted]
                if not events:
                    break
                started = sim.now
                yield sim.any_of(events)
                self.stall_time += sim.now - started
                continue
            # Round-robin among ready sources for fairness.
            name = ready[cursor % len(ready)]
            cursor += 1
            count = cm.queue(name).take_batch(self.params.effective_batch_tuples)
            if count:
                yield from self._flow(self.plan.paths[name].steps, count,
                                      carry_source=name)
                self.batches += 1
        if self.allow_spill:
            cleanup_started = sim.now
            yield from self._cleanup()
            self.cleanup_time = sim.now - cleanup_started
        for join in self.plan.joins:
            join.table(LEFT).seal()
            join.table(RIGHT).seal()
        return sim.now

    def _flow(self, steps: list[tuple[SymmetricJoin, str]], count: int,
              carry_source: str) -> Generator[SimEvent, Any, None]:
        """Push a batch up a path of join steps, charging CPU as one piece."""
        params = self.params
        instructions = 0.0
        flowing: float = count
        for join, side in steps:
            # Insert into own table (or spill this increment to disk)...
            instructions += flowing * params.move_tuple_instructions
            whole = int(round(flowing))
            if join.table(side).insert(whole):
                pass
            elif self.allow_spill:
                self._spill(join, side, whole)
            else:
                raise MemoryOverflowError(
                    join.name,
                    required=params.page_size,
                    available=self.world.memory.available_bytes)
            join.record_insert(side, flowing)
            # ...and probe the opposite side's *resident* portion.
            instructions += flowing * params.hash_search_instructions
            opposite = join.opposite_resident(side)
            matches_true = flowing * join.crossing_selectivity * opposite
            join.emitted_true += matches_true
            matches = self._carry((carry_source, join.name), matches_true)
            instructions += matches * params.produce_tuple_instructions
            flowing = matches
            if flowing <= 0:
                break
        yield from self.world.cpu.work(instructions)
        # A positive flow after the last step survived every join on the
        # path — i.e. it reached the root: those are result tuples.  (A
        # single-relation query has an empty path; its scan *is* the
        # result.)
        if flowing > 0:
            if self.result_tuples == 0:
                self.first_result_at = self.world.sim.now
            self.result_tuples += int(flowing)

    # -- spilling (the XJoin-style variant) -------------------------------
    def _spill(self, join: SymmetricJoin, side: str, count: int) -> None:
        key = (join.name, side)
        writer = self._spill_writers.get(key)
        if writer is None:
            writer = self.world.buffer.create_temp(
                f"xspill:{join.name}:{side}")
            self._spill_writers[key] = writer
        writer.write(count)
        join.record_spill(side, count)

    def _cleanup(self) -> Generator[SimEvent, Any, None]:
        """Produce the matches the online phase could not (XJoin phase 2).

        Runs bottom-up (creation order is post-order): each join reads
        its spilled portions back from disk, emits its missing output,
        and flows it up the continuation path where parents treat it as
        a late arrival.
        """
        params = self.params
        for join in self.plan.joins:
            # Wait for the spill writers' write-behind I/O, then read the
            # spilled tuples back.
            for side in (LEFT, RIGHT):
                writer = self._spill_writers.get((join.name, side))
                if writer is None:
                    continue
                temp = yield from writer.finish()
                chunk = params.io_chunk_pages
                page = 0
                while page < temp.pages:
                    pages = min(chunk, temp.pages - page)
                    yield from self.world.buffer.chunk_io(temp, page, pages)
                    page += pages
                yield from self.world.cpu.work(
                    temp.tuples * params.hash_search_instructions)
                self.world.buffer.destroy_temp(temp)
            missing = join.missing_output
            if missing < 1.0:
                continue
            produced = self._carry(("cleanup", join.name), missing)
            join.emitted_true += missing
            yield from self.world.cpu.work(
                produced * params.produce_tuple_instructions)
            if produced <= 0:
                continue
            if not join.continuation:
                if self.result_tuples == 0:
                    self.first_result_at = self.world.sim.now
                self.result_tuples += produced
                continue
            yield from self._flow(join.continuation, produced,
                                  carry_source=f"cleanup:{join.name}")

    def _carry(self, key: tuple[str, str], value: float) -> int:
        # Round-to-nearest with a signed carry: the terminal remainder of
        # each stream is at most half a tuple (a floor carry would lose
        # up to a whole one, and early losses are amplified by the
        # downstream fanouts).
        total = value + self._carries.get(key, 0.0)
        whole = int(total + 0.5)
        self._carries[key] = total - whole
        return whole
