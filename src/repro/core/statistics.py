"""Runtime statistics collection for the dynamic QEP optimizer.

Section 3.1: "For the problem of inaccuracy of estimates, we must collect
statistics during the query execution and transmit them to the DQO [9]."

:class:`RuntimeStatistics` records, at every materialization point (the
natural observation points of mid-query re-optimization à la [9]), the
*actual* cardinality that crossed the blocking edge next to the
optimizer's estimate, plus a history of delivery-rate snapshots.  The
DQO consults :meth:`misestimated_joins` after each chain completes and
traces a re-optimization opportunity when the error exceeds the
configured threshold — the precise hook where a plan-revision module
would plug in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SchedulingError


@dataclass
class JoinObservation:
    """Estimated vs observed cardinality of one join's build side."""

    join_name: str
    estimated_build: float
    observed_build: Optional[float] = None
    observed_at: Optional[float] = None

    @property
    def error_ratio(self) -> Optional[float]:
        """``observed / estimated`` (None until observed; inf if est = 0)."""
        if self.observed_build is None:
            return None
        if self.estimated_build <= 0:
            return float("inf") if self.observed_build > 0 else 1.0
        return self.observed_build / self.estimated_build

    def is_misestimated(self, threshold: float) -> bool:
        """True when the relative error exceeds ``threshold``.

        ``threshold`` is a ratio bound: 0.5 flags anything observed
        outside [2/3 x, 1.5 x] ... precisely, outside
        ``[1/(1+threshold), 1+threshold]``.
        """
        ratio = self.error_ratio
        if ratio is None:
            return False
        upper = 1.0 + threshold
        return ratio > upper or ratio < 1.0 / upper


@dataclass
class RateSnapshot:
    """One delivery-rate snapshot (per planning phase)."""

    time: float
    waits: dict[str, float] = field(default_factory=dict)


class RuntimeStatistics:
    """Observed statistics of one query execution."""

    def __init__(self):
        self._joins: dict[str, JoinObservation] = {}
        self.rate_history: list[RateSnapshot] = []

    # -- joins ---------------------------------------------------------
    def register_join(self, join_name: str, estimated_build: float) -> None:
        """Declare a join whose build side will be observed."""
        if join_name in self._joins:
            raise SchedulingError(f"join {join_name!r} registered twice")
        self._joins[join_name] = JoinObservation(join_name, estimated_build)

    def observe_build(self, join_name: str, actual_tuples: float,
                      time: float) -> JoinObservation:
        """Record the actual build size once the blocking edge completes."""
        try:
            observation = self._joins[join_name]
        except KeyError:
            raise SchedulingError(f"unknown join {join_name!r}") from None
        observation.observed_build = actual_tuples
        observation.observed_at = time
        return observation

    def update_estimate(self, join_name: str, estimated_build: float) -> None:
        """Re-baseline a join's estimate (after a plan revision swapped
        its sides); any previous observation no longer applies."""
        try:
            observation = self._joins[join_name]
        except KeyError:
            raise SchedulingError(f"unknown join {join_name!r}") from None
        observation.estimated_build = estimated_build
        observation.observed_build = None
        observation.observed_at = None

    def observation(self, join_name: str) -> JoinObservation:
        try:
            return self._joins[join_name]
        except KeyError:
            raise SchedulingError(f"unknown join {join_name!r}") from None

    def observations(self) -> list[JoinObservation]:
        """All observations, in registration order."""
        return list(self._joins.values())

    def misestimated_joins(self, threshold: float) -> list[JoinObservation]:
        """Observed joins whose error exceeds ``threshold``."""
        if threshold < 0:
            raise SchedulingError(f"threshold must be >= 0, got {threshold}")
        return [obs for obs in self._joins.values()
                if obs.is_misestimated(threshold)]

    # -- rates -----------------------------------------------------------
    def snapshot_rates(self, time: float, waits: dict[str, float]) -> None:
        """Record the per-source wait estimates of one planning phase."""
        self.rate_history.append(RateSnapshot(time, dict(waits)))

    def wait_series(self, source: str) -> list[tuple[float, float]]:
        """(time, wait) history for one source across planning phases."""
        return [(snap.time, snap.waits[source])
                for snap in self.rate_history if source in snap.waits]

    def __repr__(self) -> str:
        observed = sum(1 for o in self._joins.values()
                       if o.observed_build is not None)
        return (f"RuntimeStatistics({observed}/{len(self._joins)} joins "
                f"observed, {len(self.rate_history)} rate snapshots)")
