"""Execution world and per-query runtime state.

:class:`World` bundles the simulated machine (clock, CPU, disk, cache,
network, communication manager, buffer and memory managers) — one per
simulated execution.  :class:`QueryRuntime` tracks the dynamic state of
one query over that world: the living set of fragments, chain completion,
hash-table residency, degradations and memory splits.

A chain may be served by several fragments over its lifetime:

* plain chain:                ``[PC]``
* degraded (Section 4.4):     ``[MF, CF, PC]`` — the MF materializes while
  the chain is blocked; once it becomes schedulable the MF is stopped,
  the CF replays the temp and the (unsuspended) PC consumes the rest of
  the wrapper data live — this is the paper's *partial* materialization;
* memory split (Section 4.2): ``[..., CONT]`` — the overflowing fragment
  spills the rest of its build input to a temp; the continuation reloads
  it once the fragment's probe tables are released.

The chain is complete when **all** of its fragments are done.  Hash
tables are sealed when their *build* chain completes and dropped when
every fragment probing them is done.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import SchedulingError, SimulationError
from repro.common.rng import RandomStreams
from repro.config import SimulationParameters
from repro.core.fragments import Fragment, FragmentKind, FragmentStatus
from repro.core.statistics import RuntimeStatistics
from repro.mediator.buffer import BufferManager, HashTable
from repro.mediator.comm import CommunicationManager
from repro.mediator.queues import SourceQueue
from repro.observability import (
    DECISION_CF_CREATE,
    DECISION_DEGRADE,
    DECISION_MEMORY_SPLIT,
    DECISION_MF_STOP,
    DECISION_REOPT_SWAP,
    SPAN_FRAGMENT,
    SPAN_QUERY,
    SpanRecorder,
    Telemetry,
)
from repro.plan.chains import ancestor_closure
from repro.plan.operators import MatOp, ScanOp
from repro.plan.qep import QEP, PipelineChain
from repro.resources.broker import MemoryBroker, MemoryLease
from repro.exec import Kernel
from repro.sim.cache import LRUPageCache
from repro.sim.resources import CPU, Disk, NetworkLink
from repro.sim.tracing import Tracer


class World:
    """One simulated mediator machine, as seen by one query.

    The hardware (clock, CPU, disks, cache, link, buffer manager) can be
    **shared** between several queries running on the same mediator —
    pass ``share_machine`` to attach a new query view to an existing
    machine; the communication manager and the memory budget are always
    per-query (each query has its own wrappers, queues, rate listeners
    and memory allotment).
    """

    def __init__(self, params: SimulationParameters, seed: int = 0,
                 trace: bool = False,
                 share_machine: Optional["World"] = None,
                 memory_bytes: Optional[int] = None,
                 kernel: Optional[Kernel] = None,
                 broker: Optional[MemoryBroker] = None,
                 lease: Optional[MemoryLease] = None,
                 query_name: Optional[str] = None,
                 attach_memory_metrics: bool = True):
        self.params = params
        if share_machine is None:
            self.streams = RandomStreams(seed)
            if kernel is None:
                # Default backend: the deterministic virtual-time simulator.
                from repro.sim.engine import Simulator
                kernel = Simulator()
            self.sim: Kernel = kernel
            self.tracer = Tracer(self.sim, enabled=trace)
            self.cpu = CPU(self.sim, params.cpu_mips)
            self.disks = [
                Disk(self.sim,
                     latency=params.disk_latency,
                     seek_time=params.disk_seek_time,
                     transfer_rate=params.disk_transfer_rate,
                     page_size=params.page_size,
                     name=f"disk{i}")
                for i in range(params.num_local_disks)
            ]
            self.cache = LRUPageCache(params.io_cache_pages)
            self.link = NetworkLink(self.sim,
                                    bandwidth=params.network_bandwidth_bytes)
            self.buffer = BufferManager(self.sim, self.cpu, self.disks,
                                        self.cache, params, self.tracer)
            self.telemetry = Telemetry(
                self.sim, enabled=params.telemetry_enabled,
                sample_interval=params.telemetry_sample_interval)
            if params.telemetry_spans:
                self.telemetry.spans = SpanRecorder(self.sim)
            # The machine's memory broker.  Default: an *unbounded*
            # private pool — a lease drawn from it with min == max is
            # arithmetically identical to the old per-query manager.
            if broker is None:
                broker = MemoryBroker(sim=self.sim, telemetry=self.telemetry)
            elif broker.sim is None:
                broker.bind(self.sim, self.telemetry)
            self.broker = broker
        else:
            machine = share_machine
            self.streams = machine.streams
            self.sim = machine.sim
            self.tracer = machine.tracer
            self.cpu = machine.cpu
            self.disks = machine.disks
            self.cache = machine.cache
            self.link = machine.link
            self.buffer = machine.buffer
            self.telemetry = machine.telemetry
            self.broker = machine.broker
        self.cm = CommunicationManager(
            self.sim, self.cpu, params, self.tracer,
            link=self.link if params.model_link_contention else None,
            telemetry=self.telemetry)
        if lease is not None:
            self.memory = lease
        else:
            budget = (memory_bytes if memory_bytes is not None
                      else params.query_memory_bytes)
            self.memory = self.broker.lease(query_name or "query", budget)
        # The always-on service passes attach_memory_metrics=False: a
        # per-query gauge prefix would grow the shared machine registry
        # without bound across its unbounded submission stream.
        if attach_memory_metrics:
            self.memory.attach_metrics(
                self.telemetry.registry,
                prefix=("memory" if query_name is None
                        else f"memory.{query_name}"))

    @property
    def disk(self) -> "Disk":
        """The first local disk (most configurations have exactly one)."""
        return self.disks[0]

    def rng(self, label: str) -> np.random.Generator:
        """A named deterministic random stream."""
        return self.streams.stream(label)


class QueryRuntime:
    """Dynamic state of one query execution."""

    def __init__(self, world: World, qep: QEP):
        self.world = world
        self.qep = qep
        self.closure = ancestor_closure(qep)
        self.result_tuples = 0
        #: virtual time of the first result tuple (time-to-first-tuple).
        self.first_result_at: Optional[float] = None
        #: bumped whenever a fragment finalizes; :meth:`SchedulingPlan.live`
        #: caches its filtered list against this counter.
        self.done_revision = 0
        self.statistics = RuntimeStatistics()
        for join_name, join in qep.joins.items():
            self.statistics.register_join(join_name,
                                          join.estimated_build_cardinality)
        self.hash_tables: dict[str, HashTable] = {}
        #: shared fractional-tuple accumulators, keyed by
        #: (chain name, operator name); see Fragment._carry.
        self.carry_pool: dict[tuple[str, str], float] = {}
        self.fragments: dict[str, Fragment] = {}
        #: fragments of each chain, in creation order.
        self.chain_fragments: dict[str, list[Fragment]] = {}
        self.completed_chains: set[str] = set()
        self.degraded_chains: set[str] = set()
        #: chains degraded because their build table did not fit the
        #: memory budget (as opposed to the paper's bmi-driven
        #: degradation); their MFs are only stopped once the budget has
        #: grown enough for the table (see :meth:`memory_stop_allowed`).
        self.memory_degraded_chains: set[str] = set()
        self.stopped_materializations: set[str] = set()
        self.memory_splits = 0
        #: join name -> name of the chain whose probe consumes it.
        self._probing_chain = {join_name: qep.chain_probing(join).name
                               for join_name, join in qep.joins.items()}
        #: root of this query's causal span tree (None when spans off).
        self.query_span: Optional[int] = None
        spans = world.telemetry.spans
        if spans is not None:
            self.query_span = spans.begin(
                SPAN_QUERY, getattr(world.memory, "name", "query"),
                chains=len(qep.chains))
        for chain in qep.chains:
            self._create_pc_fragment(chain)

    # -- decision audit -------------------------------------------------------
    def _audit(self, kind: str, subject: str,
               decision_inputs: Optional[dict] = None, **details) -> None:
        """Record one scheduler decision with the memory state at its time.

        ``decision_inputs`` carries the numbers the *caller* saw (critical
        degree, bmi vs bmt, ...); ``details`` are kind-specific extras.
        """
        memory = self.world.memory
        self.world.telemetry.audit.record(
            kind, subject, time=self.world.sim.now,
            memory_used_bytes=memory.used_bytes,
            memory_total_bytes=memory.total_bytes,
            details=details, **(decision_inputs or {}))

    # -- fragment creation ---------------------------------------------------
    def _register(self, fragment: Fragment) -> Fragment:
        self.fragments[fragment.name] = fragment
        return fragment

    def _create_pc_fragment(self, chain: PipelineChain) -> Fragment:
        queue = self.world.cm.queue(chain.source_relation)
        fragment = Fragment(self, chain.name, FragmentKind.PIPELINE_CHAIN,
                            chain, chain.operators, queue)
        self.chain_fragments[chain.name] = [fragment]
        return self._register(fragment)

    def degrade_chain(self, chain: PipelineChain,
                      prefer_memory: Optional[bool] = None,
                      decision_inputs: Optional[dict] = None) -> Fragment:
        """PC degradation (Section 4.4): start a materialization fragment.

        The chain's PC fragment is suspended; the returned MF pulls from
        the wrapper queue, applies the chain's scan and materializes to a
        temp.  When the chain later becomes schedulable the scheduler
        stops the MF (:meth:`request_stop_materialization`), after which
        :meth:`advance_degraded_chains` creates the complement fragment
        and unsuspends the PC.

        ``prefer_memory`` (default: the ``allow_memory_temps`` setting)
        materializes into query memory when the estimate fits.
        """
        pc = self.fragments[chain.name]
        if pc.kind is not FragmentKind.PIPELINE_CHAIN:
            raise SchedulingError(f"{chain.name!r} is not a plain PC fragment")
        if pc.status is not FragmentStatus.PENDING:
            raise SchedulingError(f"cannot degrade running chain {chain.name!r}")
        if chain.name in self.degraded_chains:
            raise SchedulingError(f"chain {chain.name!r} degraded twice")

        if prefer_memory is None:
            prefer_memory = self.world.params.allow_memory_temps
        writer = self.world.buffer.create_temp(
            f"mf:{chain.name}",
            memory=self.world.memory,
            estimated_tuples=self.remaining_source_tuples(chain)
            * chain.scan.scan_selectivity,
            prefer_memory=prefer_memory)
        scan = chain.scan
        mf_ops = [
            ScanOp(name=scan.name, relation=scan.relation,
                   scan_selectivity=scan.scan_selectivity,
                   estimated_input_cardinality=scan.estimated_input_cardinality,
                   estimated_output_cardinality=scan.estimated_output_cardinality),
            MatOp(name="mat[temp]", join=None,
                  estimated_input_cardinality=scan.estimated_output_cardinality,
                  estimated_output_cardinality=scan.estimated_output_cardinality),
        ]
        mf = Fragment(self, f"MF({chain.name})", FragmentKind.MATERIALIZATION,
                      chain, mf_ops, pc.source)
        mf.temp_writer = writer
        pc.suspended = True
        self.chain_fragments[chain.name] = [mf, pc]
        self.degraded_chains.add(chain.name)
        self.world.tracer.emit("degrade", chain.name,
                               mf=mf.name, temp=writer.temp.name)
        self._audit(DECISION_DEGRADE, chain.name, decision_inputs,
                    mf=mf.name, temp=writer.temp.name)
        return self._register(mf)

    def request_stop_materialization(self, chain: PipelineChain,
                                     reason: Optional[str] = None) -> None:
        """Ask ``chain``'s MF to finalize early (partial materialization)."""
        mf = self.chain_fragments[chain.name][0]
        if mf.kind is not FragmentKind.MATERIALIZATION:
            raise SchedulingError(f"chain {chain.name!r} has no MF to stop")
        if mf.status is not FragmentStatus.DONE and not mf.stop_requested:
            mf.stop_requested = True
            self.stopped_materializations.add(chain.name)
            self.world.tracer.emit("mf-stop", mf.name)
            details = {"chain": chain.name,
                       "materialized_tuples": mf.tuples_out}
            if reason is not None:
                details["reason"] = reason
            self._audit(DECISION_MF_STOP, mf.name, **details)

    def advance_degraded_chains(self) -> list[Fragment]:
        """Create CFs for finished MFs and unsuspend their PC parts.

        Called by planning policies at the start of each planning phase;
        returns the complement fragments created.
        """
        created = []
        for chain in self.qep.chains:
            if chain.name not in self.degraded_chains:
                continue
            fragments = self.chain_fragments[chain.name]
            mf = fragments[0]
            has_cf = any(f.kind is FragmentKind.COMPLEMENT for f in fragments)
            if mf.status is not FragmentStatus.DONE or has_cf:
                continue
            cf = self._create_cf_fragment(chain, mf)
            created.append(cf)
            pc = self.fragments[chain.name]
            pc.suspended = False
        return created

    def _create_cf_fragment(self, chain: PipelineChain, mf: Fragment) -> Fragment:
        temp = mf.temp_writer.temp
        scan = chain.scan
        temp_scan = ScanOp(
            name=f"scan({temp.name})", relation=temp.name,
            scan_selectivity=1.0,
            estimated_input_cardinality=scan.estimated_output_cardinality,
            estimated_output_cardinality=scan.estimated_output_cardinality)
        cf_ops = [temp_scan] + chain.operators[1:]
        cf = Fragment(self, f"CF({chain.name})", FragmentKind.COMPLEMENT,
                      chain, cf_ops, self.world.buffer.reader(temp))
        self.chain_fragments[chain.name].insert(1, cf)
        self.world.tracer.emit("cf-create", cf.name, temp=temp.name)
        self._audit(DECISION_CF_CREATE, cf.name, chain=chain.name,
                    temp=temp.name, temp_tuples=mf.tuples_out)
        return self._register(cf)

    def split_for_memory(self, fragment: Fragment) -> Fragment:
        """DQO memory-overflow handling (Section 4.2 / [4]).

        The overflowing fragment stops growing its hash table: its
        terminal is redirected to a disk temp ("insert a materialize
        operator at the highest possible point"), and a *continuation*
        fragment is created that — once the fragment finishes and its
        probe tables are released — reloads the temp and finishes the
        build.  The spilled batch that triggered the overflow goes
        straight to the temp.
        """
        join_name = fragment.builds_join
        if join_name is None:
            raise SchedulingError(
                f"fragment {fragment.name!r} overflowed without building a table")
        writer = self.world.buffer.create_temp(f"spill:{fragment.name}")
        terminal: MatOp = fragment.terminal  # type: ignore[assignment]
        join = terminal.join
        fragment.operators[-1] = MatOp(
            name="mat[temp]", join=None,
            estimated_input_cardinality=terminal.estimated_input_cardinality,
            estimated_output_cardinality=terminal.estimated_output_cardinality)
        fragment.temp_writer = writer
        if fragment.pending_spill:
            writer.write(fragment.pending_spill)
            fragment.tuples_out += fragment.pending_spill
            fragment.pending_spill = 0

        table = fragment.hash_table
        fragment.hash_table = None
        continuation_scan = ScanOp(
            name=f"scan({writer.temp.name})", relation=writer.temp.name,
            scan_selectivity=1.0,
            estimated_input_cardinality=terminal.estimated_input_cardinality,
            estimated_output_cardinality=terminal.estimated_input_cardinality)
        continuation_mat = MatOp(
            name=f"mat[{join.name}]", join=join,
            estimated_input_cardinality=terminal.estimated_input_cardinality,
            estimated_output_cardinality=terminal.estimated_output_cardinality)
        continuation = Fragment(
            self, f"CONT({fragment.name})", FragmentKind.CONTINUATION,
            fragment.chain, [continuation_scan, continuation_mat],
            self.world.buffer.reader(writer.temp))
        continuation.hash_table = table
        self.chain_fragments[fragment.chain.name].append(continuation)
        self.memory_splits += 1
        self.world.tracer.emit("memory-split", fragment.name,
                               join=join.name, temp=writer.temp.name)
        self._audit(DECISION_MEMORY_SPLIT, fragment.name,
                    join=join.name, temp=writer.temp.name,
                    continuation=continuation.name)
        return self._register(continuation)

    # -- QEP-level re-optimization (build/probe swap) ------------------------
    def can_swap_join(self, join_name: str) -> bool:
        """True when ``join_name``'s sides may still be swapped.

        Both chains touching the join must be completely untouched (one
        pristine PC fragment each, not degraded) and the join's table
        must not hold data.
        """
        join = self.qep.joins.get(join_name)
        if join is None:
            return False
        table = self.hash_tables.get(join_name)
        if table is not None and (table.tuples > 0 or table.complete):
            return False
        for chain in (self.qep.chain_feeding(join), self.qep.chain_probing(join)):
            if chain.name in self.degraded_chains:
                return False
            fragments = self.chain_fragments[chain.name]
            if len(fragments) != 1:
                return False
            if fragments[0].status is not FragmentStatus.PENDING:
                return False
        return True

    def swap_pending_join(self, join_name: str,
                          decision_inputs: Optional[dict] = None) -> None:
        """Apply :func:`repro.plan.reopt.swap_join_sides` to the live plan.

        Replaces the two affected chains' fragments with fresh pristine
        ones bound to the same wrapper queues; every other chain (and its
        runtime state) is untouched.
        """
        from repro.plan.reopt import swap_join_sides

        if not self.can_swap_join(join_name):
            raise SchedulingError(f"join {join_name!r} can no longer be swapped")
        # Drop a table that was reserved by admission but never filled.
        table = self.hash_tables.pop(join_name, None)
        if table is not None:
            old_chain = self.qep.chain_feeding(self.qep.joins[join_name])
            self.fragments[old_chain.name].hash_table = None
            table.drop()

        old_join = self.qep.joins[join_name]
        affected = (self.qep.chain_feeding(old_join).name,
                    self.qep.chain_probing(old_join).name)
        self.qep = swap_join_sides(self.qep, join_name,
                                   self.world.params.tuple_size)
        self.closure = ancestor_closure(self.qep)
        self._probing_chain = {name: self.qep.chain_probing(join).name
                               for name, join in self.qep.joins.items()}
        for chain_name in affected:
            old_fragment = self.fragments.pop(chain_name)
            chain = self.qep.chain(chain_name)
            fragment = Fragment(self, chain.name, FragmentKind.PIPELINE_CHAIN,
                                chain, chain.operators, old_fragment.source)
            self.fragments[fragment.name] = fragment
            self.chain_fragments[chain_name] = [fragment]
        self.statistics.update_estimate(
            join_name, self.qep.joins[join_name].estimated_build_cardinality)
        self.world.tracer.emit("reopt-swap", join_name,
                               new_build=self.qep.joins[join_name].build_relations)
        self._audit(DECISION_REOPT_SWAP, join_name, decision_inputs,
                    new_build=list(self.qep.joins[join_name].build_relations))

    # -- hash tables -----------------------------------------------------------
    def table_estimate_bytes(self, join_name: str) -> int:
        """Estimated size of a join's build table (from the plan annotation)."""
        join = self.qep.joins[join_name]
        return int(join.estimated_build_cardinality
                   * self.world.params.tuple_size)

    def ensure_hash_table(self, fragment: Fragment) -> None:
        """Create or attach the table ``fragment`` builds.

        A degraded chain's CF and PC parts build the *same* table; the
        first of them to be admitted creates it (the scheduler must have
        checked the reservation fits), later ones attach.
        """
        join_name = fragment.builds_join
        if join_name is None or fragment.hash_table is not None:
            return
        table = self.hash_tables.get(join_name)
        if table is None:
            params = self.world.params
            table = HashTable(
                join_name, self.world.memory, params.tuple_size,
                params.page_size,
                self.qep.joins[join_name].estimated_build_cardinality)
            self.hash_tables[join_name] = table
        if table.complete:
            raise SimulationError(
                f"fragment {fragment.name!r} attaches to sealed table "
                f"{join_name!r}")
        fragment.hash_table = table

    # -- schedulability ---------------------------------------------------------
    def chain_complete(self, chain_name: str) -> bool:
        return chain_name in self.completed_chains

    def chain_table_fits(self, chain: PipelineChain) -> bool:
        """True when the table ``chain`` builds fits the current budget
        (or already exists, or the chain builds nothing)."""
        join = chain.feeds
        if join is None or join.name in self.hash_tables:
            return True
        return self.world.memory.would_fit(self.table_estimate_bytes(join.name))

    def memory_stop_allowed(self, chain: PipelineChain) -> bool:
        """May ``chain``'s MF be stopped, as far as memory is concerned?

        A chain degraded *for memory* must keep materializing until the
        (grown) budget can hold its build table — stopping earlier would
        just re-block it on the same shortage.  Chains degraded for the
        paper's bmi reasons are unaffected.
        """
        if chain.name not in self.memory_degraded_chains:
            return True
        return self.chain_table_fits(chain)

    def is_c_schedulable(self, fragment: Fragment) -> bool:
        """Dependency constraints of Section 4.1, per fragment kind."""
        if fragment.status is FragmentStatus.DONE or fragment.suspended:
            return False
        ancestors_done = all(self.chain_complete(name)
                             for name in self.closure[fragment.chain.name])
        if fragment.kind is FragmentKind.MATERIALIZATION:
            return True  # "MF(p) has no ancestor" (Section 4.4)
        if fragment.kind is FragmentKind.COMPLEMENT:
            mf = self.chain_fragments[fragment.chain.name][0]
            return mf.status is FragmentStatus.DONE and ancestors_done
        if fragment.kind is FragmentKind.CONTINUATION:
            # Runnable once everything before it in the chain is done —
            # that is when the chain's probe tables have been released
            # and the memory it needs to grow its build table is free.
            chain_frags = self.chain_fragments[fragment.chain.name]
            index = chain_frags.index(fragment)
            return all(f.status is FragmentStatus.DONE
                       for f in chain_frags[:index])
        return ancestors_done

    def new_memory_needed(self, fragment: Fragment) -> int:
        """Bytes the fragment must newly reserve before running.

        Tables it probes are already resident (their build chains are
        complete); only a table it builds *that does not exist yet* is
        new — attaching to an existing table (degraded chains) or
        carrying a partial one (continuations) costs nothing up front.
        """
        join_name = fragment.builds_join
        if join_name is None or fragment.hash_table is not None:
            return 0
        if join_name in self.hash_tables:
            return 0
        return self.table_estimate_bytes(join_name)

    # -- lifecycle callbacks ------------------------------------------------------
    def on_fragment_done(self, fragment: Fragment) -> None:
        """Bookkeeping when a fragment finalizes."""
        self.done_revision += 1
        self.world.tracer.emit(
            "fragment-done", fragment.name,
            chain=fragment.chain.name, tuples_in=fragment.tuples_in,
            tuples_out=fragment.tuples_out)
        spans = self.world.telemetry.spans
        if spans is not None:
            # Recorded retrospectively: one span per fragment lifetime,
            # from its first batch to this finalize.
            started = (fragment.started_at if fragment.started_at is not None
                       else self.world.sim.now)
            spans.add(SPAN_FRAGMENT, fragment.name, started,
                      self.world.sim.now, parent_id=self.query_span,
                      fragment_kind=fragment.kind.value,
                      chain=fragment.chain.name,
                      tuples_in=fragment.tuples_in,
                      tuples_out=fragment.tuples_out)
        self._maybe_drop_tables(fragment)
        # A fully consumed temp is dead: free its memory/cache.
        source = fragment.source
        if not isinstance(source, SourceQueue) and source.exhausted:
            self.world.buffer.destroy_temp(source.temp)
        chain_name = fragment.chain.name
        fragments = self.chain_fragments[chain_name]
        if all(f.status is FragmentStatus.DONE for f in fragments):
            self._complete_chain(chain_name)

    def _maybe_drop_tables(self, fragment: Fragment) -> None:
        """Drop each probed table once no live fragment still probes it."""
        for join_name in fragment.probed_joins():
            probing_chain = self._probing_chain[join_name]
            still_probing = any(
                f.status is not FragmentStatus.DONE
                and join_name in f.probed_joins()
                for f in self.chain_fragments[probing_chain])
            if still_probing:
                continue
            table = self.hash_tables.pop(join_name, None)
            if table is None:
                raise SimulationError(
                    f"fragment {fragment.name!r} probed {join_name!r} "
                    "but no table is resident")
            table.drop()
            self.world.tracer.emit("table-drop", join_name)

    def _complete_chain(self, chain_name: str) -> None:
        self.completed_chains.add(chain_name)
        chain = self.qep.chain(chain_name)
        if chain.feeds is not None:
            table = self.hash_tables.get(chain.feeds.name)
            if table is None:
                raise SimulationError(
                    f"chain {chain_name!r} completed but its build table "
                    f"{chain.feeds.name!r} does not exist")
            table.seal()
            # The blocking edge is done: its exact cardinality is now a
            # runtime fact for the DQO (Section 3.1).
            self.statistics.observe_build(chain.feeds.name, table.tuples,
                                          self.world.sim.now)
        self.world.tracer.emit("chain-complete", chain_name)

    @property
    def all_done(self) -> bool:
        """The query is complete when the root chain has completed."""
        return self.qep.root.name in self.completed_chains

    def live_fragments(self) -> list[Fragment]:
        """Fragments not yet done, in stable creation order."""
        return [f for f in self.fragments.values()
                if f.status is not FragmentStatus.DONE]

    def remaining_source_tuples(self, chain: PipelineChain) -> float:
        """Source tuples of ``chain`` not yet delivered to the mediator."""
        if chain.source_relation not in self.world.cm.estimators:
            return chain.scan.estimated_input_cardinality
        delivered = self.world.cm.estimator(chain.source_relation).tuples_delivered
        return max(0.0, chain.scan.estimated_input_cardinality - delivered)
