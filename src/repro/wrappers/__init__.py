"""Simulated wrappers (remote data sources).

Each wrapper ships its relation to the mediator in fixed-size messages.
The per-tuple *waiting times* (production + network time, Section 5.1.3)
come from a pluggable :class:`DelayModel`; the paper's three delay
categories — initial delay, bursty arrival, slow delivery — all have a
model here, plus the uniform model used in the experiments.
"""

from repro.wrappers.delays import (
    BurstyDelay,
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    InitialDelay,
    NormalDelay,
    UniformDelay,
    slow_delivery,
)
from repro.wrappers.source import Wrapper

__all__ = [
    "BurstyDelay",
    "ConstantDelay",
    "DelayModel",
    "ExponentialDelay",
    "InitialDelay",
    "NormalDelay",
    "UniformDelay",
    "Wrapper",
    "slow_delivery",
]
