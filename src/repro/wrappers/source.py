"""Simulated wrapper processes.

A wrapper ships its whole relation to the mediator in fixed-size messages.
Before each message it waits the sum of the per-tuple waiting times drawn
from its delay model — exactly the methodology of Section 5.1.3 ("we delay
the production of each tuple by a delay uniformly distributed in
[0, 2w]").  Delivery goes through the communication manager, so a full
queue suspends the wrapper (window protocol) and every message charges
the mediator's per-message receive CPU cost.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.catalog.schema import Relation
from repro.common.errors import SimulationError
from repro.config import SimulationParameters
from repro.mediator.comm import CommunicationManager
from repro.exec import Kernel, Process, SimEvent
from repro.sim.resources import Store
from repro.wrappers.delays import DelayModel


class Wrapper:
    """One simulated remote source."""

    def __init__(self, sim: Kernel, relation: Relation,
                 delay_model: DelayModel, cm: CommunicationManager,
                 rng: np.random.Generator, params: SimulationParameters):
        self.sim = sim
        self.relation = relation
        self.delay_model = delay_model
        self.cm = cm
        self.rng = rng
        self.params = params
        self.tuples_sent = 0
        self.production_time = 0.0      # time spent producing (delay model)
        self.blocked_time = 0.0         # time suspended by the window protocol
        self.finished_at: Optional[float] = None
        self._process: Optional[Process] = None
        registry = cm.telemetry.registry
        name = relation.name
        self._sent_metric = registry.counter(
            f"wrapper.{name}.tuples_sent",
            f"Tuples wrapper {name} delivered to the mediator.")
        self._blocked_metric = registry.counter(
            f"wrapper.{name}.blocked_seconds",
            f"Virtual seconds wrapper {name} spent window-protocol blocked.")

    @property
    def name(self) -> str:
        return self.relation.name

    def start(self) -> Process:
        """Register with the CM and start shipping tuples."""
        if self._process is not None:
            raise SimulationError(f"wrapper {self.name!r} started twice")
        self.cm.register_source(self.name)
        self._process = self.sim.process(self._run(), name=f"wrapper:{self.name}")
        return self._process

    def _run(self) -> Generator[SimEvent, Any, None]:
        """Producer half: applies the delay model, fills the send pipeline.

        Production is *pipelined* with delivery (a real source keeps
        computing the next block while the previous one is on the wire):
        a small outbound buffer decouples this process from the sender
        process, so the mediator's receive cost and the window protocol
        only throttle production once the pipeline is full.
        """
        outbound = Store(self.sim, capacity=2, name=f"outbound:{self.name}")
        sender = self.sim.process(self._send(outbound),
                                  name=f"sender:{self.name}")
        remaining = self.relation.cardinality
        if remaining == 0:
            yield outbound.put((0, True, 0.0))
            yield sender
            self.finished_at = self.sim.now
            return
        per_message = self.params.tuples_per_message
        while remaining > 0:
            count = min(per_message, remaining)
            waits = self.delay_model.waiting_times(count, self.rng)
            # ndarray.sum() skips numpy's dispatch wrapper; same value,
            # same RNG stream, measurably less per-message overhead.
            production = float(waits.sum())
            if production > 0:
                yield self.sim.timeout(production)
            self.production_time += production
            before_put = self.sim.now
            yield outbound.put((count, remaining == count, production))
            blocked = self.sim.now - before_put
            self.blocked_time += blocked
            self._blocked_metric.inc(blocked)
            remaining -= count
        yield sender  # join: the wrapper is done once everything is delivered
        self.finished_at = self.sim.now

    def _send(self, outbound: Store) -> Generator[SimEvent, Any, None]:
        """Sender half: drains the pipeline through the window protocol."""
        while True:
            count, eof, production = yield outbound.get()
            yield from self.cm.deliver(self.name, count, eof=eof,
                                       production_seconds=production)
            self.tuples_sent += count
            self._sent_metric.inc(count)
            if eof:
                return

    def __repr__(self) -> str:
        return (f"Wrapper({self.name!r}, sent={self.tuples_sent}/"
                f"{self.relation.cardinality}, model={self.delay_model!r})")
