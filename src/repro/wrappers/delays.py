"""Per-tuple delay models.

A delay model produces, for ``n`` tuples, the waiting time *preceding*
each tuple (Section 4.3's ``w_p`` is the average of these).  Models are
stateless descriptions; randomness comes from the generator passed in.

The taxonomy of Section 1.2:

* **initial delay** — :class:`InitialDelay`: a long wait before the first
  tuple, then normal delivery;
* **bursty arrival** — :class:`BurstyDelay`: groups of tuples back to
  back, separated by long silences;
* **slow delivery** — a regular but slow rate: :class:`UniformDelay` (or
  :class:`ConstantDelay`) with a large ``w``; :func:`slow_delivery` is the
  explicit spelling.

The experiments' default (Section 5.1.3) is :class:`UniformDelay`:
per-tuple delays uniform on ``[0, 2w]``, hence an average of ``w``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.common.errors import ConfigurationError


class DelayModel(ABC):
    """Produces per-tuple waiting times."""

    @abstractmethod
    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Waiting time preceding each of ``n`` tuples (seconds)."""

    @abstractmethod
    def mean_wait(self) -> float:
        """Analytic long-run average waiting time per tuple (seconds)."""

    @staticmethod
    def _check_n(n: int) -> None:
        if n < 0:
            raise ConfigurationError(f"tuple count must be >= 0, got {n}")


class ConstantDelay(DelayModel):
    """Exactly ``w`` seconds before every tuple."""

    def __init__(self, w: float):
        if w < 0:
            raise ConfigurationError(f"w must be >= 0, got {w}")
        self.w = w

    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return np.full(n, self.w)

    def mean_wait(self) -> float:
        return self.w

    def __repr__(self) -> str:
        return f"ConstantDelay(w={self.w:g})"


class UniformDelay(DelayModel):
    """Per-tuple delays uniform on ``[0, 2w]`` (the paper's experiments)."""

    def __init__(self, w: float):
        if w < 0:
            raise ConfigurationError(f"w must be >= 0, got {w}")
        self.w = w

    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        if self.w == 0:
            return np.zeros(n)
        return rng.uniform(0.0, 2.0 * self.w, size=n)

    def mean_wait(self) -> float:
        return self.w

    def __repr__(self) -> str:
        return f"UniformDelay(w={self.w:g})"


def slow_delivery(w: float) -> UniformDelay:
    """Slow-delivery model: regular arrival, just slower than normal."""
    return UniformDelay(w)


class ExponentialDelay(DelayModel):
    """Memoryless per-tuple delays (Poisson tuple arrivals) with mean ``w``.

    Heavier-tailed than the experiments' uniform model: occasional long
    gaps stress the scheduler's ability to absorb irregularity.
    """

    def __init__(self, w: float):
        if w < 0:
            raise ConfigurationError(f"w must be >= 0, got {w}")
        self.w = w

    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        if self.w == 0:
            return np.zeros(n)
        return rng.exponential(self.w, size=n)

    def mean_wait(self) -> float:
        return self.w

    def __repr__(self) -> str:
        return f"ExponentialDelay(w={self.w:g})"


class NormalDelay(DelayModel):
    """Gaussian per-tuple delays truncated at zero.

    ``mean_wait`` reports the truncated mean, so the analytic lower
    bound stays a true bound.
    """

    def __init__(self, mean: float, std: float):
        if mean < 0 or std < 0:
            raise ConfigurationError(
                f"mean and std must be >= 0, got {mean}, {std}")
        self.mean = mean
        self.std = std

    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        return np.maximum(0.0, rng.normal(self.mean, self.std, size=n))

    def mean_wait(self) -> float:
        if self.std == 0:
            return self.mean
        # E[max(0, X)] for X ~ N(mean, std).
        from math import erf, exp, pi, sqrt
        z = self.mean / self.std
        pdf = exp(-0.5 * z * z) / sqrt(2.0 * pi)
        cdf = 0.5 * (1.0 + erf(z / sqrt(2.0)))
        return self.mean * cdf + self.std * pdf

    def __repr__(self) -> str:
        return f"NormalDelay(mean={self.mean:g}, std={self.std:g})"


class InitialDelay(DelayModel):
    """A single long delay before the first tuple, then a base model."""

    def __init__(self, initial: float, base: DelayModel):
        if initial < 0:
            raise ConfigurationError(f"initial delay must be >= 0, got {initial}")
        self.initial = initial
        self.base = base
        self._first_emitted = False

    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        waits = self.base.waiting_times(n, rng)
        if n > 0 and not self._first_emitted:
            waits = waits.copy()
            waits[0] += self.initial
            self._first_emitted = True
        return waits

    def reset(self) -> None:
        """Re-arm the initial delay (models are reused across repetitions)."""
        self._first_emitted = False

    def mean_wait(self) -> float:
        # The one-off initial delay vanishes in the long-run average.
        return self.base.mean_wait()

    def __repr__(self) -> str:
        return f"InitialDelay({self.initial:g}, base={self.base!r})"


class BurstyDelay(DelayModel):
    """Bursts of tuples separated by long periods of silence.

    ``burst_tuples`` arrive with ``within_burst_wait`` between them, then a
    ``gap`` of silence precedes the next burst.
    """

    def __init__(self, burst_tuples: int, gap: float,
                 within_burst_wait: float = 0.0):
        if burst_tuples < 1:
            raise ConfigurationError(
                f"burst_tuples must be >= 1, got {burst_tuples}")
        if gap < 0 or within_burst_wait < 0:
            raise ConfigurationError("gap and within_burst_wait must be >= 0")
        self.burst_tuples = burst_tuples
        self.gap = gap
        self.within_burst_wait = within_burst_wait
        self._position = 0  # index within the current burst

    def waiting_times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_n(n)
        waits = np.full(n, self.within_burst_wait)
        for i in range(n):
            if self._position == 0:
                waits[i] += self.gap
            self._position = (self._position + 1) % self.burst_tuples
        return waits

    def reset(self) -> None:
        """Restart at a burst boundary."""
        self._position = 0

    def mean_wait(self) -> float:
        return self.within_burst_wait + self.gap / self.burst_tuples

    def __repr__(self) -> str:
        return (f"BurstyDelay(burst={self.burst_tuples}, gap={self.gap:g}, "
                f"within={self.within_burst_wait:g})")
