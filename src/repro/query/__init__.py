"""Logical query model: query graphs, join trees, random query generation.

A :class:`Query` is a set of relations joined along the edges recorded in
the catalog's :class:`~repro.catalog.JoinStatistics`.  The optimizer turns
a query into a (bushy) :class:`JoinTree` — the "query tree" of Figure 2 of
the paper — which the plan builder then macro-expands into a physical QEP.
"""

from repro.query.tree import JoinTree, Query
from repro.query.generator import GeneratedWorkload, QueryGenerator

__all__ = ["GeneratedWorkload", "JoinTree", "Query", "QueryGenerator"]
