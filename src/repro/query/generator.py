"""Random join-query generation.

Section 5.1.1 of the paper generates its experiment query "using the
algorithm of [14]" (Steinbrunn, Moerkotte, Kemper — randomized join-order
benchmarks).  This module reproduces that style of generator: acyclic join
graphs of configurable shape (chain, star, or random tree), with
cardinalities and selectivities drawn from configurable ranges.

Selectivities are drawn so that joining two relations along an edge yields
an output between a configurable fraction of the smaller input and the
product bound — keeping intermediate results "reasonable", as classical
join-order benchmarks do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.catalog import Catalog
from repro.catalog.schema import Attribute, Relation
from repro.catalog.statistics import JoinStatistics
from repro.common.errors import ConfigurationError
from repro.query.tree import Query

_SHAPES = ("chain", "star", "tree")


@dataclass
class GeneratedWorkload:
    """A generated catalog plus the query over it."""

    catalog: Catalog
    query: Query

    @property
    def relation_names(self) -> list[str]:
        return self.query.relation_names


class QueryGenerator:
    """Generates random acyclic join queries.

    Parameters
    ----------
    rng:
        A seeded ``numpy.random.Generator``; all draws come from it.
    min_cardinality, max_cardinality:
        Uniform range for base-relation cardinalities.
    small_fraction:
        Fraction of relations drawn from a 10x smaller range (the paper's
        mix of "4 medium size and 2 small" relations).
    tuple_size:
        Bytes per tuple (paper: 40).
    """

    def __init__(self, rng: np.random.Generator, *,
                 min_cardinality: int = 100_000,
                 max_cardinality: int = 200_000,
                 small_fraction: float = 0.33,
                 tuple_size: int = 40):
        if min_cardinality <= 0 or max_cardinality < min_cardinality:
            raise ConfigurationError(
                f"bad cardinality range [{min_cardinality}, {max_cardinality}]")
        if not 0.0 <= small_fraction <= 1.0:
            raise ConfigurationError(
                f"small_fraction must be in [0, 1], got {small_fraction}")
        self.rng = rng
        self.min_cardinality = min_cardinality
        self.max_cardinality = max_cardinality
        self.small_fraction = small_fraction
        self.tuple_size = tuple_size

    def generate(self, num_relations: int, shape: str = "tree") -> GeneratedWorkload:
        """Generate a query over ``num_relations`` relations.

        ``shape`` selects the join-graph topology: ``"chain"``, ``"star"``
        or ``"tree"`` (random spanning tree).
        """
        if num_relations < 1:
            raise ConfigurationError(f"need >= 1 relation, got {num_relations}")
        if shape not in _SHAPES:
            raise ConfigurationError(f"shape must be one of {_SHAPES}, got {shape!r}")

        names = [self._relation_name(i) for i in range(num_relations)]
        relations = [self._make_relation(name) for name in names]
        stats = JoinStatistics()
        for a_idx, b_idx in self._edges(num_relations, shape):
            a, b = relations[a_idx], relations[b_idx]
            stats.set_selectivity(a.name, b.name, self._selectivity(a, b))
        catalog = Catalog(relations, stats, result_tuple_size=self.tuple_size)
        return GeneratedWorkload(catalog, Query(catalog, names))

    # -- internals ---------------------------------------------------------
    @staticmethod
    def _relation_name(index: int) -> str:
        # A, B, ..., Z, R26, R27, ...
        if index < 26:
            return chr(ord("A") + index)
        return f"R{index}"

    def _make_relation(self, name: str) -> Relation:
        if self.rng.random() < self.small_fraction:
            low, high = self.min_cardinality // 10, self.max_cardinality // 10
        else:
            low, high = self.min_cardinality, self.max_cardinality
        cardinality = int(self.rng.integers(low, high + 1))
        attributes = (Attribute(f"{name.lower()}_key"), Attribute(f"{name.lower()}_val"))
        return Relation(name, cardinality, self.tuple_size, attributes)

    def _edges(self, n: int, shape: str) -> list[tuple[int, int]]:
        if n == 1:
            return []
        if shape == "chain":
            return [(i, i + 1) for i in range(n - 1)]
        if shape == "star":
            return [(0, i) for i in range(1, n)]
        # Random tree: attach node i to a uniformly chosen earlier node.
        return [(int(self.rng.integers(0, i)), i) for i in range(1, n)]

    def _selectivity(self, a: Relation, b: Relation) -> float:
        """Selectivity keeping |a ⋈ b| between ~0.2x and ~2x of max input."""
        product = a.cardinality * b.cardinality
        larger = max(a.cardinality, b.cardinality)
        low = 0.2 * larger / product
        high = 2.0 * larger / product
        return float(min(1.0, self.rng.uniform(low, high)))
