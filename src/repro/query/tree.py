"""Queries and logical join trees."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.catalog.catalog import Catalog
from repro.common.errors import PlanError


class Query:
    """A join query: a set of relations connected by catalog join edges.

    The query graph must be connected, otherwise the query contains a
    cross product, which this system (like the paper's optimizer) refuses.
    """

    def __init__(self, catalog: Catalog, relation_names: list[str]):
        if not relation_names:
            raise PlanError("a query needs at least one relation")
        if len(set(relation_names)) != len(relation_names):
            raise PlanError(f"duplicate relations in query: {relation_names}")
        for name in relation_names:
            catalog.relation(name)  # raises CatalogError on unknown names
        self.catalog = catalog
        self.relation_names = list(relation_names)
        if len(relation_names) > 1:
            self._check_connected()

    def _check_connected(self) -> None:
        names = set(self.relation_names)
        seen = {self.relation_names[0]}
        frontier = [self.relation_names[0]]
        while frontier:
            current = frontier.pop()
            for other in self.catalog.statistics.neighbours(current):
                if other in names and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        if seen != names:
            missing = sorted(names - seen)
            raise PlanError(f"query graph is disconnected; unreachable: {missing}")

    def join_edges(self) -> list[tuple[str, str, float]]:
        """Join edges with both endpoints inside this query."""
        inside = set(self.relation_names)
        return [(a, b, sel) for a, b, sel in self.catalog.statistics.edges()
                if a in inside and b in inside]

    def __len__(self) -> int:
        return len(self.relation_names)

    def __repr__(self) -> str:
        return f"Query({' ⋈ '.join(self.relation_names)})"


class JoinTree:
    """A binary logical join tree (bushy in general).

    Leaves carry a relation name; inner nodes join their two children.
    Immutable once built; estimated cardinalities are computed on demand
    from a catalog.
    """

    __slots__ = ("relation", "left", "right", "_relations")

    def __init__(self, relation: Optional[str] = None,
                 left: Optional["JoinTree"] = None,
                 right: Optional["JoinTree"] = None):
        is_leaf = relation is not None
        has_children = left is not None or right is not None
        if is_leaf == has_children:
            raise PlanError("a JoinTree node is either a leaf or has two children")
        if not is_leaf and (left is None or right is None):
            raise PlanError("an inner JoinTree node needs both children")
        self.relation = relation
        self.left = left
        self.right = right
        if is_leaf:
            self._relations = (relation,)
        else:
            overlap = set(left._relations) & set(right._relations)
            if overlap:
                raise PlanError(f"relation(s) {sorted(overlap)} appear on both "
                                "sides of a join")
            self._relations = left._relations + right._relations

    # -- constructors ----------------------------------------------------
    @staticmethod
    def leaf(relation: str) -> "JoinTree":
        return JoinTree(relation=relation)

    @staticmethod
    def join(left: "JoinTree", right: "JoinTree") -> "JoinTree":
        return JoinTree(left=left, right=right)

    @staticmethod
    def left_deep(relations: list[str]) -> "JoinTree":
        """Convenience: a left-deep tree over ``relations`` in order."""
        if not relations:
            raise PlanError("left_deep needs at least one relation")
        tree = JoinTree.leaf(relations[0])
        for name in relations[1:]:
            tree = JoinTree.join(tree, JoinTree.leaf(name))
        return tree

    # -- inspection -------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.relation is not None

    def relations(self) -> tuple[str, ...]:
        """All relation names in this subtree (left-to-right leaf order)."""
        return self._relations

    def leaves(self) -> Iterator["JoinTree"]:
        """Iterate leaf nodes left to right."""
        if self.is_leaf:
            yield self
        else:
            yield from self.left.leaves()
            yield from self.right.leaves()

    def inner_nodes(self) -> Iterator["JoinTree"]:
        """Iterate join nodes bottom-up, left subtree first."""
        if not self.is_leaf:
            yield from self.left.inner_nodes()
            yield from self.right.inner_nodes()
            yield self

    def depth(self) -> int:
        """Longest root-to-leaf path length (a single leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def estimated_cardinality(self, catalog: Catalog) -> float:
        """Estimated output cardinality of this subtree."""
        return catalog.estimate_cardinality(self._relations)

    def render(self) -> str:
        """Parenthesised text form, e.g. ``((A ⋈ B) ⋈ C)``."""
        if self.is_leaf:
            return self.relation
        return f"({self.left.render()} ⋈ {self.right.render()})"

    def __repr__(self) -> str:
        return f"JoinTree({self.render()})"
