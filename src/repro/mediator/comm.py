"""The communication manager (CM).

Runs on the mediator: receives wrapper messages (charging the Table 1
per-message CPU cost on the shared mediator CPU), deposits them in the
per-source queues, keeps delivery-rate estimates, and signals a
*RateChange* to its listener when some source's estimated rate has moved
by more than the configured threshold since the last planning phase
(Section 3.1: "the CM is responsible for computing an estimate of the
delivery rate and signaling any significant changes").
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.common.errors import SimulationError
from repro.config import SimulationParameters
from repro.mediator.queues import Message, SourceQueue
from repro.mediator.rates import DeliveryRateEstimator
from repro.observability import NULL_TELEMETRY, Telemetry
from repro.exec import Kernel, SimEvent
from repro.sim.resources import CPU, NetworkLink
from repro.sim.tracing import Tracer

RateChangeListener = Callable[[str, float, float], None]


class CommunicationManager:
    """Owns the source queues and delivery-rate estimators."""

    def __init__(self, sim: Kernel, cpu: CPU, params: SimulationParameters,
                 tracer: Tracer, link: Optional[NetworkLink] = None,
                 telemetry: Optional[Telemetry] = None):
        self.sim = sim
        self.cpu = cpu
        self.params = params
        self.tracer = tracer
        self.link = link
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        registry = self.telemetry.registry
        self._messages_received = registry.counter(
            "cm.messages_received", "Wrapper messages accepted by the CM.")
        self._tuples_received = registry.counter(
            "cm.tuples_received", "Tuples delivered through the CM.")
        self._rate_changes = registry.counter(
            "cm.rate_change_signals", "Significant delivery-rate changes signalled.")
        self.queues: dict[str, SourceQueue] = {}
        self.estimators: dict[str, DeliveryRateEstimator] = {}
        self._rate_listener: Optional[RateChangeListener] = None
        self._rate_baseline: dict[str, float] = {}

    # -- registration ------------------------------------------------------
    def register_source(self, source: str) -> SourceQueue:
        """Create the queue and estimator for one wrapper."""
        if source in self.queues:
            raise SimulationError(f"source {source!r} registered twice")
        queue = SourceQueue(self.sim, source, self.params.queue_capacity_messages,
                            registry=self.telemetry.registry)
        self.queues[source] = queue
        self.estimators[source] = DeliveryRateEstimator(self.sim, source)
        return queue

    def queue(self, source: str) -> SourceQueue:
        try:
            return self.queues[source]
        except KeyError:
            raise SimulationError(f"unknown source {source!r}") from None

    def estimator(self, source: str) -> DeliveryRateEstimator:
        try:
            return self.estimators[source]
        except KeyError:
            raise SimulationError(f"unknown source {source!r}") from None

    # -- receive path (called from wrapper processes) ----------------------
    def deliver(self, source: str, tuples: int, eof: bool,
                production_seconds: float = 0.0) -> Generator[SimEvent, Any, None]:
        """Deliver one message; ``yield from`` me inside a wrapper process.

        Implements the window protocol: waits for queue space first (the
        wrapper stays suspended), optionally occupies the shared inbound
        link, then charges the per-message receive CPU cost and enqueues.

        ``production_seconds`` is the source-side production time of the
        message (from source timestamps); it feeds the delivery-rate
        estimator.
        """
        queue = self.queue(source)
        yield queue.wait_not_full()
        if self.link is not None:
            yield from self.link.transmit(tuples * self.params.tuple_size)
        yield from self.cpu.work(self.params.message_instructions)
        queue.put(Message(tuples, eof=eof))
        self._messages_received.inc()
        self._tuples_received.inc(tuples)
        self.estimators[source].on_arrival(
            tuples, production_seconds=production_seconds)
        self._check_rate_change(source)

    # -- rate-change signalling --------------------------------------------
    def set_rate_listener(self, listener: Optional[RateChangeListener]) -> None:
        """Install the callback fired on significant rate changes."""
        self._rate_listener = listener

    def arm_rate_baseline(self) -> dict[str, float]:
        """Snapshot current wait estimates as the new comparison baseline.

        Called at each planning phase; subsequent deliveries compare
        against this snapshot.  Sources without an estimate yet are left
        out (their first estimate can never be a "change").
        """
        self._rate_baseline = {
            source: est.wait_estimate
            for source, est in self.estimators.items()
            if est.wait_estimate is not None
        }
        return dict(self._rate_baseline)

    def _check_rate_change(self, source: str) -> None:
        if self._rate_listener is None:
            return
        baseline = self._rate_baseline.get(source)
        if baseline is None or baseline <= 0:
            return
        current = self.estimators[source].wait_estimate
        if current is None:
            return
        change = abs(current - baseline) / baseline
        if change > self.params.rate_change_threshold:
            # Re-arm for this source so one change fires one signal.
            self._rate_baseline[source] = current
            self.tracer.emit("rate-change", f"{source}: w {baseline:.3g} -> "
                             f"{current:.3g}", source=source)
            self._rate_changes.inc()
            self._rate_listener(source, baseline, current)

    # -- inspection ----------------------------------------------------------
    def wait_snapshot(self, default: float) -> dict[str, float]:
        """Current ``w_p`` estimate per source (``default`` where unknown)."""
        return {source: est.wait_or(default)
                for source, est in self.estimators.items()}

    def all_exhausted(self) -> bool:
        """True when every registered source has delivered everything."""
        return all(queue.exhausted for queue in self.queues.values())

    def __repr__(self) -> str:
        return f"CommunicationManager({len(self.queues)} sources)"
