"""Buffer and memory management.

* :class:`MemoryManager` accounts the query's memory budget (hash tables
  live here; M-schedulability checks ask it what fits).  It is the
  per-query *lease* layer of the hierarchical broker — see
  :mod:`repro.resources.broker`, whose :class:`~repro.resources.broker.MemoryLease`
  it aliases: standalone construction (``MemoryManager(bytes)``) keeps
  the old static-budget semantics exactly, while a lease drawn from a
  governed :class:`~repro.resources.broker.MemoryBroker` can pull and be
  offered extra bytes at runtime.
* :class:`BufferManager` owns temp relations on the local disk.  Writers
  use **write-behind**: tuples accumulate into I/O chunks (Table 1's
  8-page I/O cache) flushed by asynchronous background writes.  Readers
  use **prefetch** (double buffering), the paper's "asynchronous I/O"
  assumption for complement fragments: the next chunk is fetched while
  the CPU processes the current one.

Every I/O charges the Table 1 per-I/O CPU cost on the mediator CPU, so
materialization overhead genuinely competes with query processing.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.common.errors import SimulationError
from repro.config import SimulationParameters
from repro.resources.broker import MemoryLease
from repro.sim.cache import LRUPageCache
from repro.exec import Kernel, Process, SimEvent
from repro.sim.resources import CPU, Disk
from repro.sim.stats import Counter
from repro.sim.tracing import Tracer

#: the per-query memory budget is the lease layer of the resource
#: broker; the historical name is kept for every existing touchpoint.
MemoryManager = MemoryLease


class HashTable:
    """A hash table filling one join's build side (memory accounting only).

    The estimated size is reserved up front when the build chain is
    scheduled; inserts beyond the estimate grow the reservation page by
    page.  :meth:`insert` returns False when growth fails — the memory
    overflow the DQO must handle.
    """

    def __init__(self, join_name: str, memory: MemoryManager,
                 tuple_size: int, page_size: int, estimated_tuples: float):
        self.join_name = join_name
        self.memory = memory
        self.tuple_size = tuple_size
        self.page_size = page_size
        self.owner = f"hash:{join_name}"
        self.tuples = 0
        self.reserved_bytes = int(estimated_tuples) * tuple_size
        self.complete = False
        memory.reserve(self.owner, self.reserved_bytes)

    @property
    def bytes_used(self) -> int:
        return self.tuples * self.tuple_size

    def insert(self, tuples: int) -> bool:
        """Account ``tuples`` insertions; False on memory overflow."""
        if self.complete:
            raise SimulationError(f"insert into completed table {self.join_name!r}")
        self.tuples += tuples
        while self.bytes_used > self.reserved_bytes:
            if not self.memory.try_grow(self.owner, self.page_size):
                self.tuples -= tuples
                return False
            self.reserved_bytes += self.page_size
        return True

    def seal(self) -> None:
        """Mark the build finished (probing may begin)."""
        self.complete = True

    def drop(self) -> None:
        """Release the table's memory (after its probe chain finished)."""
        self.memory.release(self.owner)

    def __repr__(self) -> str:
        return (f"HashTable({self.join_name!r}, {self.tuples} tuples, "
                f"complete={self.complete})")


class TempRelation:
    """A temp relation on one local disk — or in memory.

    "Such a materialization can occur in memory or on disk depending on
    the available resources" (Section 2.2): an in-memory temp skips all
    disk I/O; its pages are charged against the query's memory budget
    instead and released when the temp is destroyed.
    """

    def __init__(self, name: str, extent: int, tuple_size: int,
                 disk_index: int = 0, in_memory: bool = False):
        self.name = name
        self.extent = extent
        self.tuple_size = tuple_size
        self.disk_index = disk_index
        self.in_memory = in_memory
        self.tuples = 0
        self.pages = 0
        self.sealed = False
        self.destroyed = False
        #: the budget an in-memory temp's pages are charged against.
        self.memory_manager: Optional["MemoryManager"] = None

    @property
    def memory_owner(self) -> str:
        return f"temp:{self.name}:{self.extent}"

    def __repr__(self) -> str:
        location = "memory" if self.in_memory else f"disk{self.disk_index}"
        return (f"TempRelation({self.name!r}, {self.tuples} tuples, "
                f"{self.pages} pages, {location}, sealed={self.sealed})")


class BufferManager:
    """Creates temp relations and hands out writers/readers.

    With several local disks (Table 1's "Number of Local Disks"), temps
    are assigned round-robin so concurrent materializations spread their
    I/O — the classic reason a mediator with one CPU still benefits from
    multiple spindles.
    """

    def __init__(self, sim: Kernel, cpu: CPU, disks: "Disk | list[Disk]",
                 cache: LRUPageCache, params: SimulationParameters,
                 tracer: Tracer):
        self.sim = sim
        self.cpu = cpu
        self.disks = [disks] if isinstance(disks, Disk) else list(disks)
        if not self.disks:
            raise SimulationError("buffer manager needs at least one disk")
        self.cache = cache
        self.params = params
        self.tracer = tracer
        self._next_extent = 0
        self.temps: list[TempRelation] = []
        self.tuples_spilled = Counter()
        self.tuples_reloaded = Counter()

    @property
    def disk(self) -> Disk:
        """The first disk (convenience for single-disk configurations)."""
        return self.disks[0]

    def create_temp(self, name: str, *,
                    memory: Optional[MemoryManager] = None,
                    estimated_tuples: float = 0.0,
                    prefer_memory: bool = False) -> "TempWriter":
        """Create a temp relation and return its writer.

        With ``prefer_memory`` (and a ``memory`` budget that fits the
        estimate), the temp lives in query memory: writes and reads cost
        no disk time, pages are reserved incrementally, and a mid-write
        budget shortage transparently falls back to disk.
        """
        self._next_extent += 1
        disk_index = (self._next_extent - 1) % len(self.disks)
        estimated_bytes = int(estimated_tuples * self.params.tuple_size)
        in_memory = (prefer_memory and memory is not None
                     and memory.would_fit(estimated_bytes))
        temp = TempRelation(name, self._next_extent, self.params.tuple_size,
                            disk_index=disk_index, in_memory=in_memory)
        self.temps.append(temp)
        writer = TempWriter(self, temp, memory=memory if in_memory else None)
        self.tracer.emit("temp-create", name, extent=temp.extent,
                         location="memory" if in_memory else f"disk{disk_index}")
        return writer

    def destroy_temp(self, temp: TempRelation) -> None:
        """Release a consumed temp's resources (memory pages / cache)."""
        if temp.destroyed:
            return
        temp.destroyed = True
        if temp.in_memory and temp.memory_manager is not None:
            temp.memory_manager.release(temp.memory_owner)
        self.cache.invalidate_extent(temp.extent)
        self.tracer.emit("temp-destroy", temp.name, extent=temp.extent)

    def reader(self, temp: TempRelation) -> "TempReader":
        """A reader for ``temp``.

        May be constructed before the temp is sealed (a complement
        fragment is created at degradation time, while its MF is still
        running); actually *reading* an unsealed temp is an error.
        """
        return TempReader(self, temp)

    # -- shared I/O helper ---------------------------------------------------
    def chunk_io(self, temp: TempRelation, start_page: int,
                 num_pages: int) -> Generator[SimEvent, Any, None]:
        """One chunk transfer: per-I/O CPU cost, then the disk, then cache."""
        yield from self.cpu.work(self.params.io_cpu_instructions)
        if not all(self.cache.lookup(temp.extent, page)
                   for page in range(start_page, start_page + num_pages)):
            disk = self.disks[temp.disk_index]
            yield from disk.transfer(temp.extent, start_page, num_pages)
        for page in range(start_page, start_page + num_pages):
            self.cache.insert(temp.extent, page)


class TempWriter:
    """Write-behind writer for one temp relation (disk or memory)."""

    def __init__(self, manager: BufferManager, temp: TempRelation,
                 memory: Optional[MemoryManager] = None):
        self.manager = manager
        self.temp = temp
        self._pending_tuples = 0
        self._flushed_pages = 0
        self._outstanding: list[Process] = []
        self._finished = False
        if memory is not None:
            temp.memory_manager = memory
            memory.reserve(temp.memory_owner, 0)

    @property
    def params(self) -> SimulationParameters:
        return self.manager.params

    def write(self, tuples: int) -> None:
        """Accept ``tuples``; full chunks flush in the background.

        Synchronous and instantaneous for the caller: the disk work
        happens in spawned write-behind processes.  In-memory temps only
        grow their page reservation — falling back to disk if the budget
        runs out.
        """
        if self._finished:
            raise SimulationError(f"write to finished temp {self.temp.name!r}")
        if tuples < 0:
            raise SimulationError(f"negative tuple count: {tuples}")
        self.temp.tuples += tuples
        self.manager.tuples_spilled.add(tuples)
        if self.temp.in_memory:
            if self._grow_memory_pages():
                return
            self._fall_back_to_disk()
            return
        self._pending_tuples += tuples
        chunk_tuples = self.params.io_chunk_pages * self.params.tuples_per_page
        while self._pending_tuples >= chunk_tuples:
            self._pending_tuples -= chunk_tuples
            self._flush(self.params.io_chunk_pages)

    def _grow_memory_pages(self) -> bool:
        """Extend the in-memory temp's reservation; False if it no
        longer fits."""
        temp = self.temp
        pages_needed = -(-temp.tuples // self.params.tuples_per_page)
        delta = pages_needed - temp.pages
        if delta <= 0:
            return True
        assert temp.memory_manager is not None
        if not temp.memory_manager.try_grow(temp.memory_owner,
                                            delta * self.params.page_size):
            return False
        temp.pages = pages_needed
        return True

    def _fall_back_to_disk(self) -> None:
        """Convert a memory temp to disk mid-write (budget exhausted).

        Everything buffered so far becomes pending write-behind work —
        the deferred I/O is paid now, exactly as if the temp had been on
        disk from the start.
        """
        temp = self.temp
        assert temp.memory_manager is not None
        temp.memory_manager.release(temp.memory_owner)
        temp.memory_manager = None
        temp.in_memory = False
        temp.pages = 0
        self._pending_tuples = temp.tuples
        self.manager.tracer.emit("temp-fallback", temp.name,
                                 tuples=temp.tuples)
        chunk_tuples = self.params.io_chunk_pages * self.params.tuples_per_page
        while self._pending_tuples >= chunk_tuples:
            self._pending_tuples -= chunk_tuples
            self._flush(self.params.io_chunk_pages)

    def _flush(self, num_pages: int) -> None:
        start = self._flushed_pages
        self._flushed_pages += num_pages
        self.temp.pages = self._flushed_pages
        proc = self.manager.sim.process(
            self.manager.chunk_io(self.temp, start, num_pages),
            name=f"write:{self.temp.name}:{start}")
        self._outstanding.append(proc)

    def finish(self) -> Generator[SimEvent, Any, TempRelation]:
        """Flush the tail and wait for all write-behind I/O. ``yield from`` me."""
        if self._finished:
            raise SimulationError(f"temp {self.temp.name!r} finished twice")
        self._finished = True
        if not self.temp.in_memory and self._pending_tuples > 0:
            pages = -(-self._pending_tuples // self.params.tuples_per_page)
            self._pending_tuples = 0
            self._flush(pages)
        if self._outstanding:
            yield self.manager.sim.all_of(self._outstanding)
        self.temp.sealed = True
        self.manager.tracer.emit("temp-seal", self.temp.name,
                                 tuples=self.temp.tuples, pages=self.temp.pages)
        return self.temp


class TempReader:
    """Prefetching, *non-blocking* reader for a sealed temp relation.

    The reader keeps an asynchronous fetch in flight (the paper's
    "asynchronous I/O" assumption for complement fragments): consumers
    take only tuples that are already loaded — they never block the DQP
    on the disk — and subscribe to :meth:`wait_event` when the prefetcher
    has not caught up yet.
    """

    def __init__(self, manager: BufferManager, temp: TempRelation):
        self.manager = manager
        self.temp = temp
        self.tuples_read = 0
        self._loaded_tuples = 0
        self._next_chunk_page = 0
        self._inflight: Optional[Process] = None

    @property
    def params(self) -> SimulationParameters:
        return self.manager.params

    @property
    def exhausted(self) -> bool:
        """All tuples consumed.  An unsealed temp is never exhausted —
        its writer may still add tuples."""
        return self.temp.sealed and self.tuples_read >= self.temp.tuples

    @property
    def available_tuples(self) -> int:
        """Tuples loaded in memory and not yet consumed."""
        if self.temp.in_memory:
            return self.temp.tuples - self.tuples_read
        return self._loaded_tuples - self.tuples_read

    def has_data(self) -> bool:
        """True when :meth:`read_now` would return tuples."""
        return self.temp.sealed and self.available_tuples > 0

    def read_now(self, max_tuples: int) -> int:
        """Consume up to ``max_tuples`` *already loaded* tuples (never waits).

        Returns 0 when the prefetcher is behind; arms the next prefetch
        either way.
        """
        if max_tuples <= 0:
            raise SimulationError(f"batch size must be positive, got {max_tuples}")
        if not self.temp.sealed:
            raise SimulationError(
                f"reading temp {self.temp.name!r} before it is sealed")
        if self.temp.destroyed:
            raise SimulationError(
                f"reading destroyed temp {self.temp.name!r}")
        taken = min(max_tuples, self.available_tuples)
        if taken > 0:
            self.tuples_read += taken
            self.manager.tuples_reloaded.add(taken)
        if not self.temp.in_memory:
            self._ensure_prefetch()
        return taken

    def wait_event(self) -> SimEvent:
        """Event that fires once more tuples are loaded (or immediately)."""
        if self.has_data() or self.exhausted:
            event = self.manager.sim.event(name=f"loaded:{self.temp.name}")
            event.succeed()
            return event
        self._ensure_prefetch()
        if self._inflight is None:
            raise SimulationError(
                f"temp {self.temp.name!r}: nothing loaded, nothing in flight")
        return self._inflight

    def _ensure_prefetch(self) -> None:
        """Keep a chunk in flight while pages remain and the buffer is low."""
        if self._inflight is not None or not self.temp.sealed:
            return
        if self._next_chunk_page >= self.temp.pages:
            return
        chunk_tuples = self.params.io_chunk_pages * self.params.tuples_per_page
        if self.available_tuples >= chunk_tuples:
            return  # a full chunk is buffered; fetch lazily
        self._start_fetch()

    def _start_fetch(self) -> None:
        start = self._next_chunk_page
        num_pages = min(self.params.io_chunk_pages, self.temp.pages - start)
        if num_pages <= 0:
            raise SimulationError(
                f"fetch past the end of temp {self.temp.name!r}")
        self._next_chunk_page = start + num_pages

        def fetch() -> Generator[SimEvent, Any, None]:
            yield from self.manager.chunk_io(self.temp, start, num_pages)
            loaded = min((start + num_pages) * self.params.tuples_per_page,
                         self.temp.tuples)
            self._loaded_tuples = max(self._loaded_tuples, loaded)
            self._inflight = None
            self._ensure_prefetch()

        self._inflight = self.manager.sim.process(
            fetch(), name=f"read:{self.temp.name}:{start}")
