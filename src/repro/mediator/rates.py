"""Delivery-rate estimation.

"The communication manager is aware of the instantaneous data arrival
rate.  Thus, it is able to compute dynamically an estimated value of the
averaged data delivery rate" (Section 4.3).  The estimator tracks the
average per-tuple *waiting time* ``w_p`` (the reciprocal of the delivery
rate) with an exponentially weighted moving average over message
inter-arrival gaps.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ConfigurationError
from repro.exec import Kernel


class DeliveryRateEstimator:
    """EWMA estimate of one wrapper's per-tuple waiting time."""

    def __init__(self, sim: Kernel, source: str, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.sim = sim
        self.source = source
        self.alpha = alpha
        self.tuples_delivered = 0
        self.messages_delivered = 0
        self._wait_estimate: Optional[float] = None

    def on_arrival(self, tuples: int, production_seconds: float = 0.0) -> None:
        """Record a message of ``tuples`` tuples arriving now.

        ``production_seconds`` is the time the *source* spent producing
        this message (derived from source timestamps carried on the
        message, as real mediators do).  Raw arrival gaps would conflate
        source slowness with mediator-side effects — window-protocol
        blocking and receive-CPU contention — and a loaded mediator would
        then mistake every source for a slow one.
        """
        if production_seconds < 0:
            raise ConfigurationError(
                f"negative production time: {production_seconds}")
        if tuples > 0:
            sample = production_seconds / tuples
            if self._wait_estimate is None:
                self._wait_estimate = sample
            else:
                self._wait_estimate = (self.alpha * sample
                                       + (1.0 - self.alpha) * self._wait_estimate)
            self.tuples_delivered += tuples
        self.messages_delivered += 1

    @property
    def wait_estimate(self) -> Optional[float]:
        """Estimated average per-tuple waiting time ``w_p`` (None before data)."""
        return self._wait_estimate

    def wait_or(self, default: float) -> float:
        """The estimate, or ``default`` when no data has arrived yet."""
        return self._wait_estimate if self._wait_estimate is not None else default

    @property
    def delivery_rate(self) -> Optional[float]:
        """Estimated tuples per second (``d_p = 1 / w_p``)."""
        if self._wait_estimate is None or self._wait_estimate <= 0:
            return None
        return 1.0 / self._wait_estimate

    def __repr__(self) -> str:
        wait = f"{self._wait_estimate:.3g}" if self._wait_estimate else "?"
        return (f"DeliveryRateEstimator({self.source!r}, w={wait}, "
                f"tuples={self.tuples_delivered})")
