"""Mediator runtime: communication manager, queues, buffers, memory.

The communication manager (Section 3.1) receives messages from wrappers
into per-source bounded queues — the "window protocol" that suspends a
wrapper when its queue is full — and maintains delivery-rate estimates,
signalling significant changes to the engine.  The buffer manager owns
temp relations on the local disk (write-behind and prefetch through the
I/O cache) and the memory manager accounts hash-table memory for
M-schedulability checks.
"""

from repro.mediator.queues import Message, SourceQueue
from repro.mediator.rates import DeliveryRateEstimator
from repro.mediator.comm import CommunicationManager
from repro.mediator.buffer import (
    BufferManager,
    HashTable,
    MemoryManager,
    TempReader,
    TempRelation,
    TempWriter,
)

__all__ = [
    "BufferManager",
    "CommunicationManager",
    "DeliveryRateEstimator",
    "HashTable",
    "MemoryManager",
    "Message",
    "SourceQueue",
    "TempReader",
    "TempRelation",
    "TempWriter",
]
