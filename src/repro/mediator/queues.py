"""Per-source communication queues (the window protocol).

Each wrapper has one bounded :class:`SourceQueue` at the mediator.  The
queue counts capacity in *messages*: when it is full the producing
wrapper blocks — "sub-query processing at the wrapper is suspended as it
cannot send more tuples, until tuples are consumed from that queue"
(Section 2.1).  Consumers take *batches of tuples*, which may split a
message; a partially consumed message still occupies its slot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.common.errors import SimulationError
from repro.observability.registry import NULL_REGISTRY, MetricsRegistry
from repro.exec import Kernel, SimEvent
from repro.sim.stats import Counter, TimeWeightedStat


@dataclass
class Message:
    """One wrapper-to-mediator message: a count of tuples, plus EOF flag."""

    tuples: int
    eof: bool = False

    def __post_init__(self):
        if self.tuples < 0:
            raise SimulationError(f"message with negative tuples: {self.tuples}")


class SourceQueue:
    """Bounded FIFO of messages from one wrapper."""

    def __init__(self, sim: Kernel, source: str, capacity_messages: int,
                 registry: "MetricsRegistry | None" = None):
        if capacity_messages < 1:
            raise SimulationError(
                f"queue capacity must be >= 1 message, got {capacity_messages}")
        self.sim = sim
        self.source = source
        self.capacity_messages = capacity_messages
        registry = registry if registry is not None else NULL_REGISTRY
        self._depth_gauge = registry.gauge(
            f"queue.{source}.depth_tuples",
            f"Tuples buffered in source {source}'s communication queue.")
        self._messages: deque[Message] = deque()
        self._space_waiters: deque[SimEvent] = deque()
        self._data_waiters: list[SimEvent] = []
        self.eof_received = False
        self.tuples_available = 0
        self.tuples_consumed = Counter()
        self.occupancy = TimeWeightedStat(sim)
        # Window-protocol accounting: total time spent at capacity.  The
        # delivery-rate estimator subtracts this from arrival gaps so a
        # consumer-side stall is not mistaken for a slow source.
        self._full_since: float | None = None
        self._full_time_total = 0.0

    # -- producer side (wrapper / communication manager) -----------------
    @property
    def is_full(self) -> bool:
        return len(self._messages) >= self.capacity_messages

    def wait_not_full(self) -> SimEvent:
        """Event that succeeds once there is room for one more message."""
        event = self.sim.event(name=f"space:{self.source}")
        if not self.is_full:
            event.succeed()
        else:
            self._space_waiters.append(event)
        return event

    def put(self, message: Message) -> None:
        """Deposit a message; caller must have awaited :meth:`wait_not_full`."""
        if self.is_full:
            raise SimulationError(f"queue {self.source!r} overflow")
        if self.eof_received:
            raise SimulationError(f"queue {self.source!r} got data after EOF")
        self._messages.append(message)
        self.tuples_available += message.tuples
        if message.eof:
            self.eof_received = True
        self.occupancy.record(len(self._messages))
        self._depth_gauge.set(self.tuples_available)
        if self.is_full and self._full_since is None:
            self._full_since = self.sim.now
        waiters, self._data_waiters = self._data_waiters, []
        for waiter in waiters:
            waiter.succeed(self.source)

    # -- consumer side (query processor) ----------------------------------
    @property
    def exhausted(self) -> bool:
        """EOF seen and every tuple consumed: this source is finished."""
        return self.eof_received and self.tuples_available == 0

    def has_data(self) -> bool:
        return self.tuples_available > 0

    def data_event(self) -> SimEvent:
        """Event that succeeds on the next message arrival.

        Succeeds immediately if data is already available, and also fires
        for the EOF message, so a consumer waiting on an exhausted source
        wakes up and notices termination.
        """
        event = self.sim.event(name=f"data:{self.source}")
        if self.tuples_available > 0 or self.eof_received:
            event.succeed(self.source)
        else:
            self._data_waiters.append(event)
        return event

    def take_batch(self, max_tuples: int) -> int:
        """Remove up to ``max_tuples`` tuples; returns the count taken.

        Never blocks.  Frees message slots (waking a blocked producer) as
        messages are fully consumed.
        """
        if max_tuples <= 0:
            raise SimulationError(f"batch size must be positive, got {max_tuples}")
        taken = 0
        while taken < max_tuples and self._messages:
            head = self._messages[0]
            want = max_tuples - taken
            if head.tuples <= want:
                taken += head.tuples
                self._messages.popleft()
                self._wake_producer()
            else:
                head.tuples -= want
                taken += want
        self.tuples_available -= taken
        self.tuples_consumed.add(taken)
        self.occupancy.record(len(self._messages))
        self._depth_gauge.set(self.tuples_available)
        if not self.is_full and self._full_since is not None:
            self._full_time_total += self.sim.now - self._full_since
            self._full_since = None
        return taken

    @property
    def full_time_total(self) -> float:
        """Cumulative time this queue has spent at capacity."""
        if self._full_since is not None:
            return self._full_time_total + (self.sim.now - self._full_since)
        return self._full_time_total

    def _wake_producer(self) -> None:
        if self._space_waiters and not self.is_full:
            self._space_waiters.popleft().succeed()

    def __repr__(self) -> str:
        return (f"SourceQueue({self.source!r}, {len(self._messages)}/"
                f"{self.capacity_messages} msgs, {self.tuples_available} tuples, "
                f"eof={self.eof_received})")
