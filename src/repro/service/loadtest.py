"""Sustained-arrival load testing for the always-on service.

:func:`run_loadtest` drives one in-process :class:`~repro.service.
service.QueryService` with an *open-loop* arrival process: submissions
arrive on a fixed schedule (``rate`` per second) regardless of how fast
the service completes them, which is what exposes queueing behavior —
a closed loop would politely wait and never build a backlog.

The pool is sized to ``concurrency`` simultaneous leases, so excess
submissions queue in the admission controller as cheap tickets (no
query-view world exists until admission), per-tenant priorities decide
who runs first, and completion latency includes the queue wait.  The
report (p50/p95/p99/mean/max latency, throughput, admission waits,
per-tenant accounting) feeds ``scripts/service_loadtest.py``, the
``service_loadtest`` bench cases, and ``BENCH_PR10.json``.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.common.errors import ConfigurationError
from repro.config import SimulationParameters
from repro.resources import TenantSpec
from repro.service.service import (
    QueryService,
    SubmissionRecord,
    SubmissionRequest,
)
from repro.service.stats import percentile

#: default tenant mix: a high-priority interactive tenant, a default
#: batch tenant, and a capped background tenant — enough to exercise
#: priority admission and the concurrency quota in one run.
DEFAULT_TENANTS = (
    TenantSpec("gold", priority=2.0),
    TenantSpec("silver", priority=1.0),
    TenantSpec("bronze", priority=0.0, max_active=4096),
)


async def run_loadtest(submissions: int = 10_000, rate: float = 150.0,
                       scale: float = 0.0005, wait_us: float = 50.0,
                       jitter: float = 1.0, strategy: str = "DSE",
                       concurrency: int = 64, seed: int = 1,
                       tenants: Sequence[TenantSpec] = DEFAULT_TENANTS,
                       admission: str = "priority",
                       params: Optional[SimulationParameters] = None,
                       archive_dir: Optional[Union[str, Path]] = None,
                       workers: int = 1,
                       on_progress: Optional[Callable[[int, int], None]]
                       = None) -> Dict[str, Any]:
    """Run one sustained-arrival load test; returns the JSON-safe report.

    ``workers > 1`` runs the submissions on a sharded worker-process
    pool (the ``repro serve --workers N`` execution plane); the report
    then carries per-worker completion counts and the steal total.
    ``on_progress(submitted, completed)`` is invoked at roughly every
    5% of the arrival schedule (and once at the end of submission).
    """
    if submissions < 1:
        raise ConfigurationError(
            f"submissions must be >= 1, got {submissions}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    if concurrency < 1:
        raise ConfigurationError(
            f"concurrency must be >= 1, got {concurrency}")
    if params is None:
        params = SimulationParameters(telemetry_enabled=True)
    # Per-worker carve-outs shrink the pool N-fold, so scale it with the
    # fleet: every worker still admits `concurrency` leases.
    pool = concurrency * params.query_memory_bytes * max(1, workers)
    service = QueryService(
        params=params, seed=seed, global_memory_bytes=pool,
        admission=admission, tenants=list(tenants),
        latency_window=submissions,
        # History only feeds the HTTP view; keep it tiny so a 10k run
        # does not hold 10k finished records inside the service.
        history=64,
        # Archiving (when enabled) measures the cost of the durable
        # telemetry plane under load — the writer must stay off the
        # kernel hot path for service_qps to hold.
        archive_dir=archive_dir,
        workers=workers)
    await service.start()

    loop = asyncio.get_running_loop()
    names = [spec.name for spec in tenants]
    records: List[SubmissionRecord] = []
    stride = max(1, submissions // 20)
    started = loop.time()
    wall_started = time.time()
    for index in range(submissions):
        due = started + index / rate
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            # Behind schedule: still yield, or the arrival loop starves
            # the kernel and nothing completes until arrivals stop.
            await asyncio.sleep(0)
        request = SubmissionRequest(
            tenant=names[index % len(names)], strategy=strategy,
            scale=scale, seed=seed + index, wait_us=wait_us, jitter=jitter)
        records.append(service.submit(request))
        if on_progress is not None and (index + 1) % stride == 0:
            on_progress(index + 1, service.completed)

    await service.stop()
    wall = time.time() - wall_started
    # Slot counters survive backend.stop (only liveness flips), so this
    # reads the final per-worker completion/steal tallies.
    worker_rows = service.backend.describe()
    steals = service.backend.steals_total
    if on_progress is not None:
        on_progress(submissions, service.completed)

    latencies = sorted(record.latency(record.finished_at or 0.0)
                       for record in records if record.finished)
    waits = sorted(record.admission_wait for record in records
                   if record.finished)
    failed = [record for record in records
              if record.state == "failed"]
    if failed:
        raise RuntimeError(
            f"{len(failed)} submissions failed; first: "
            f"{failed[0].id}: {failed[0].error}")
    return {
        "config": {
            "submissions": submissions, "rate": rate, "scale": scale,
            "wait_us": wait_us, "jitter": jitter, "strategy": strategy,
            "concurrency": concurrency, "seed": seed,
            "admission": admission, "workers": workers,
            "tenants": [spec.name for spec in tenants],
        },
        "backend": service.backend.name,
        "workers": worker_rows or None,
        "steals": steals,
        "submitted": service.submitted,
        "completed": service.completed,
        "failed": service.failed,
        "rejected": service.rejected,
        "wall_s": wall,
        "service_qps": service.completed / wall if wall > 0 else 0.0,
        "latency": {
            "p50_s": percentile(latencies, 0.50),
            "p95_s": percentile(latencies, 0.95),
            "p99_s": percentile(latencies, 0.99),
            "mean_s": (sum(latencies) / len(latencies)
                       if latencies else 0.0),
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "admission": {
            "queued": sum(1 for wait in waits if wait > 0),
            "mean_wait_s": sum(waits) / len(waits) if waits else 0.0,
            "p99_wait_s": percentile(waits, 0.99),
            "max_wait_s": waits[-1] if waits else 0.0,
        },
        "tenants": service.tenants.snapshot(),
        "archive": (service.archive.stats()
                    if service.archive is not None else None),
    }
