"""Offline queries over the durable telemetry archive (``repro history``).

The live service answers "what is happening now"; this module answers
"what happened" from the on-disk archive alone — no running service
required.  It loads ``outcome`` records (one per completed submission)
through the corruption-tolerant :class:`~repro.observability.archive.
ArchiveReader`, then recomputes latency percentiles, per-tenant
breakdowns, SLO compliance (:func:`slo_report`) and window-vs-window
regressions (:func:`diff_windows`) from the raw events — unlike the live
``LatencyWindow`` ring these are exact over the whole selected range,
not a bounded approximation.

Time arguments follow the CLI convention: values ``> 0`` are epoch
seconds, values ``<= 0`` are relative to *now* (``--since -3600`` means
"the last hour").
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.observability.archive import (
    ArchiveReader,
    RECORD_ALERT,
    RECORD_OUTCOME,
)
from repro.service.slo import SLOSpec
from repro.service.stats import percentile


def resolve_time(value: Optional[float],
                 now: Optional[float] = None) -> Optional[float]:
    """CLI time argument → epoch seconds (``<= 0`` is relative to now)."""
    if value is None:
        return None
    if value > 0:
        return value
    base = time.time() if now is None else now
    return base + value


def load_outcomes(directory: str, *, since: Optional[float] = None,
                  until: Optional[float] = None,
                  tenant: Optional[str] = None
                  ) -> Tuple[List[Dict[str, Any]], ArchiveReader]:
    """Outcome records in ``[since, until]``, oldest first, plus reader.

    The reader carries the corruption counters (``skipped_lines``,
    ``skipped_segments``) callers surface as warnings.
    """
    reader = ArchiveReader(directory, kinds=(RECORD_OUTCOME,),
                           since=since, until=until, tenant=tenant)
    records = sorted(reader, key=lambda record: record.get("t", 0.0))
    return records, reader


def load_alerts(directory: str, *, since: Optional[float] = None,
                until: Optional[float] = None
                ) -> List[Dict[str, Any]]:
    """SLO alert transition records in ``[since, until]``, oldest first."""
    reader = ArchiveReader(directory, kinds=(RECORD_ALERT,),
                           since=since, until=until)
    return sorted(reader, key=lambda record: record.get("t", 0.0))


def summarize_outcomes(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Exact latency/wait statistics recomputed from raw outcomes."""
    finished = [record for record in records if record.get("ok", True)]
    failed = len(records) - len(finished)
    latencies = sorted(float(record.get("latency_s", 0.0))
                       for record in finished)
    waits = sorted(float(record.get("wait_s", 0.0)) for record in finished)
    per_tenant: Dict[str, List[float]] = {}
    for record in finished:
        per_tenant.setdefault(str(record.get("tenant") or "-"), []).append(
            float(record.get("latency_s", 0.0)))
    tenants = {}
    for name in sorted(per_tenant):
        values = sorted(per_tenant[name])
        tenants[name] = {
            "completed": len(values),
            "p50_s": percentile(values, 0.50),
            "p99_s": percentile(values, 0.99),
            "mean_s": sum(values) / len(values) if values else 0.0,
        }
    span = ((records[-1]["t"] - records[0]["t"])
            if len(records) >= 2 else 0.0)
    return {
        "outcomes": len(records),
        "completed": len(finished),
        "failed": failed,
        "span_s": span,
        "throughput_qps": (len(finished) / span if span > 0 else 0.0),
        "latency": {
            "p50_s": percentile(latencies, 0.50),
            "p95_s": percentile(latencies, 0.95),
            "p99_s": percentile(latencies, 0.99),
            "mean_s": (sum(latencies) / len(latencies)
                       if latencies else 0.0),
            "max_s": latencies[-1] if latencies else 0.0,
        },
        "admission_wait": {
            "mean_s": sum(waits) / len(waits) if waits else 0.0,
            "p99_s": percentile(waits, 0.99),
            "max_s": waits[-1] if waits else 0.0,
        },
        "tenants": tenants,
    }


def slo_report(records: Sequence[Dict[str, Any]],
               specs: Sequence[SLOSpec]) -> List[Dict[str, Any]]:
    """Offline compliance per objective over the selected outcomes."""
    if not specs:
        raise ConfigurationError(
            "slo_report needs at least one objective (pass --slo)")
    report = []
    for spec in specs:
        events = 0
        bad = 0
        for record in records:
            if not record.get("ok", True):
                continue
            if not spec.matches(record.get("tenant")):
                continue
            events += 1
            if not spec.good(float(record.get("latency_s", 0.0))):
                bad += 1
        compliance = 1.0 - bad / events if events else 1.0
        report.append({
            "objective": spec.name,
            "tenant": spec.tenant,
            "target": spec.target,
            "events": events,
            "bad": bad,
            "compliance": compliance,
            "met": compliance >= spec.target,
            # Fraction of the error budget consumed over the range
            # (1.0 = spent exactly; > 1.0 = objective missed).
            "budget_spent": ((bad / events) / spec.error_budget
                             if events else 0.0),
        })
    return report


def parse_window(text: str, now: Optional[float] = None
                 ) -> Tuple[float, float]:
    """``START..END`` (epoch or <=0-relative seconds) → ``(since, until)``."""
    parts = text.split("..")
    if len(parts) != 2:
        raise ConfigurationError(
            f"bad window {text!r}; expected START..END epoch seconds "
            f"(values <= 0 are relative to now, e.g. -7200..-3600)")
    try:
        raw_since, raw_until = float(parts[0]), float(parts[1])
    except ValueError as exc:
        raise ConfigurationError(f"bad window {text!r}: {exc}") from exc
    base = time.time() if now is None else now
    since = resolve_time(raw_since, base)
    until = resolve_time(raw_until, base)
    assert since is not None and until is not None
    if since >= until:
        raise ConfigurationError(
            f"bad window {text!r}: start {since:.3f} is not before "
            f"end {until:.3f}")
    return since, until


def diff_windows(directory: str, window_a: str, window_b: str, *,
                 tenant: Optional[str] = None,
                 now: Optional[float] = None) -> Dict[str, Any]:
    """Compare two time windows of the archive (B relative to A).

    The deltas answer the regression question directly: positive
    ``p99_s`` delta means window B is slower than window A.
    """
    since_a, until_a = parse_window(window_a, now)
    since_b, until_b = parse_window(window_b, now)
    records_a, _ = load_outcomes(directory, since=since_a, until=until_a,
                                 tenant=tenant)
    records_b, _ = load_outcomes(directory, since=since_b, until=until_b,
                                 tenant=tenant)
    summary_a = summarize_outcomes(records_a)
    summary_b = summarize_outcomes(records_b)
    deltas = {}
    for key in ("p50_s", "p95_s", "p99_s", "mean_s", "max_s"):
        before = summary_a["latency"][key]
        after = summary_b["latency"][key]
        deltas[key] = {
            "a": before,
            "b": after,
            "delta": after - before,
            "ratio": (after / before) if before > 0 else None,
        }
    deltas["throughput_qps"] = {
        "a": summary_a["throughput_qps"],
        "b": summary_b["throughput_qps"],
        "delta": summary_b["throughput_qps"] - summary_a["throughput_qps"],
        "ratio": (summary_b["throughput_qps"] / summary_a["throughput_qps"]
                  if summary_a["throughput_qps"] > 0 else None),
    }
    return {
        "window_a": {"since": since_a, "until": until_a,
                     "summary": summary_a},
        "window_b": {"since": since_b, "until": until_b,
                     "summary": summary_b},
        "deltas": deltas,
    }
