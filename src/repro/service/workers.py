"""The sharded execution plane: a work-stealing worker-process pool.

``repro serve --workers N`` splits query execution across N long-lived
worker processes, each running its own :class:`~repro.exec.aio.
AsyncioKernel` and machine :class:`~repro.core.runtime.World` with a
memory pool carved out of the coordinator's machine-level
:class:`~repro.resources.broker.MemoryBroker`
(:meth:`~repro.resources.broker.MemoryBroker.carve_even`).  The
coordinator keeps the whole control plane — tenant gating, refusal
accounting, SLOs, archive, drain — and this module supplies the
:class:`~repro.service.backend.ExecutionBackend` that moves admitted
submissions to the fleet and folds their telemetry back.

Topology::

    QueryService (control plane, one asyncio loop)
      └─ WorkerPoolBackend
           ├─ PoolScheduler         per-worker queues, least-loaded
           │                        assignment, work stealing (pure,
           │                        deterministic, unit-testable)
           ├─ reader thread         multiprocessing.connection.wait over
           │                        every worker pipe + a self-wake pipe
           └─ worker 0..N-1         spawn-context Process running
                                    worker_main: own kernel, own broker
                                    (pool = carve), own admission queue

Wire protocol (one duplex :func:`multiprocessing.Pipe` per worker,
pickled dicts):

* coordinator → worker: ``{"op": "job", "id", "request", "sequence",
  "priority", "initial", "min_bytes", "max_bytes", "stolen"}`` and
  ``{"op": "stop"}``.
* worker → coordinator: ``{"op": "ready", "worker", "pool", "schema",
  "pid"}`` and ``{"op": "result", "id", "ok", "payload"|"error",
  "wait_s", "stalls"}`` where ``payload`` is the schema-6
  :func:`~repro.parallel.results.result_to_payload` flattening (with
  the bulky channels — registry snapshot, samples, span list — kept
  worker-side; the compact ``span_summary`` crosses).

Determinism despite stealing: the source batch streams are seeded per
``(service seed, request seed, submission sequence, relation)`` — see
:func:`repro.service.service.submission_sources` — so a submission's
result does not depend on *which* worker executed it.

Failure semantics: a worker that dies (EOF/OSError on its pipe) fails
every submission it had in flight with :class:`WorkerDied` (the error
string carries ``worker-died``), bumps its restart counter, and is
respawned with a fresh pipe; submissions still queued coordinator-side
are untouched and simply get dispatched — or stolen — elsewhere.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.common.errors import ConfigurationError, SimulationError
from repro.core.engine import ExecutionResult
from repro.exec.core import SimEvent
from repro.parallel.results import (
    RESULT_SCHEMA_VERSION,
    result_from_payload,
    result_to_payload,
)
from repro.service.backend import BACKEND_WORKER_POOL

if TYPE_CHECKING:
    from repro.experiments.workloads import Figure5Workload
    from repro.resources import MemoryLease
    from repro.service.service import QueryService, SubmissionRecord

#: in-flight submissions one worker accepts before backlog queues
#: coordinator-side (where it is visible — and stealable).
DEFAULT_WINDOW = 4

#: seconds :meth:`WorkerPoolBackend.start` waits for every worker's
#: ``ready`` handshake before giving up.
DEFAULT_START_TIMEOUT_S = 60.0

#: respawn attempts per worker slot before it is left down for good
#: (a crash *loop* must not melt the host; peers keep serving).
DEFAULT_MAX_RESTARTS = 5


class WorkerDied(SimulationError):
    """A worker process exited with this submission in flight."""


class PoolScheduler:
    """Pure dispatch state for the worker fleet (no I/O, no clocks).

    Jobs are *assigned* to the least-loaded worker's queue on arrival
    (ties: lowest worker id) and *dispatched* when a worker has window
    room: own queue first, otherwise one is stolen from the peer with
    the longest queue (ties: lowest id).  Deterministic by
    construction, so the stealing policy is pinned by plain unit tests.
    """

    def __init__(self, worker_ids: Iterable[int],
                 window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ConfigurationError(
                f"dispatch window must be >= 1, got {window}")
        ids = sorted(worker_ids)
        if not ids:
            raise ConfigurationError("scheduler needs at least one worker")
        self.window = window
        self.queues: Dict[int, Deque[str]] = {wid: deque() for wid in ids}
        self.active: Dict[int, int] = {wid: 0 for wid in ids}
        self.steals: Dict[int, int] = {wid: 0 for wid in ids}
        #: job -> worker whose queue currently holds it (queued only).
        self.assigned: Dict[str, int] = {}

    @property
    def steals_total(self) -> int:
        return sum(self.steals.values())

    def backlog(self, worker_id: int) -> int:
        """Queued + active load of one worker."""
        return len(self.queues[worker_id]) + self.active[worker_id]

    def queued_total(self) -> int:
        return sum(len(queue) for queue in self.queues.values())

    def assign(self, job_id: str) -> int:
        """Queue one job on the least-loaded worker; returns its id."""
        worker_id = min(self.queues,
                        key=lambda wid: (self.backlog(wid), wid))
        self.queues[worker_id].append(job_id)
        self.assigned[job_id] = worker_id
        return worker_id

    def next_for(self, worker_id: int) -> Optional[Tuple[str, bool]]:
        """``(job, stolen)`` this worker should run next, or None.

        None when the worker's window is full or there is nothing to
        run anywhere.  The steal source is the peer with the longest
        *queue* (not backlog: active jobs cannot move).
        """
        if self.active[worker_id] >= self.window:
            return None
        stolen = False
        if self.queues[worker_id]:
            job_id = self.queues[worker_id].popleft()
        else:
            donors = [wid for wid, queue in self.queues.items()
                      if wid != worker_id and queue]
            if not donors:
                return None
            donor = max(donors,
                        key=lambda wid: (len(self.queues[wid]), -wid))
            job_id = self.queues[donor].popleft()
            self.steals[worker_id] += 1
            stolen = True
        del self.assigned[job_id]
        self.active[worker_id] += 1
        return job_id, stolen

    def finished(self, worker_id: int) -> None:
        """One in-flight job on this worker ended (any way)."""
        if self.active[worker_id] <= 0:
            raise SimulationError(
                f"worker {worker_id} finished with nothing active")
        self.active[worker_id] -= 1

    def forget(self, job_id: str) -> bool:
        """Drop a still-queued job; False if it already dispatched."""
        worker_id = self.assigned.pop(job_id, None)
        if worker_id is None:
            return False
        self.queues[worker_id].remove(job_id)
        return True


@dataclass
class _WorkerSlot:
    """Coordinator-side state of one worker process."""

    id: int
    process: Optional[Any] = None
    conn: Optional[Any] = None
    up: bool = False
    pid: Optional[int] = None
    restarts: int = 0
    completed: int = 0
    failed: int = 0
    pool_bytes: Optional[int] = None
    #: submissions sent to this worker and not yet answered.
    inflight: Set[str] = field(default_factory=set)
    #: the worker machine's cumulative stall seconds by cause (latest).
    stalls: Dict[str, float] = field(default_factory=dict)


@dataclass
class _Job:
    """One submission travelling through the pool."""

    record: "SubmissionRecord"
    message: Dict[str, Any]
    event: SimEvent
    worker: Optional[int] = None


class WorkerPoolBackend:
    """N worker processes behind one control plane (see module doc)."""

    name = BACKEND_WORKER_POOL

    def __init__(self, workers: int, *, window: int = DEFAULT_WINDOW,
                 respawn: bool = True,
                 max_restarts: int = DEFAULT_MAX_RESTARTS,
                 start_timeout_s: float = DEFAULT_START_TIMEOUT_S) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"worker pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self.window = window
        self.respawn = respawn
        self.max_restarts = max_restarts
        self.start_timeout_s = start_timeout_s
        self.scheduler = PoolScheduler(range(workers), window=window)
        self._slots: Dict[int, _WorkerSlot] = {
            wid: _WorkerSlot(wid) for wid in range(workers)}
        self._jobs: Dict[str, _Job] = {}
        self._service: Optional["QueryService"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ctx = multiprocessing.get_context("spawn")
        self._reader: Optional[threading.Thread] = None
        self._reader_stop = False
        self._lock = threading.Lock()
        self._stopping = False
        self._carve: Optional[int] = None
        self._leases: List["MemoryLease"] = []
        self._ready: Dict[int, asyncio.Event] = {}
        self._wake_r: Optional[Any] = None
        self._wake_w: Optional[Any] = None

    # -- lifecycle -----------------------------------------------------------
    async def start(self, service: "QueryService") -> None:
        self._service = service
        self._loop = asyncio.get_running_loop()
        self._ready = {wid: asyncio.Event() for wid in range(self.workers)}
        if service.governed:
            # The machine broker's whole spare pool becomes N static
            # worker carve-outs; the coordinator holds the leases so the
            # machine pool gauges show the fleet's footprint.
            self._leases = service.machine.broker.carve_even(self.workers)
            if self._leases:
                self._carve = min(lease.total_bytes
                                  for lease in self._leases)
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        for wid in range(self.workers):
            self._spawn(wid)
        self._reader = threading.Thread(target=self._read_loop,
                                        name="worker-pool-reader",
                                        daemon=True)
        self._reader.start()
        try:
            await asyncio.wait_for(
                asyncio.gather(*(event.wait()
                                 for event in self._ready.values())),
                timeout=self.start_timeout_s)
        except asyncio.TimeoutError:
            missing = sorted(wid for wid, event in self._ready.items()
                             if not event.is_set())
            raise SimulationError(
                f"worker pool failed to start: worker(s) {missing} sent "
                f"no ready handshake in {self.start_timeout_s:.0f}s") \
                from None

    def _worker_config(self) -> Dict[str, Any]:
        assert self._service is not None
        service = self._service
        return {
            "params": service.params,
            "seed": service.seed,
            "memory_bytes": self._carve,
            "admission": (service.admission if service.governed
                          else "none"),
        }

    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(worker_id, child_conn, self._worker_config()),
            name=f"repro-worker-{worker_id}", daemon=True)
        process.start()
        child_conn.close()
        with self._lock:
            slot = self._slots[worker_id]
            slot.process = process
            slot.conn = parent_conn
            slot.up = False
        self._wake()

    def _wake(self) -> None:
        if self._wake_w is not None:
            try:
                self._wake_w.send_bytes(b"w")
            except (OSError, ValueError):
                pass

    async def stop(self, service: "QueryService") -> None:
        self._stopping = True
        with self._lock:
            conns = [slot.conn for slot in self._slots.values()
                     if slot.conn is not None]
        for conn in conns:
            try:
                conn.send({"op": "stop"})
            except (OSError, ValueError, BrokenPipeError):
                pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._join_all)
        with self._lock:
            self._reader_stop = True
        self._wake()
        if self._reader is not None:
            self._reader.join(timeout=5.0)
            self._reader = None
        for pipe_end in (self._wake_r, self._wake_w):
            if pipe_end is not None:
                pipe_end.close()
        self._wake_r = self._wake_w = None
        for lease in self._leases:
            service.machine.broker.release(lease)
        self._leases = []

    def _join_all(self) -> None:
        with self._lock:
            slots = list(self._slots.values())
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            slot.up = False
        with self._lock:
            for slot in slots:
                if slot.conn is not None:
                    try:
                        slot.conn.close()
                    except OSError:
                        pass
                    slot.conn = None

    # -- reader thread -------------------------------------------------------
    def _post(self, callback: Any, *args: Any) -> None:
        """Marshal onto the service loop; swallow a closed loop (the
        host crashed out without :meth:`stop` — nothing to notify)."""
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(callback, *args)
        except RuntimeError:
            with self._lock:
                self._reader_stop = True

    def _read_loop(self) -> None:
        assert self._loop is not None
        while True:
            with self._lock:
                if self._reader_stop:
                    return
                conns = {slot.conn: wid
                         for wid, slot in self._slots.items()
                         if slot.conn is not None}
            wait_on: List[Any] = list(conns)
            if self._wake_r is not None:
                wait_on.append(self._wake_r)
            if not wait_on:
                return
            try:
                ready = multiprocessing.connection.wait(wait_on,
                                                        timeout=1.0)
            except OSError:
                continue  # a pipe died mid-wait; re-snapshot and retry
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        self._wake_r.recv_bytes()
                    except (EOFError, OSError):
                        return
                    continue
                worker_id = conns.get(conn)
                if worker_id is None:
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    with self._lock:
                        slot = self._slots[worker_id]
                        if slot.conn is conn:
                            slot.conn = None
                    try:
                        conn.close()
                    except OSError:
                        pass
                    self._post(self._on_death, worker_id)
                    continue
                self._post(self._on_message, worker_id, message)

    # -- loop-side message handling ------------------------------------------
    def _on_message(self, worker_id: int, message: Dict[str, Any]) -> None:
        op = message.get("op")
        slot = self._slots[worker_id]
        if op == "ready":
            slot.up = True
            slot.pid = message.get("pid")
            slot.pool_bytes = message.get("pool")
            event = self._ready.get(worker_id)
            if event is not None:
                event.set()
            self._pump()
        elif op == "result":
            self._on_result(worker_id, slot, message)

    def _on_result(self, worker_id: int, slot: _WorkerSlot,
                   message: Dict[str, Any]) -> None:
        job_id = message.get("id")
        stalls = message.get("stalls")
        if isinstance(stalls, dict):
            slot.stalls = stalls
        job = self._jobs.pop(job_id, None) if isinstance(job_id, str) \
            else None
        if job is None:
            return  # raced a death verdict; the job already failed
        slot.inflight.discard(job.record.id)
        self.scheduler.finished(worker_id)
        record = job.record
        record.admission_wait = float(message.get("wait_s", 0.0))
        record.worker_id = worker_id
        if message.get("ok"):
            slot.completed += 1
            result = result_from_payload(message["payload"])
            result.worker_id = worker_id
            record.memory_peak_bytes = result.memory_peak_bytes
            record.span_summary = result.span_summary
            if not job.event.triggered:
                job.event.succeed(result)
        else:
            slot.failed += 1
            if not job.event.triggered:
                job.event.fail(SimulationError(
                    f"worker {worker_id} execution failed: "
                    f"{message.get('error')}"))
        self._pump()

    def _on_death(self, worker_id: int) -> None:
        slot = self._slots[worker_id]
        slot.up = False
        doomed = [self._jobs.pop(job_id) for job_id in sorted(slot.inflight)
                  if job_id in self._jobs]
        slot.inflight.clear()
        for job in doomed:
            self.scheduler.finished(worker_id)
            slot.failed += 1
            if not job.event.triggered:
                job.event.fail(WorkerDied(
                    f"worker-died: worker {worker_id} exited with "
                    f"{job.record.id} in flight"))
        if self._stopping:
            return
        slot.restarts += 1
        if self.respawn and slot.restarts <= self.max_restarts:
            self._spawn(worker_id)
        # Jobs still queued for the dead worker stay queued: living
        # peers steal them right now, the respawn drains the rest.
        self._pump()
        if not any(s.up or (s.conn is not None) for s in
                   self._slots.values()):
            # The whole fleet is gone and nothing will come back: fail
            # every queued job instead of hanging the control plane.
            for job_id in sorted(self._jobs):
                job = self._jobs.pop(job_id)
                self.scheduler.forget(job_id)
                if not job.event.triggered:
                    job.event.fail(WorkerDied(
                        f"worker-died: no workers left to run "
                        f"{job.record.id}"))

    def _pump(self) -> None:
        """Dispatch queued jobs to every worker with window room."""
        progress = True
        while progress:
            progress = False
            for worker_id in sorted(self._slots):
                slot = self._slots[worker_id]
                if not slot.up or slot.conn is None:
                    continue
                item = self.scheduler.next_for(worker_id)
                if item is None:
                    continue
                job_id, stolen = item
                job = self._jobs.get(job_id)
                if job is None:
                    self.scheduler.finished(worker_id)
                    continue
                self._dispatch(worker_id, slot, job, stolen)
                progress = True

    def _dispatch(self, worker_id: int, slot: _WorkerSlot, job: _Job,
                  stolen: bool) -> None:
        from repro.service.service import STATE_RUNNING

        assert self._service is not None
        job.worker = worker_id
        slot.inflight.add(job.record.id)
        record = job.record
        record.state = STATE_RUNNING
        record.started_at = self._service.kernel.wall_now
        record.worker_id = worker_id
        try:
            assert slot.conn is not None
            slot.conn.send(dict(job.message, stolen=stolen))
        except (OSError, ValueError, BrokenPipeError):
            # The pipe is gone; the reader thread's EOF turns this into
            # a death verdict which fails the job we just marked
            # in-flight — exactly the worker-died semantics.
            pass

    # -- ExecutionBackend ----------------------------------------------------
    def launch(self, service: "QueryService", record: "SubmissionRecord",
               workload: "Figure5Workload", initial: int, min_bytes: int,
               max_bytes: int) -> Generator[SimEvent, Any, Any]:
        request = record.request
        event = service.kernel.event(name=f"result:{record.id}")
        message = {
            "op": "job",
            "id": record.id,
            "request": request.to_dict(),
            "sequence": record.sequence,
            "priority": service.tenants.priority_for(request.tenant,
                                                     request.priority),
            "initial": initial,
            "min_bytes": min_bytes,
            "max_bytes": max_bytes,
        }
        self._jobs[record.id] = _Job(record=record, message=message,
                                     event=event)
        self.scheduler.assign(record.id)
        self._pump()
        result = yield event  # WorkerDied / failure re-raises here
        assert isinstance(result, ExecutionResult)
        return result

    def admission_limit_bytes(self,
                              service: "QueryService") -> Optional[int]:
        return self._carve

    def describe(self) -> List[Dict[str, Any]]:
        rows = []
        for worker_id in sorted(self._slots):
            slot = self._slots[worker_id]
            rows.append({
                "id": worker_id,
                "state": "up" if slot.up else "down",
                "pid": slot.pid,
                "queued": len(self.scheduler.queues[worker_id]),
                "active": self.scheduler.active[worker_id],
                "completed": slot.completed,
                "failed": slot.failed,
                "steals": self.scheduler.steals[worker_id],
                "restarts": slot.restarts,
                "pool_bytes": slot.pool_bytes,
            })
        return rows

    def stall_totals(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for slot in self._slots.values():
            for cause, seconds in slot.stalls.items():
                totals[cause] = totals.get(cause, 0.0) + seconds
        return totals

    def queued_jobs(self) -> int:
        return self.scheduler.queued_total()

    @property
    def steals_total(self) -> int:
        return self.scheduler.steals_total


# -- the worker process ------------------------------------------------------
class WorkerHost:
    """One worker process: a long-lived kernel executing piped jobs.

    Mirrors the in-process backend's launch path on a private machine
    world: own governed broker (pool = the coordinator's carve-out),
    own admission queue, query-view worlds per job.  The host's pipe
    reader thread marshals messages onto its asyncio loop; job
    completion sends the schema-6 result payload back.
    """

    def __init__(self, worker_id: int, conn: Any,
                 config: Dict[str, Any]) -> None:
        from repro.core.runtime import World
        from repro.exec.aio import AsyncioKernel
        from repro.resources import AdmissionController, MemoryBroker

        self.worker_id = worker_id
        self.conn = conn
        self.params = config["params"]
        self.seed = config["seed"]
        self.memory_bytes: Optional[int] = config.get("memory_bytes")
        self.admission: str = config.get("admission", "none")
        self.kernel = AsyncioKernel()
        self.machine = World(self.params, seed=self.seed,
                             kernel=self.kernel)
        self.controller: Optional[AdmissionController] = None
        if self.memory_bytes is not None:
            self.machine.broker = MemoryBroker(
                self.memory_bytes, sim=self.kernel,
                telemetry=self.machine.telemetry,
                name=f"worker-{worker_id}")
            if self.admission != "none":
                self.controller = AdmissionController(
                    self.machine.broker, self.kernel,
                    telemetry=self.machine.telemetry,
                    policy=self.admission)
        self._workloads: Dict[float, "Figure5Workload"] = {}
        self._waits: Dict[str, float] = {}
        self._active = 0
        self._stopping = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[SimEvent] = None

    def run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = self.kernel.event(
            name=f"worker-{self.worker_id}-shutdown")
        run_task = asyncio.ensure_future(
            self.kernel.run(until_event=self._shutdown))
        reader = threading.Thread(target=self._read_loop,
                                  name="job-reader", daemon=True)
        reader.start()
        self.conn.send({"op": "ready", "worker": self.worker_id,
                        "pool": self.memory_bytes,
                        "schema": RESULT_SCHEMA_VERSION,
                        "pid": os.getpid()})
        await run_task
        try:
            self.conn.close()
        except OSError:
            pass

    def _read_loop(self) -> None:
        assert self._loop is not None
        while True:
            try:
                message = self.conn.recv()
            except (EOFError, OSError):
                # Coordinator went away: finish in-flight work, exit.
                self._loop.call_soon_threadsafe(self._begin_stop)
                return
            self._loop.call_soon_threadsafe(self._handle, message)

    def _begin_stop(self) -> None:
        self._stopping = True
        self._maybe_shutdown()

    def _maybe_shutdown(self) -> None:
        if self._stopping and self._active == 0 \
                and self._shutdown is not None \
                and not self._shutdown.triggered:
            self._shutdown.succeed()

    def _handle(self, message: Dict[str, Any]) -> None:
        op = message.get("op")
        if op == "stop":
            self._begin_stop()
            return
        if op != "job":
            return
        self._active += 1
        process = self.kernel.process(self._execute(message),
                                      name=f"job:{message['id']}")
        process.defused = True

        def _finish(_event: Any, m: Dict[str, Any] = message,
                    p: Any = process) -> None:
            self._done(m, p)

        process.add_callback(_finish)

    def _workload(self, scale: float) -> "Figure5Workload":
        from repro.experiments.workloads import figure5_workload

        workload = self._workloads.get(scale)
        if workload is None:
            workload = figure5_workload(scale=scale)
            self._workloads[scale] = workload
        return workload

    def _execute(self, message: Dict[str, Any]
                 ) -> Generator[SimEvent, Any, Any]:
        from repro.core.runtime import World
        from repro.core.strategies import make_policy
        from repro.exec.live import QueryRun
        from repro.observability import STALL_ADMISSION_WAIT
        from repro.service.service import (
            SubmissionRequest,
            submission_sources,
        )

        request = SubmissionRequest.from_json(message["request"])
        workload = self._workload(request.scale)
        name: str = message["id"]
        submitted = self.kernel.now
        if self.controller is not None:
            ticket = self.controller.request(
                name, message["min_bytes"], message["max_bytes"],
                priority=float(message.get("priority") or 0.0),
                tenant=request.tenant)
            if not ticket.granted:
                assert ticket.event is not None
                yield ticket.event
            lease = ticket.lease
            assert lease is not None
            self._waits[name] = ticket.waited
            if ticket.waited > 0:
                self.machine.telemetry.stalls.record(
                    STALL_ADMISSION_WAIT, submitted, self.kernel.now)
        else:
            lease = self.machine.broker.lease(
                name, message["initial"],
                min_bytes=message["min_bytes"],
                max_bytes=message["max_bytes"], tenant=request.tenant)
        world = World(self.params, share_machine=self.machine,
                      lease=lease, query_name=name,
                      attach_memory_metrics=False)
        query = QueryRun(self.kernel, world, workload.qep,
                         make_policy(request.strategy),
                         submission_sources(self.seed, self.params,
                                            workload, request,
                                            message["sequence"]),
                         name=name)
        try:
            main = query.start()
            yield main
            result = query.result()
            result.submission_id = name
            result.tenant = request.tenant
            result.worker_id = self.worker_id
            return result
        finally:
            query.detach()
            self.machine.broker.release(lease)

    def _done(self, message: Dict[str, Any], process: Any) -> None:
        self._active -= 1
        wait_s = self._waits.pop(message["id"], 0.0)
        stalls = self.machine.telemetry.stalls.by_cause()
        if process.failure is not None:
            out: Dict[str, Any] = {
                "op": "result", "id": message["id"], "ok": False,
                "error": repr(process.failure), "wait_s": wait_s,
                "stalls": stalls,
            }
        else:
            payload = result_to_payload(process.value)
            # The bulky channels stay worker-side; the wire carries the
            # scalars, per-wrapper/fragment stats and span summary.
            payload["metrics"] = None
            payload["samples"] = []
            payload["spans"] = None
            payload["decisions"] = []
            out = {"op": "result", "id": message["id"], "ok": True,
                   "payload": payload, "wait_s": wait_s,
                   "stalls": stalls}
        try:
            self.conn.send(out)
        except (OSError, ValueError, BrokenPipeError):
            pass  # coordinator is gone; drain and exit
        self._maybe_shutdown()


def worker_main(worker_id: int, conn: Any,
                config: Dict[str, Any]) -> None:
    """Process entry point for one pool worker (spawn context)."""
    WorkerHost(worker_id, conn, config).run()
