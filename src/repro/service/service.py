"""The always-on query service: one kernel, an unbounded query stream.

:class:`QueryService` is the multi-query engine promoted to a daemon.
Where :class:`repro.core.multiquery.MultiQueryEngine` runs a *batch* of
submissions to completion on a fresh simulator, the service keeps one
:class:`~repro.exec.aio.AsyncioKernel` and one machine-level
:class:`~repro.core.runtime.World` alive indefinitely and attaches a
stream of :class:`~repro.exec.live.QueryRun` instances to them — many in
flight at once, each on its own query-view world, all sharing the
machine's CPU/link/buffer, its governed
:class:`~repro.resources.broker.MemoryBroker`, its
:class:`~repro.resources.admission.AdmissionController` and one
telemetry plane.

The submission lifecycle::

    submit()  -- tenant quota gate (429), drain gate (503)
      -> launcher process: admission ticket (may queue)
      -> lease granted: query-view World + QueryRun on the shared kernel
      -> completion callback: latency window, tenant accounting,
         bounded history, drain bookkeeping

Aggregation stays bounded no matter how many submissions flow through:
the machine audit log is a ring (:class:`DecisionAuditLog` with a
capacity), latencies live in a :class:`~repro.service.stats.
LatencyWindow`, finished submissions are pruned to a recent-history
ring, and query-view worlds skip per-query gauge registration
(``attach_memory_metrics=False``).

Graceful drain (SIGTERM): :meth:`drain` stops admitting (new submissions
get :class:`ServiceDraining`, HTTP 503), in-flight submissions run to
completion, then the kernel's shutdown event fires and :meth:`stop`
flushes the flight recorder and span log to disk.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SimulationParameters
from repro.core.strategies import make_policy
from repro.exec.aio import AsyncioKernel
from repro.exec.core import Process, SimEvent
from repro.exec.live import BatchSource, QueryRun, jittered_batches
from repro.experiments.workloads import Figure5Workload, figure5_workload
from repro.observability import (
    DecisionAuditLog,
    MetricsPublisher,
)
from repro.observability.archive import (
    RECORD_ALERT,
    RECORD_DECISION,
    RECORD_OUTCOME,
    RECORD_SNAPSHOT,
    RECORD_SPAN,
    TelemetryArchive,
)
from repro.observability.audit import DecisionRecord
from repro.observability.flight import ENTRY_DECISION, ENTRY_STALL, FlightRecorder
from repro.resources import (
    ADMISSION_POLICIES,
    AdmissionController,
    MemoryBroker,
    TenantAccount,
    TenantRegistry,
    TenantSpec,
)
from repro.service.backend import ExecutionBackend, InProcessBackend
from repro.service.slo import SLOSpec, SLOTracker
from repro.service.stats import LatencyWindow

#: service snapshot layout version (part of the SSE/JSON payload).
#: 2: execution-plane fields joined (``backend``, ``workers``,
#:    ``steals``); ``admission_queued`` includes backend queues and
#:    ``stalls`` folds remote-worker stall seconds in.
SERVICE_SNAPSHOT_VERSION = 2

#: seconds between full-snapshot records written to the archive (the
#: per-second publish tick would bloat the log ~10x for no added
#: insight; outcomes carry the per-submission record anyway).
DEFAULT_SNAPSHOT_ARCHIVE_INTERVAL_S = 10.0

#: machine audit-log ring size (decisions, across all submissions).
DEFAULT_AUDIT_CAPACITY = 4096

#: finished submissions kept queryable over HTTP.
DEFAULT_HISTORY = 256

#: seconds between service snapshot publishes.
DEFAULT_PUBLISH_INTERVAL_S = 1.0

#: submission states, in lifecycle order.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"


class ServiceDraining(Exception):
    """The service is draining and refuses new submissions (HTTP 503)."""


@dataclass(frozen=True)
class SubmissionRequest:
    """One query submission as it arrives over the wire.

    The service runs the Figure 5 workload shape (that is the engine's
    experiment plan); a submission picks its strategy, scale, seed and
    source-delay profile — enough to make every submission's runtime
    behavior distinct while the plan stays validated once per scale.
    """

    tenant: str = "default"
    strategy: str = "DSE"
    scale: float = 0.02
    seed: int = 0
    #: mean per-tuple source wait, microseconds (the live delay model).
    wait_us: float = 200.0
    jitter: float = 1.0
    #: per-relation wait multipliers, e.g. ``{"A": 10.0}``.
    slow: Mapping[str, float] = field(default_factory=dict)
    #: admission priority override (None: the tenant's priority).
    priority: Optional[float] = None
    memory_bytes: Optional[int] = None
    min_memory_bytes: Optional[int] = None
    max_memory_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ConfigurationError("submission needs a tenant")
        try:
            make_policy(self.strategy)  # validates the name
        except ValueError as exc:  # -> HTTP 400, not a server error
            raise ConfigurationError(str(exc)) from None
        if self.scale <= 0:
            raise ConfigurationError(
                f"scale must be positive, got {self.scale}")
        if self.wait_us < 0:
            raise ConfigurationError(
                f"wait_us must be >= 0, got {self.wait_us}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")
        for relation, factor in self.slow.items():
            if factor < 0:
                raise ConfigurationError(
                    f"slow factor for {relation!r} must be >= 0, "
                    f"got {factor}")
        for label, value in (("memory_bytes", self.memory_bytes),
                             ("min_memory_bytes", self.min_memory_bytes),
                             ("max_memory_bytes", self.max_memory_bytes)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{label} must be positive, got {value}")
        if (self.min_memory_bytes is not None
                and self.max_memory_bytes is not None
                and self.min_memory_bytes > self.max_memory_bytes):
            raise ConfigurationError(
                f"min_memory_bytes {self.min_memory_bytes} exceeds "
                f"max_memory_bytes {self.max_memory_bytes}")

    @classmethod
    def from_json(cls, data: Any) -> "SubmissionRequest":
        """Build a request from a decoded JSON body (strict keys)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"submission body must be a JSON object, got {type(data).__name__}")
        known = {
            "tenant": str, "strategy": str, "scale": (int, float),
            "seed": int, "wait_us": (int, float), "jitter": (int, float),
            "slow": dict, "priority": (int, float), "memory_bytes": int,
            "min_memory_bytes": int, "max_memory_bytes": int,
        }
        unknown = set(data) - set(known)
        if unknown:
            raise ConfigurationError(
                f"unknown submission field(s): {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            expected = known[key]
            if value is None:
                continue
            if not isinstance(value, expected) or isinstance(value, bool):
                raise ConfigurationError(
                    f"submission field {key!r} has bad type "
                    f"{type(value).__name__}")
            kwargs[key] = value
        if "slow" in kwargs:
            slow: Dict[str, float] = {}
            for relation, factor in kwargs["slow"].items():
                if not isinstance(relation, str) \
                        or not isinstance(factor, (int, float)) \
                        or isinstance(factor, bool):
                    raise ConfigurationError(
                        f"slow must map relation names to factors, "
                        f"got {relation!r}: {factor!r}")
                slow[relation] = float(factor)
            kwargs["slow"] = slow
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant, "strategy": self.strategy,
            "scale": self.scale, "seed": self.seed,
            "wait_us": self.wait_us, "jitter": self.jitter,
            "slow": dict(self.slow), "priority": self.priority,
            "memory_bytes": self.memory_bytes,
            "min_memory_bytes": self.min_memory_bytes,
            "max_memory_bytes": self.max_memory_bytes,
        }

    def resolved_budgets(self, params: SimulationParameters
                         ) -> tuple[int, int, int]:
        """``(initial, min, max)`` lease bytes with defaults applied."""
        initial = (self.memory_bytes if self.memory_bytes is not None
                   else params.query_memory_bytes)
        min_bytes = (self.min_memory_bytes
                     if self.min_memory_bytes is not None else initial)
        max_bytes = (self.max_memory_bytes
                     if self.max_memory_bytes is not None else initial)
        initial = min(max(initial, min_bytes), max_bytes)
        return initial, min_bytes, max_bytes


@dataclass
class SubmissionRecord:
    """One submission's lifecycle inside the service."""

    id: str
    request: SubmissionRequest
    state: str = STATE_QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    admission_wait: float = 0.0
    error: Optional[str] = None
    #: JSON-safe result summary, set on success.
    outcome: Optional[Dict[str, Any]] = None
    #: set once the submission reached a terminal state (loop thread).
    done: asyncio.Event = field(default_factory=asyncio.Event)
    #: executing worker in a sharded pool (None in-process / undispatched).
    worker_id: Optional[int] = None
    # internal bookkeeping, not serialized:
    account: Optional[TenantAccount] = None
    declared_max_bytes: int = 0
    run: Optional[QueryRun] = None
    #: submission sequence number (seeds the source streams; fixed at
    #: submit time so results do not depend on dispatch order).
    sequence: int = 0
    #: remote-execution telemetry (worker pool only; in-process reads
    #: these off the live ``run`` instead).
    memory_peak_bytes: Optional[int] = None
    span_summary: Optional[Dict[str, Any]] = None

    @property
    def finished(self) -> bool:
        return self.state in (STATE_DONE, STATE_FAILED)

    def latency(self, now: float) -> float:
        """Submit-to-now (or submit-to-finish) seconds, queue included."""
        end = self.finished_at if self.finished_at is not None else now
        return end - self.submitted_at

    def to_dict(self, now: float) -> Dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.request.tenant,
            "strategy": self.request.strategy,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "admission_wait": self.admission_wait,
            "latency_s": self.latency(now),
            "worker": self.worker_id,
            "error": self.error,
            "outcome": self.outcome,
        }


def submission_sources(service_seed: int, params: SimulationParameters,
                       workload: Figure5Workload,
                       request: SubmissionRequest,
                       sequence: int) -> Dict[str, Callable[[], BatchSource]]:
    """Source-stream factories for one submission.

    Seeded per ``(service seed, request seed, submission sequence,
    relation)``: every submission sees fresh-but-reproducible delays,
    and — because nothing here depends on the executing process — a
    pool worker reproduces exactly the streams the coordinator would
    have built, so work stealing never changes a result.
    """
    base_wait = request.wait_us * 1e-6

    def factory(relation: str) -> Callable[[], BatchSource]:
        cardinality = workload.catalog.relation(relation).cardinality

        def make() -> BatchSource:
            rng = np.random.default_rng(
                [service_seed, request.seed, sequence,
                 zlib.crc32(relation.encode())])
            return jittered_batches(
                cardinality, params.tuples_per_message,
                base_wait * request.slow.get(relation, 1.0), rng,
                jitter=request.jitter)
        return make

    return {relation: factory(relation)
            for relation in workload.relation_names}


class QueryService:
    """The long-running multi-tenant engine behind ``repro serve``.

    Single-threaded core: every mutation happens on the asyncio loop
    that drives the kernel (HTTP threads enter through
    :meth:`submit_threadsafe` / :meth:`drain_threadsafe`).  Construction
    is cheap and loop-free; :meth:`start` must run inside the loop.
    """

    def __init__(self, params: Optional[SimulationParameters] = None,
                 seed: int = 0,
                 global_memory_bytes: Optional[int] = None,
                 admission: str = "priority",
                 tenants: Optional[List[TenantSpec]] = None,
                 strict_tenants: bool = False,
                 audit_capacity: int = DEFAULT_AUDIT_CAPACITY,
                 history: int = DEFAULT_HISTORY,
                 latency_window: Optional[int] = None,
                 publish_interval_s: float = DEFAULT_PUBLISH_INTERVAL_S,
                 flight_dump: Optional[Union[str, Path]] = None,
                 flight_capacity: int = 2048,
                 span_dump: Optional[Union[str, Path]] = None,
                 archive_dir: Optional[Union[str, Path]] = None,
                 archive_options: Optional[Dict[str, Any]] = None,
                 snapshot_archive_interval_s: float =
                 DEFAULT_SNAPSHOT_ARCHIVE_INTERVAL_S,
                 slos: Optional[Sequence[SLOSpec]] = None,
                 slo_options: Optional[Dict[str, Any]] = None,
                 workers: int = 1,
                 worker_window: Optional[int] = None,
                 backend: Optional[ExecutionBackend] = None) -> None:
        from repro.core.runtime import World

        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {workers}")
        if admission not in ADMISSION_POLICIES + ("none",):
            raise ConfigurationError(
                f"unknown admission policy {admission!r}; expected one of "
                f"{ADMISSION_POLICIES + ('none',)}")
        if global_memory_bytes is not None and global_memory_bytes <= 0:
            raise ConfigurationError(
                f"global_memory_bytes must be positive, "
                f"got {global_memory_bytes}")
        self.params = (params if params is not None
                       else SimulationParameters(telemetry_enabled=True))
        self.seed = seed
        self.global_memory_bytes = global_memory_bytes
        self.admission = admission
        self.publish_interval_s = publish_interval_s
        self.flight_dump = (Path(flight_dump)
                            if flight_dump is not None else None)
        self.span_dump = Path(span_dump) if span_dump is not None else None

        self.kernel = AsyncioKernel()
        self.machine = World(self.params, seed=seed, kernel=self.kernel)
        # Bounded aggregation over the unbounded stream: the machine's
        # audit log becomes a ring *before* anything hooks into it.
        self.machine.telemetry.audit = DecisionAuditLog(
            capacity=audit_capacity)
        # The audit ring exposes ONE on_record callable; the flight
        # recorder and the archive both want it, so they register as
        # observers behind a single dispatcher.
        self._audit_observers: List[Callable[[DecisionRecord], None]] = []
        self.recorder: Optional[FlightRecorder] = None
        if self.flight_dump is not None:
            self.recorder = self._attach_flight(flight_capacity)
        if self.span_dump is not None \
                and self.machine.telemetry.spans is None:
            from repro.observability.spans import SpanRecorder
            self.machine.telemetry.spans = SpanRecorder(self.kernel)

        self.archive: Optional[TelemetryArchive] = None
        if archive_dir is not None:
            self.archive = TelemetryArchive(archive_dir,
                                            **(archive_options or {}))
            self._audit_observers.append(self._archive_decision)
        self.snapshot_archive_interval_s = snapshot_archive_interval_s
        self._last_snapshot_archived = float("-inf")
        self.slo: Optional[SLOTracker] = None
        if slos:
            self.slo = SLOTracker(slos, **(slo_options or {}))
        #: SLO alert transitions seen (firing + resolved).
        self.alerts_total = 0
        if self._audit_observers:
            self.machine.telemetry.audit.on_record = self._dispatch_audit

        self.governed = (global_memory_bytes is not None
                         and admission != "none")
        self.controller: Optional[AdmissionController] = None
        if self.governed:
            assert global_memory_bytes is not None
            self.machine.broker = MemoryBroker(
                global_memory_bytes, sim=self.kernel,
                telemetry=self.machine.telemetry, name="service")
            self.controller = AdmissionController(
                self.machine.broker, self.kernel,
                telemetry=self.machine.telemetry, policy=admission)

        # The execution plane: in-process on this kernel (default), or
        # a sharded worker-process pool (``workers > 1``), or whatever
        # custom backend the caller injected.
        self.workers = workers
        if backend is not None:
            self.backend: ExecutionBackend = backend
        elif workers > 1:
            from repro.service.workers import (
                DEFAULT_WINDOW,
                WorkerPoolBackend,
            )
            self.backend = WorkerPoolBackend(
                workers,
                window=(worker_window if worker_window is not None
                        else DEFAULT_WINDOW))
        else:
            self.backend = InProcessBackend()

        self.tenants = TenantRegistry(tenants, strict=strict_tenants)
        self.latency = LatencyWindow(
            latency_window if latency_window is not None else 4096)
        self.publisher = MetricsPublisher()

        #: all known submissions by id (running + bounded recent history).
        self.records: Dict[str, SubmissionRecord] = {}
        self._recent: List[str] = []
        self._history = max(1, history)
        self._runs: Dict[str, QueryRun] = {}
        self._workloads: Dict[float, Figure5Workload] = {}
        self._sequence = 0
        self._batches_done = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        #: refused submissions: tenant quota + drain-time refusals.
        self.rejected = 0
        self.draining = False
        self._started = False
        self._stopped = False
        #: epoch time :meth:`start` ran (``/healthz`` uptime base).
        self.started_wall: Optional[float] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[SimEvent] = None
        self._run_task: Optional["asyncio.Task[None]"] = None
        self._publish_task: Optional["asyncio.Task[None]"] = None

    # -- lifecycle -----------------------------------------------------------
    def _attach_flight(self, capacity: int) -> FlightRecorder:
        recorder = FlightRecorder(capacity=capacity)
        telemetry = self.machine.telemetry
        telemetry.flight = recorder
        self._audit_observers.append(
            lambda record: recorder.record(
                ENTRY_DECISION, record.time, name=record.kind,
                subject=record.subject))
        telemetry.stalls.on_record = lambda interval: recorder.record(
            ENTRY_STALL, interval.ended, cause=interval.cause,
            duration=interval.duration)
        return recorder

    def _dispatch_audit(self, record: DecisionRecord) -> None:
        for observer in self._audit_observers:
            observer(record)

    def _archive_decision(self, record: DecisionRecord) -> None:
        assert self.archive is not None
        self.archive.append({
            "kind": RECORD_DECISION, "t": time.time(), "at": record.time,
            "name": record.kind, "subject": record.subject,
        })

    async def start(self) -> None:
        """Bring the kernel up; returns once the service accepts work."""
        if self._started:
            raise SimulationError("QueryService started twice")
        self._started = True
        self.started_wall = time.time()
        self._loop = asyncio.get_running_loop()
        # Execution plane first: workers must be up (leases carved,
        # ready handshakes in) before anything can be submitted.
        await self.backend.start(self)
        self._shutdown = self.kernel.event(name="service-shutdown")
        self._run_task = asyncio.ensure_future(
            self.kernel.run(until_event=self._shutdown))
        self._publish_task = asyncio.ensure_future(self._publish_loop())
        self.publisher.publish(self.snapshot())

    async def _publish_loop(self) -> None:
        try:
            while not self._stopped:
                await asyncio.sleep(self.publish_interval_s)
                self._evaluate_slo()
                self.publisher.publish(self.snapshot())
                self._archive_snapshot()
        except asyncio.CancelledError:
            pass

    def _evaluate_slo(self) -> None:
        """One burn-rate evaluation tick: archive + broadcast transitions."""
        if self.slo is None:
            return
        now = self.kernel.wall_now
        for transition in self.slo.evaluate(now):
            self.alerts_total += 1
            event = dict(transition)
            event["kind"] = RECORD_ALERT
            event["at"] = now
            if self.archive is not None:
                self.archive.append(dict(event, t=time.time()))
            # publish_event reaches /stream subscribers as an `alert`
            # SSE event without replacing the latest snapshot frame.
            self.publisher.publish_event(
                dict(event, version=SERVICE_SNAPSHOT_VERSION))

    def _archive_snapshot(self, force: bool = False) -> None:
        """Write a (throttled, slimmed) snapshot record to the archive."""
        if self.archive is None:
            return
        now = self.kernel.wall_now
        if not force and (now - self._last_snapshot_archived
                          < self.snapshot_archive_interval_s):
            return
        self._last_snapshot_archived = now
        snap = self.snapshot()
        # Per-submission detail lives in outcome records; the snapshot
        # record keeps the aggregates only.
        snap.pop("queries", None)
        snap.pop("recent", None)
        snap["kind"] = RECORD_SNAPSHOT
        snap["t"] = time.time()
        self.archive.append(snap)

    def drain(self) -> None:
        """Stop admitting; the kernel shuts down once in-flight work ends."""
        if self.draining:
            return
        self.draining = True
        if self.active == 0 and self._shutdown is not None \
                and not self._shutdown.triggered:
            self._shutdown.succeed()

    def drain_threadsafe(self) -> None:
        assert self._loop is not None, "service not started"
        self._loop.call_soon_threadsafe(self.drain)

    async def wait_drained(self) -> None:
        """Block until the kernel shut down (a drain ran to completion)."""
        if self._run_task is not None:
            await self._run_task

    async def stop(self) -> None:
        """Drain, wait for in-flight work, then flush everything to disk."""
        self.drain()
        if self._run_task is not None:
            await self._run_task
        # In-flight work has drained; tear the execution plane down.
        await self.backend.stop(self)
        self._stopped = True
        if self._publish_task is not None:
            self._publish_task.cancel()
            try:
                await self._publish_task
            except asyncio.CancelledError:
                pass
        self._evaluate_slo()
        # Final frame first, so /stream clients see the drained state
        # before the `event: end` marker.
        self.publisher.publish(self.snapshot())
        self.publisher.close()
        if self.archive is not None:
            self._archive_snapshot(force=True)
            self.archive.close()
        if self.recorder is not None and self.flight_dump is not None:
            self.recorder.latest_snapshot = self.snapshot()
            self.recorder.dump(self.flight_dump, reason="drain")
        if self.span_dump is not None \
                and self.machine.telemetry.spans is not None:
            self.machine.telemetry.spans.write_json(self.span_dump)

    # -- submission ----------------------------------------------------------
    @property
    def active(self) -> int:
        """Submissions currently queued or running."""
        return self.submitted - self.completed - self.failed

    def _workload(self, scale: float) -> Figure5Workload:
        workload = self._workloads.get(scale)
        if workload is None:
            workload = figure5_workload(scale=scale)
            self._workloads[scale] = workload
        return workload

    @property
    def sequence(self) -> int:
        """The current submission sequence number (source seeding)."""
        return self._sequence

    def sources_for(self, workload: Figure5Workload,
                    request: SubmissionRequest,
                    sequence: int) -> Dict[str, Callable[[], BatchSource]]:
        """Backend hook: the submission's seeded source factories."""
        return submission_sources(self.seed, self.params, workload,
                                  request, sequence)

    def register_run(self, submission_id: str, run: QueryRun) -> None:
        """Backend hook: track an in-process run for live aggregation."""
        self._runs[submission_id] = run

    def submit(self, request: SubmissionRequest) -> SubmissionRecord:
        """Accept one submission (loop thread only).

        Raises :class:`ServiceDraining` once drain started and
        :class:`~repro.resources.tenants.QuotaExceeded` when the tenant
        is over quota — the HTTP layer maps these to 503 / 429.
        """
        if not self._started or self._stopped:
            raise SimulationError("service is not running")
        if self.draining:
            self.rejected += 1
            raise ServiceDraining("service is draining; try another mediator")
        workload = self._workload(request.scale)
        unknown = set(request.slow) - set(workload.relation_names)
        if unknown:
            raise ConfigurationError(
                f"unknown relation(s) in slow map: {sorted(unknown)}")
        initial, min_bytes, max_bytes = request.resolved_budgets(self.params)
        limit = self.backend.admission_limit_bytes(self)
        if self.governed and limit is not None and min_bytes > limit:
            self.rejected += 1
            if limit == self.global_memory_bytes:
                raise ConfigurationError(
                    f"minimum working set {min_bytes} exceeds the global "
                    f"memory pool {limit}; it could never be admitted")
            raise ConfigurationError(
                f"minimum working set {min_bytes} exceeds the per-worker "
                f"memory carve-out {limit}; it could never be admitted "
                f"on any worker")
        try:
            account = self.tenants.begin(request.tenant, max_bytes)
        except Exception:
            self.rejected += 1
            raise
        self._sequence += 1
        record = SubmissionRecord(
            id=f"s-{self._sequence:06d}", request=request,
            # wall_now, not now: submit runs on the loop *between* kernel
            # dispatches, where the dispatch clock still shows the last
            # event — any idle gap would be billed to this submission.
            submitted_at=self.kernel.wall_now, account=account,
            declared_max_bytes=max_bytes, sequence=self._sequence)
        self.records[record.id] = record
        self.submitted += 1
        process = self.kernel.process(
            self.backend.launch(self, record, workload, initial,
                                min_bytes, max_bytes),
            name=f"query:{record.id}")
        process.defused = True
        process.add_callback(
            lambda _event: self._finish(record, process))
        return record

    def submit_threadsafe(self, request: SubmissionRequest,
                          timeout: float = 10.0) -> SubmissionRecord:
        """Submit from a foreign thread (the HTTP handler pool)."""
        assert self._loop is not None, "service not started"
        future: "concurrent.futures.Future[SubmissionRecord]" = \
            concurrent.futures.Future()

        def _on_loop() -> None:
            try:
                future.set_result(self.submit(request))
            except BaseException as exc:  # delivered to the caller
                future.set_exception(exc)

        self._loop.call_soon_threadsafe(_on_loop)
        return future.result(timeout=timeout)

    def _finish(self, record: SubmissionRecord, process: Process) -> None:
        """Completion callback (kernel thread): close out one submission."""
        now = self.kernel.now
        record.finished_at = now
        run = self._runs.pop(record.id, None)
        if run is not None and run.processor is not None:
            self._batches_done += run.processor.batches_processed
        ok = process.failure is None
        if ok:
            record.state = STATE_DONE
            result = process.value
            if run is None:
                # Remote execution: no live QueryRun on this kernel —
                # the fleet-wide batch counter rides the result instead.
                self._batches_done += result.batches_processed
            if result.worker_id is not None:
                record.worker_id = result.worker_id
            self.completed += 1
            record.outcome = {
                "response_time": result.response_time,
                "result_tuples": result.result_tuples,
                "time_to_first_tuple": result.time_to_first_tuple,
                "batches_processed": result.batches_processed,
                "stall_time": result.stall_time,
            }
        else:
            record.state = STATE_FAILED
            record.error = repr(process.failure)
            self.failed += 1
        latency = record.latency(now)
        self.latency.observe(latency, now)
        if self.slo is not None:
            self.slo.observe(record.request.tenant, latency, now)
        if self.archive is not None:
            self.archive.append(self._outcome_record(record, ok, latency))
            self._archive_span_summary(record)
        if record.account is not None:
            self.tenants.finish(record.account, record.declared_max_bytes,
                                ok=ok, waited_s=record.admission_wait,
                                latency_s=latency)
        self._remember(record)
        record.done.set()
        if self.draining and self.active == 0 \
                and self._shutdown is not None \
                and not self._shutdown.triggered:
            self._shutdown.succeed()

    def _outcome_record(self, record: SubmissionRecord, ok: bool,
                        latency: float) -> Dict[str, Any]:
        """The per-submission archive record (kind ``outcome``)."""
        peak: Optional[int] = record.memory_peak_bytes
        run = record.run
        if peak is None and run is not None:
            lease = getattr(run.world, "memory", None)
            peak = getattr(lease, "peak_bytes", None)
        out: Dict[str, Any] = {
            "kind": RECORD_OUTCOME,
            # Epoch time, not the service clock: history spans restarts.
            "t": time.time(),
            "at": record.finished_at,
            "id": record.id,
            "tenant": record.request.tenant,
            "strategy": record.request.strategy,
            "priority": self.tenants.priority_for(
                record.request.tenant, record.request.priority),
            "ok": ok,
            "latency_s": latency,
            "wait_s": record.admission_wait,
            "memory_peak_bytes": peak,
            "worker": record.worker_id,
        }
        if record.error is not None:
            out["error"] = record.error
        if record.outcome is not None:
            out["response_time"] = record.outcome["response_time"]
            out["result_tuples"] = record.outcome["result_tuples"]
            out["stall_time"] = record.outcome["stall_time"]
        return out

    def _archive_span_summary(self, record: SubmissionRecord) -> None:
        """Archive the submission's span subtree as one summary record."""
        if record.span_summary is not None and record.run is None:
            # Remote execution: the worker already summarized its span
            # subtree; archive the folded summary as-is.
            assert self.archive is not None
            self.archive.append({
                "kind": RECORD_SPAN, "t": time.time(),
                "at": record.finished_at, "id": record.id,
                "tenant": record.request.tenant,
                "worker": record.worker_id,
                "summary": record.span_summary,
            })
            return
        spans = self.machine.telemetry.spans
        run = record.run
        if spans is None or run is None:
            return
        root = run.runtime.query_span
        if root is None:
            return
        from repro.observability.explain import span_summary

        # Spans are appended parent-before-child, so one forward pass
        # collects the whole subtree of the query span.
        ids = {root}
        selected = []
        for span in spans.spans:
            if span.span_id == root or span.parent_id in ids:
                ids.add(span.span_id)
                selected.append(span)
        assert self.archive is not None
        self.archive.append({
            "kind": RECORD_SPAN, "t": time.time(),
            "at": record.finished_at, "id": record.id,
            "tenant": record.request.tenant,
            "summary": span_summary(selected),
        })

    def _remember(self, record: SubmissionRecord) -> None:
        """Keep the newest N finished submissions queryable, prune the rest."""
        self._recent.append(record.id)
        while len(self._recent) > self._history:
            evicted = self._recent.pop(0)
            self.records.pop(evicted, None)

    # -- views ---------------------------------------------------------------
    def record_for(self, submission_id: str) -> Optional[SubmissionRecord]:
        return self.records.get(submission_id)

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-safe view of the whole service (``kind: service``)."""
        now = self.kernel.wall_now
        broker = self.machine.broker
        stalls = self.machine.telemetry.stalls.by_cause()
        for cause, seconds in self.backend.stall_totals().items():
            stalls[cause] = stalls.get(cause, 0.0) + seconds
        stalls = dict(sorted(stalls.items()))
        batches = self._batches_done + sum(
            run.processor.batches_processed for run in self._runs.values()
            if run.processor is not None)
        active_records = sorted(
            (record for record in self.records.values()
             if not record.finished), key=lambda r: r.id)
        recent = [self.records[rid] for rid in reversed(self._recent)
                  if rid in self.records]
        return {
            "version": SERVICE_SNAPSHOT_VERSION,
            "kind": "service",
            "now": now,
            "draining": self.draining,
            "submitted": self.submitted,
            "active": self.active,
            "admission_queued": ((self.controller.queue_depth
                                  if self.controller is not None else 0)
                                 + self.backend.queued_jobs()),
            "backend": self.backend.name,
            "workers": self.backend.describe(),
            "steals": self.backend.steals_total,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "batches": batches,
            "decisions": self.machine.telemetry.audit.appended,
            "stream_dropped": self.publisher.dropped_total,
            "latency": self.latency.summary(now),
            "pool": {
                "total": broker.total_bytes or 0,
                "leased": broker.leased_bytes,
                "spare": broker.spare_bytes() or 0,
                "active_leases": len(broker.leases),
            },
            "stalls": stalls,
            "uptime_s": (time.time() - self.started_wall
                         if self.started_wall is not None else 0.0),
            "alerts": self.alerts_total,
            "slo": (self.slo.status(now) if self.slo is not None else None),
            "archive": (self.archive.stats()
                        if self.archive is not None else None),
            "tenants": self.tenants.snapshot(),
            "queries": [record.to_dict(now) for record in active_records],
            "recent": [record.to_dict(now) for record in recent[:32]],
        }

    def __repr__(self) -> str:
        state = ("draining" if self.draining
                 else "serving" if self._started else "new")
        return (f"QueryService({state}, {self.active} active, "
                f"{self.completed} completed)")
