"""The service's HTTP surface (JSON in, SSE progress out).

The same dependency-free :mod:`http.server` machinery as the per-run
:class:`~repro.observability.server.ObservabilityServer`, extended from
a read-only scrape target into the daemon's front door:

* ``POST /submit``       — JSON submission body, answers ``202`` with the
  submission id; ``400`` malformed, ``429`` tenant over quota, ``503``
  once drain started;
* ``POST /drain``        — begin graceful drain, answers ``202``;
* ``GET /healthz``       — liveness + drain state;
* ``GET /metrics``       — Prometheus exposition of the latest service
  snapshot (:func:`~repro.service.stats.service_prometheus_text`);
* ``GET /stream``        — Server-Sent Events, one service snapshot per
  publish tick, through the same bounded drop-oldest subscriptions as
  the live run's stream (``repro top --connect`` and ``repro watch``
  attach here);
* ``GET /submissions``   — the latest snapshot's active + recent lists;
* ``GET /submissions/I`` — one submission's record, fetched on the
  service loop so it is never a torn read.

HTTP handler threads never touch kernel state directly: submissions and
record lookups cross into the asyncio loop
(:meth:`~repro.service.service.QueryService.submit_threadsafe`), reads
come from the :class:`~repro.observability.live.MetricsPublisher`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.observability.server import stream_publisher
from repro.resources import QuotaExceeded
from repro.service.service import QueryService, ServiceDraining, SubmissionRequest
from repro.service.stats import service_prometheus_text

#: largest accepted request body (a submission is a small JSON object).
_MAX_BODY_BYTES = 64 * 1024

#: how long a handler thread waits for the service loop.
_LOOP_TIMEOUT_S = 10.0


class _Handler(BaseHTTPRequestHandler):
    """Request handler; ``self.server`` is the :class:`_Server` below."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        pass  # the daemon's stdout belongs to the operator

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._send(status, "application/json",
                   (json.dumps(payload, sort_keys=True) + "\n").encode())

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"bad JSON body: {exc}") from exc

    # -- endpoints ---------------------------------------------------------
    def do_GET(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            self._metrics()
        elif path == "/healthz":
            self._healthz()
        elif path == "/slo":
            self._slo()
        elif path == "/stream":
            self._stream()
        elif path == "/submissions":
            self._submissions()
        elif path.startswith("/submissions/"):
            self._submission(path[len("/submissions/"):])
        else:
            self._send(404, "text/plain; charset=utf-8",
                       b"unknown endpoint; try /healthz, /metrics, /slo,"
                       b" /stream, /submissions\n")

    def do_POST(self) -> None:
        path = self.path.split("?", 1)[0]
        if path == "/submit":
            self._submit()
        elif path == "/drain":
            self._drain()
        else:
            self._send(404, "text/plain; charset=utf-8",
                       b"unknown endpoint; try /submit, /drain\n")

    def _metrics(self) -> None:
        snapshot, _seq = self.server.service.publisher.latest()
        body = service_prometheus_text(snapshot).encode("utf-8")
        self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)

    def _healthz(self) -> None:
        service = self.server.service
        snapshot, seq = service.publisher.latest()
        # archive.health() stats the segment files — fine here on the
        # HTTP thread, never on the kernel loop.
        archive = (service.archive.health()
                   if service.archive is not None else None)
        self._send_json(200, {
            "status": "draining" if service.draining else "ok",
            "serving": not service.draining,
            "draining": service.draining,
            "state": "draining" if service.draining else "serving",
            "uptime_s": (time.time() - service.started_wall
                         if service.started_wall is not None else 0.0),
            "snapshots": seq,
            "now": snapshot["now"] if snapshot is not None else None,
            "active": snapshot["active"] if snapshot is not None else 0,
            "alerts": service.alerts_total,
            "archive": archive,
            "backend": service.backend.name,
            # Per-worker liveness/backlog straight off the backend (not
            # the snapshot: a dead worker must show up within the
            # health probe's latency, not the publish interval's).
            "workers": service.backend.describe(),
        })

    def _slo(self) -> None:
        """Current status of every declared objective (may be empty)."""
        service = self.server.service
        if service.slo is None:
            self._send_json(200, {"objectives": [], "alerts": 0})
            return
        tracker = service.slo

        def _status() -> Any:
            return tracker.status(service.kernel.wall_now)

        # Status reads the tracker's event rings, which mutate on the
        # service loop — cross over for a tear-free view.
        objectives = self.server.on_loop(_status)
        self._send_json(200, {"objectives": objectives,
                              "alerts": service.alerts_total})

    def _stream(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            stream_publisher(self.wfile, self.server.service.publisher,
                             self.server.stopping)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        finally:
            self.close_connection = True

    def _submissions(self) -> None:
        snapshot, _seq = self.server.service.publisher.latest()
        if snapshot is None:
            self._send_json(200, {"queries": [], "recent": []})
            return
        self._send_json(200, {"queries": snapshot["queries"],
                              "recent": snapshot["recent"]})

    def _submission(self, submission_id: str) -> None:
        service = self.server.service

        def _lookup() -> Optional[Dict[str, Any]]:
            record = service.record_for(submission_id)
            return (record.to_dict(service.kernel.wall_now)
                    if record is not None else None)

        found = self.server.on_loop(_lookup)
        if found is None:
            self._send_json(404, {"error": f"no submission {submission_id!r}"
                                           " (finished ones age out)"})
        else:
            self._send_json(200, found)

    def _submit(self) -> None:
        service = self.server.service
        try:
            request = SubmissionRequest.from_json(self._read_json())
            record = service.submit_threadsafe(request,
                                               timeout=_LOOP_TIMEOUT_S)
        except ConfigurationError as exc:
            self._send_json(400, {"error": str(exc)})
        except QuotaExceeded as exc:
            self._send_json(429, {"error": str(exc),
                                  "tenant": exc.tenant})
        except ServiceDraining as exc:
            self._send_json(503, {"error": str(exc)})
        else:
            self._send_json(202, {"id": record.id,
                                  "tenant": record.request.tenant,
                                  "state": record.state,
                                  "submitted_at": record.submitted_at})

    def _drain(self) -> None:
        self.server.service.drain_threadsafe()
        self._send_json(202, {"status": "draining"})


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: QueryService):
        super().__init__(address, _Handler)
        self.service = service
        self.stopping = threading.Event()

    def on_loop(self, fn: Any) -> Any:
        """Run ``fn`` on the service loop and return its result."""
        import concurrent.futures

        future: "concurrent.futures.Future[Any]" = concurrent.futures.Future()

        def _call() -> None:
            try:
                future.set_result(fn())
            except BaseException as exc:
                future.set_exception(exc)

        assert self.service._loop is not None, "service not started"
        self.service._loop.call_soon_threadsafe(_call)
        return future.result(timeout=_LOOP_TIMEOUT_S)


class ServiceServer:
    """Owns the HTTP server thread fronting one :class:`QueryService`."""

    def __init__(self, service: QueryService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._server = _Server((host, port), service)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolved even when constructed with port 0)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="service-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and join the server thread (idempotent)."""
        if self._thread is None:
            return
        self._server.stopping.set()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join()
        self._thread = None

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"ServiceServer({self.url}, {state})"
