"""Per-tenant latency SLOs with multi-window burn-rate alerting.

An objective is declared on the CLI as ``tenant:p99<=30s@99.5%``: for
tenant ``tenant`` (or ``*`` for all traffic), 99.5% of completed
submissions must finish within 30 seconds.  Each completed submission is
one *event*; an event is *good* when its latency is at or under the
threshold.  The error budget is ``1 - target`` (here 0.5%), and the
burn rate over a window is::

    burn = bad_fraction_in_window / error_budget

A burn rate of 1.0 spends the budget exactly at the sustainable pace;
14.4 spends a 30-day budget in ~2 days.  Following SRE practice the
tracker evaluates two windows per objective — a fast window (default
5 min, threshold 14.4) that catches sharp regressions within minutes,
and a slow window (default 1 h, threshold 6.0) that catches persistent
slow burn while the fast window has already recovered.  Each window is
an independent alert with firing/resolved transitions; the service
archives every transition, publishes it as an SSE ``alert`` event, and
exposes current status at ``GET /slo``.

Everything here is deterministic: :class:`SLOTracker` never reads a
clock — callers pass ``at``/``now`` explicitly, which is what makes the
fast-then-slow alert sequencing unit-testable tick by tick.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: tenant wildcard: the objective covers every completed submission.
ALL_TENANTS = "*"

#: metrics an objective may constrain.  They all resolve to "latency of
#: one completed submission vs threshold" — the percentile label states
#: which population fraction the target protects.
_METRICS = ("latency", "p50", "p90", "p95", "p99")

#: ``tenant:p99<=30s@99.5%`` — tenant (or ``*``), metric, threshold with
#: optional ms/s/m unit, target percentage.
_SPEC_RE = re.compile(
    r"^(?P<tenant>[A-Za-z0-9_.*-]+):"
    r"(?P<metric>[a-z0-9]+)<=(?P<threshold>[0-9.]+)(?P<unit>ms|s|m)?"
    r"@(?P<target>[0-9.]+)%$")

_UNIT_SECONDS = {"ms": 1e-3, "s": 1.0, "m": 60.0, None: 1.0}

#: default burn-rate windows/thresholds (Google SRE workbook, ch. 5).
FAST_WINDOW_S = 300.0
SLOW_WINDOW_S = 3600.0
FAST_BURN_THRESHOLD = 14.4
SLOW_BURN_THRESHOLD = 6.0

#: events retained per objective — bounds tracker memory on long runs.
DEFAULT_EVENT_CAPACITY = 65536


@dataclass(frozen=True)
class SLOSpec:
    """One parsed objective (immutable, hashable, printable)."""

    tenant: str
    metric: str
    threshold_s: float
    target: float  # fraction in (0, 1), e.g. 0.995

    @classmethod
    def parse(cls, text: str) -> "SLOSpec":
        match = _SPEC_RE.match(text.strip())
        if match is None:
            raise ConfigurationError(
                f"bad SLO spec {text!r}; expected TENANT:METRIC<=SECONDS"
                f"@PERCENT% like gold:p99<=30s@99.5% (tenant '*' matches"
                f" all traffic)")
        metric = match.group("metric")
        if metric not in _METRICS:
            raise ConfigurationError(
                f"bad SLO metric {metric!r} in {text!r}; "
                f"expected one of {', '.join(_METRICS)}")
        threshold = (float(match.group("threshold"))
                     * _UNIT_SECONDS[match.group("unit")])
        if threshold <= 0:
            raise ConfigurationError(
                f"SLO threshold must be positive in {text!r}")
        target = float(match.group("target")) / 100.0
        if not 0.0 < target < 1.0:
            raise ConfigurationError(
                f"SLO target must be in (0%, 100%) exclusive, got {text!r}"
                f" — a 100% target has zero error budget")
        return cls(tenant=match.group("tenant"), metric=metric,
                   threshold_s=threshold, target=target)

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    @property
    def name(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        return (f"{self.tenant}:{self.metric}<={self.threshold_s:g}s"
                f"@{self.target * 100:g}%")

    def matches(self, tenant: Optional[str]) -> bool:
        return self.tenant == ALL_TENANTS or self.tenant == tenant

    def good(self, latency_s: float) -> bool:
        return latency_s <= self.threshold_s


def parse_slo_specs(texts: Sequence[str]) -> List[SLOSpec]:
    """Parse CLI ``--slo`` values, rejecting duplicates."""
    specs: List[SLOSpec] = []
    seen: Dict[str, str] = {}
    for text in texts:
        spec = SLOSpec.parse(text)
        if spec.name in seen:
            raise ConfigurationError(
                f"duplicate SLO objective {spec.name!r} "
                f"(from {text!r} and {seen[spec.name]!r})")
        seen[spec.name] = text
        specs.append(spec)
    return specs


class _WindowAlert:
    """Firing/resolved state for one (objective, window) pair."""

    def __init__(self, label: str, window_s: float, threshold: float) -> None:
        self.label = label
        self.window_s = window_s
        self.threshold = threshold
        self.firing = False
        self.fired_total = 0
        self.since: Optional[float] = None

    def evaluate(self, burn: float, now: float) -> Optional[str]:
        """Returns ``"firing"``/``"resolved"`` on a transition else None."""
        if burn >= self.threshold and not self.firing:
            self.firing = True
            self.fired_total += 1
            self.since = now
            return "firing"
        if burn < self.threshold and self.firing:
            self.firing = False
            self.since = None
            return "resolved"
        return None


class _ObjectiveState:
    """Event ring + two window alerts for one objective."""

    def __init__(self, spec: SLOSpec, fast: Tuple[float, float],
                 slow: Tuple[float, float], capacity: int) -> None:
        self.spec = spec
        #: (at, good) pairs, oldest first.
        self.events: Deque[Tuple[float, bool]] = deque(maxlen=capacity)
        self.total_events = 0
        self.total_bad = 0
        self.fast = _WindowAlert("fast", fast[0], fast[1])
        self.slow = _WindowAlert("slow", slow[0], slow[1])

    def observe(self, latency_s: float, at: float) -> None:
        good = self.spec.good(latency_s)
        self.events.append((at, good))
        self.total_events += 1
        if not good:
            self.total_bad += 1

    def burn_rate(self, window_s: float, now: float) -> Tuple[float, int, int]:
        """``(burn, events, bad)`` over ``[now - window_s, now]``."""
        cutoff = now - window_s
        events = 0
        bad = 0
        # Oldest-first ring; walk from the newest end and stop at cutoff.
        for at, good in reversed(self.events):
            if at < cutoff:
                break
            events += 1
            if not good:
                bad += 1
        if events == 0:
            return 0.0, 0, 0
        bad_fraction = bad / events
        return bad_fraction / self.spec.error_budget, events, bad

    def evaluate(self, now: float) -> List[Dict[str, Any]]:
        transitions: List[Dict[str, Any]] = []
        for alert in (self.fast, self.slow):
            burn, events, bad = self.burn_rate(alert.window_s, now)
            change = alert.evaluate(burn, now)
            if change is not None:
                transitions.append({
                    "objective": self.spec.name,
                    "tenant": self.spec.tenant,
                    "window": alert.label,
                    "window_s": alert.window_s,
                    "state": change,
                    "burn_rate": burn,
                    "burn_threshold": alert.threshold,
                    "events": events,
                    "bad": bad,
                })
        return transitions

    def status(self, now: float) -> Dict[str, Any]:
        windows: Dict[str, Any] = {}
        for alert in (self.fast, self.slow):
            burn, events, bad = self.burn_rate(alert.window_s, now)
            windows[alert.label] = {
                "window_s": alert.window_s,
                "burn_rate": burn,
                "burn_threshold": alert.threshold,
                "events": events,
                "bad": bad,
                "firing": alert.firing,
                "firing_since": alert.since,
                "fired_total": alert.fired_total,
            }
        compliance = (1.0 - self.total_bad / self.total_events
                      if self.total_events else 1.0)
        return {
            "objective": self.spec.name,
            "tenant": self.spec.tenant,
            "metric": self.spec.metric,
            "threshold_s": self.spec.threshold_s,
            "target": self.spec.target,
            "error_budget": self.spec.error_budget,
            "events": self.total_events,
            "bad": self.total_bad,
            "compliance": compliance,
            "alerting": self.fast.firing or self.slow.firing,
            "windows": windows,
        }


class SLOTracker:
    """Evaluates every declared objective against the outcome stream.

    The service calls :meth:`observe` from ``_finish`` (one event per
    completed submission) and :meth:`evaluate` from the publish loop
    (once per tick); both take explicit timestamps on the service's
    wall clock, so tests drive the whole state machine synthetically.
    """

    def __init__(self, specs: Sequence[SLOSpec], *,
                 fast_window_s: float = FAST_WINDOW_S,
                 slow_window_s: float = SLOW_WINDOW_S,
                 fast_burn_threshold: float = FAST_BURN_THRESHOLD,
                 slow_burn_threshold: float = SLOW_BURN_THRESHOLD,
                 capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if not specs:
            raise ConfigurationError("SLOTracker needs at least one objective")
        if fast_window_s <= 0 or slow_window_s <= 0:
            raise ConfigurationError("SLO windows must be positive")
        if fast_window_s >= slow_window_s:
            raise ConfigurationError(
                f"fast window ({fast_window_s}s) must be shorter than the "
                f"slow window ({slow_window_s}s)")
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}")
        self.specs = list(specs)
        self._states = [
            _ObjectiveState(spec, (fast_window_s, fast_burn_threshold),
                            (slow_window_s, slow_burn_threshold), capacity)
            for spec in self.specs]

    def observe(self, tenant: Optional[str], latency_s: float,
                at: float) -> None:
        """Record one completed submission against matching objectives."""
        for state in self._states:
            if state.spec.matches(tenant):
                state.observe(latency_s, at)

    def evaluate(self, now: float) -> List[Dict[str, Any]]:
        """Evaluate all windows; returns alert *transitions* (may be [])."""
        transitions: List[Dict[str, Any]] = []
        for state in self._states:
            transitions.extend(state.evaluate(now))
        return transitions

    def status(self, now: float) -> List[Dict[str, Any]]:
        """JSON-safe status of every objective (for ``/slo`` + snapshots)."""
        return [state.status(now) for state in self._states]

    def alerting_tenants(self) -> Dict[str, bool]:
        """``{tenant: any window firing}`` for the top-screen SLO column."""
        firing: Dict[str, bool] = {}
        for state in self._states:
            active = state.fast.firing or state.slow.firing
            key = state.spec.tenant
            firing[key] = firing.get(key, False) or active
        return firing
