"""The always-on multi-tenant query service (``repro serve``).

Promotes the wall-clock backend into a long-running daemon: one
persistent :class:`~repro.exec.aio.AsyncioKernel` plus one machine-level
:class:`~repro.core.runtime.World` (shared CPU/link/buffer, a governed
:class:`~repro.resources.broker.MemoryBroker`, an
:class:`~repro.resources.admission.AdmissionController`, shared
telemetry), serving an unbounded stream of query submissions over HTTP:

* :class:`QueryService` — kernel lifetime, submission lifecycle, tenant
  accounting, graceful drain (:mod:`repro.service.service`);
* :class:`ExecutionBackend` / :class:`InProcessBackend` — the execution
  plane behind the control plane (:mod:`repro.service.backend`);
* :class:`WorkerPoolBackend` / :class:`PoolScheduler` — the sharded
  work-stealing worker-process pool behind ``repro serve --workers N``
  (:mod:`repro.service.workers`);
* :class:`ServiceServer` — the HTTP surface: JSON submit, SSE progress,
  Prometheus metrics (:mod:`repro.service.http`);
* :class:`LatencyWindow` — sliding p50/p99 + throughput aggregation
  (:mod:`repro.service.stats`);
* :func:`run_loadtest` — the sustained-arrival load harness behind
  ``scripts/service_loadtest.py`` and the ``service_loadtest`` bench
  case (:mod:`repro.service.loadtest`);
* :class:`SLOSpec` / :class:`SLOTracker` — per-tenant latency
  objectives with multi-window burn-rate alerting
  (:mod:`repro.service.slo`);
* :func:`load_outcomes` / :func:`summarize_outcomes` /
  :func:`slo_report` / :func:`diff_windows` — offline queries over the
  durable telemetry archive behind ``repro history``
  (:mod:`repro.service.history`).
"""

from repro.service.service import (
    SERVICE_SNAPSHOT_VERSION,
    QueryService,
    ServiceDraining,
    SubmissionRecord,
    SubmissionRequest,
)
from repro.service.backend import ExecutionBackend, InProcessBackend
from repro.service.workers import PoolScheduler, WorkerDied, WorkerPoolBackend
from repro.service.http import ServiceServer
from repro.service.stats import LatencyWindow, service_prometheus_text
from repro.service.loadtest import run_loadtest
from repro.service.slo import SLOSpec, SLOTracker, parse_slo_specs
from repro.service.history import (
    diff_windows,
    load_alerts,
    load_outcomes,
    slo_report,
    summarize_outcomes,
)

__all__ = [
    "SERVICE_SNAPSHOT_VERSION",
    "ExecutionBackend",
    "InProcessBackend",
    "LatencyWindow",
    "PoolScheduler",
    "QueryService",
    "WorkerDied",
    "WorkerPoolBackend",
    "SLOSpec",
    "SLOTracker",
    "ServiceDraining",
    "ServiceServer",
    "SubmissionRecord",
    "SubmissionRequest",
    "diff_windows",
    "load_alerts",
    "load_outcomes",
    "parse_slo_specs",
    "run_loadtest",
    "service_prometheus_text",
    "slo_report",
    "summarize_outcomes",
]
