"""The execution plane behind the service's control plane.

PR 7 fused the two planes: :class:`~repro.service.service.QueryService`
owned one :class:`~repro.exec.aio.AsyncioKernel` and ran every admitted
submission on it directly.  This module splits them.  The *control
plane* (tenant gating, admission, machine-level memory governance,
bounded aggregation, SLOs, archive, drain) stays in ``QueryService``;
*where the query actually executes* is behind the
:class:`ExecutionBackend` protocol:

* :class:`InProcessBackend` — today's behavior, verbatim: the admitted
  submission becomes a :class:`~repro.exec.live.QueryRun` on the
  service's own kernel, admission waits ride the coordinator's
  :class:`~repro.resources.admission.AdmissionController`, telemetry is
  recorded in place.  ``repro serve`` with ``--workers 1`` (the
  default) routes here and is bit-identical to the pre-split service.
* :class:`~repro.service.workers.WorkerPoolBackend` — the sharded
  plane: N worker processes, each with its own long-lived kernel and a
  :class:`~repro.resources.broker.MemoryLease` carved from the machine
  broker, fed over a :mod:`multiprocessing` pipe wire protocol with
  least-loaded dispatch and work stealing.

The seam is the :meth:`ExecutionBackend.launch` generator: the control
plane spawns it as a kernel process (so completion flows through the
unchanged ``_finish`` path — latency window, tenant accounting, SLO
observation, archive outcome records), and the backend decides what the
generator *waits on*: an in-process engine join, or a result event
triggered by a remote worker.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Generator,
    List,
    Optional,
    Protocol,
)

from repro.exec.core import SimEvent
from repro.exec.live import QueryRun
from repro.observability import SPAN_ADMISSION_WAIT, STALL_ADMISSION_WAIT

if TYPE_CHECKING:
    from repro.experiments.workloads import Figure5Workload
    from repro.service.service import QueryService, SubmissionRecord

#: backend names, as reported in service snapshots / ``/healthz``.
BACKEND_IN_PROCESS = "in-process"
BACKEND_WORKER_POOL = "worker-pool"


class ExecutionBackend(Protocol):
    """Where admitted submissions run; the control plane's only view.

    One backend instance serves one :class:`QueryService` for its whole
    lifetime.  All methods except :meth:`stop` run on the service's
    asyncio loop; implementations must not block it.
    """

    #: stable backend identifier (snapshot / healthz field).
    name: str

    async def start(self, service: "QueryService") -> None:
        """Bring the execution plane up (spawn workers, carve leases)."""

    async def stop(self, service: "QueryService") -> None:
        """Tear the execution plane down (drain ran; nothing in flight)."""

    def launch(self, service: "QueryService", record: "SubmissionRecord",
               workload: "Figure5Workload", initial: int, min_bytes: int,
               max_bytes: int) -> Generator[SimEvent, Any, Any]:
        """The kernel-process generator executing one submission.

        Must return the submission's ExecutionResult (or raise); the
        control plane's completion callback reads it off the process.
        """

    def admission_limit_bytes(self,
                              service: "QueryService") -> Optional[int]:
        """Largest minimum working set any submission could ever admit.

        None when unbounded.  The in-process backend answers the global
        pool; a sharded backend answers one worker's carve-out — a query
        whose minimum exceeds it could never run anywhere and is
        refused up front.
        """

    def describe(self) -> List[Dict[str, Any]]:
        """Per-worker liveness/backlog rows (empty for in-process)."""

    def stall_totals(self) -> Dict[str, float]:
        """Stall seconds by cause accumulated *off* the machine
        telemetry (remote workers); empty for in-process."""

    def queued_jobs(self) -> int:
        """Submissions held in backend dispatch queues (0 in-process)."""

    @property
    def steals_total(self) -> int:
        """Jobs executed by a worker other than the one first assigned."""


class InProcessBackend:
    """The single-kernel execution plane (pre-split behavior, verbatim).

    Everything the PR7 service did inline lives in :meth:`launch` now:
    coordinator-side admission (ticket wait + stall/span attribution),
    lease acquisition, the query-view ``World``/:class:`QueryRun` on the
    shared kernel, and lease release on the way out.
    """

    name = BACKEND_IN_PROCESS

    async def start(self, service: "QueryService") -> None:
        return None

    async def stop(self, service: "QueryService") -> None:
        return None

    def launch(self, service: "QueryService", record: "SubmissionRecord",
               workload: "Figure5Workload", initial: int, min_bytes: int,
               max_bytes: int) -> Generator[SimEvent, Any, Any]:
        from repro.core.runtime import World
        from repro.core.strategies import make_policy
        from repro.service.service import STATE_RUNNING

        machine = service.machine
        kernel = service.kernel
        request = record.request
        submitted = kernel.now
        priority = service.tenants.priority_for(request.tenant,
                                                request.priority)
        wait_span = None
        spans = machine.telemetry.spans
        if service.controller is not None:
            ticket = service.controller.request(
                record.id, min_bytes, max_bytes, priority=priority,
                tenant=request.tenant)
            if not ticket.granted:
                assert ticket.event is not None
                yield ticket.event
            lease = ticket.lease
            assert lease is not None
            record.admission_wait = ticket.waited
            if record.admission_wait > 0:
                machine.telemetry.stalls.record(
                    STALL_ADMISSION_WAIT, submitted, kernel.now)
                if spans is not None:
                    wait_span = spans.add(
                        SPAN_ADMISSION_WAIT, record.id, submitted,
                        kernel.now, min_bytes=min_bytes)
        else:
            lease = machine.broker.lease(record.id, initial,
                                         min_bytes=min_bytes,
                                         max_bytes=max_bytes,
                                         tenant=request.tenant)
        record.state = STATE_RUNNING
        record.started_at = kernel.now
        # Query-view world: shares the machine, skips per-query gauges
        # (the registry must not grow with the submission stream).
        world = World(service.params, share_machine=machine, lease=lease,
                      query_name=record.id, attach_memory_metrics=False)
        query = QueryRun(kernel, world, workload.qep,
                         make_policy(request.strategy),
                         service.sources_for(workload, request,
                                             service.sequence),
                         name=record.id)
        record.run = query
        service.register_run(record.id, query)
        try:
            main = query.start()
            if wait_span is not None and spans is not None \
                    and query.runtime.query_span is not None:
                spans.set_cause(query.runtime.query_span, wait_span)
            yield main  # joins; an engine failure re-raises here
            result = query.result()
            result.submission_id = record.id
            result.tenant = request.tenant
            return result
        finally:
            query.detach()
            machine.broker.release(lease)

    def admission_limit_bytes(self,
                              service: "QueryService") -> Optional[int]:
        return service.global_memory_bytes

    def describe(self) -> List[Dict[str, Any]]:
        return []

    def stall_totals(self) -> Dict[str, float]:
        return {}

    def queued_jobs(self) -> int:
        return 0

    @property
    def steals_total(self) -> int:
        return 0
