"""Bounded aggregation over the service's unbounded submission stream.

A one-shot run can afford to keep everything it measured; a daemon
cannot.  :class:`LatencyWindow` keeps the newest N completion latencies
(and their completion times) in a ring, answering p50/p95/p99, mean and
a recent-horizon throughput in O(window) — constant memory no matter how
many million submissions have flowed through.

:func:`service_prometheus_text` renders one service snapshot (see
:meth:`repro.service.service.QueryService.snapshot`) in the Prometheus
text exposition format — the service counterpart of
:func:`repro.observability.live.live_prometheus_text`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

#: default completion-latency ring size.
DEFAULT_WINDOW = 4096

#: seconds of history the throughput figure looks back over.
THROUGHPUT_HORIZON_S = 30.0


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0.0 if empty).

    The fraction is validated *before* the empty-list shortcut: a bad
    fraction is a caller bug and must raise even when the window happens
    to be empty, while an empty window with a valid fraction is the
    normal quiet-service case and yields 0.0.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction out of range: {fraction}")
    if not sorted_values:
        return 0.0
    rank = max(1, int(round(fraction * len(sorted_values) + 0.5)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


class LatencyWindow:
    """Sliding window of completion latencies with percentile summary."""

    def __init__(self, capacity: int = DEFAULT_WINDOW) -> None:
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: (completed_at, latency_s), newest last.
        self._window: Deque[Tuple[float, float]] = deque(maxlen=capacity)
        self.observed = 0
        self.total_latency_s = 0.0

    def observe(self, latency_s: float, at: float) -> None:
        """Record one completion (``at`` on the service clock)."""
        self._window.append((at, latency_s))
        self.observed += 1
        self.total_latency_s += latency_s

    def __len__(self) -> int:
        return len(self._window)

    def throughput(self, now: float,
                   horizon_s: float = THROUGHPUT_HORIZON_S) -> float:
        """Completions per second over the trailing ``horizon_s``.

        When the window holds less history than the horizon, the rate is
        computed over what it holds, so a fresh service reports its true
        (short-run) rate instead of an artificially diluted one.
        """
        if not self._window:
            return 0.0
        cutoff = now - horizon_s
        recent = sum(1 for at, _lat in self._window if at >= cutoff)
        if recent == 0:
            return 0.0
        oldest = max(self._window[0][0], cutoff)
        elapsed = max(now - oldest, 1e-9)
        return recent / elapsed

    def summary(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON-safe window summary (percentiles over the current ring)."""
        latencies = sorted(lat for _at, lat in self._window)
        summary: Dict[str, Any] = {
            "count": len(latencies),
            "observed": self.observed,
            "p50_s": percentile(latencies, 0.50),
            "p95_s": percentile(latencies, 0.95),
            "p99_s": percentile(latencies, 0.99),
            "max_s": latencies[-1] if latencies else 0.0,
            "mean_s": (sum(latencies) / len(latencies)
                       if latencies else 0.0),
        }
        if now is not None:
            summary["throughput_qps"] = self.throughput(now)
        return summary


def _esc(label: str) -> str:
    return label.replace("\\", r"\\").replace('"', r'\"')


def service_prometheus_text(snapshot: Optional[Dict[str, Any]]) -> str:
    """Render one service snapshot as Prometheus exposition text."""
    lines: List[str] = []

    def emit(name: str, kind: str, help_text: str,
             samples: List[Tuple[str, Any]]) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for suffix, value in samples:
            lines.append(f"{name}{suffix} {float(value)!r}")

    emit("repro_service_up", "gauge",
         "1 while the service is publishing snapshots.",
         [("", 1.0 if snapshot is not None else 0.0)])
    if snapshot is None:
        return "\n".join(lines) + "\n"

    emit("repro_service_uptime_seconds", "gauge",
         "Seconds since the service kernel started.",
         [("", snapshot["now"])])
    emit("repro_service_draining", "gauge",
         "1 once drain started (new submissions are refused).",
         [("", 1.0 if snapshot["draining"] else 0.0)])
    for field, help_text in (
            ("submitted", "Submissions accepted since start."),
            ("completed", "Submissions finished successfully."),
            ("failed", "Submissions that ended in an error."),
            ("rejected", "Submissions refused (quota or draining)."),
            ("batches", "DQP batches processed across all submissions."),
            ("decisions", "Scheduler decisions recorded since start."),
            ("stream_dropped", "SSE frames dropped for slow clients.")):
        emit(f"repro_service_{field}_total", "counter", help_text,
             [("", snapshot[field])])
    emit("repro_service_active", "gauge",
         "Submissions currently queued or running.",
         [("", snapshot["active"])])
    emit("repro_service_admission_queue_depth", "gauge",
         "Submissions waiting in the admission queue.",
         [("", snapshot["admission_queued"])])

    latency = snapshot["latency"]
    emit("repro_service_latency_seconds", "gauge",
         "Completion latency over the sliding window, by quantile.",
         [(f'{{quantile="{q}"}}', latency[key])
          for q, key in (("0.5", "p50_s"), ("0.95", "p95_s"),
                         ("0.99", "p99_s"))])
    emit("repro_service_throughput_qps", "gauge",
         "Completions per second over the recent horizon.",
         [("", latency.get("throughput_qps", 0.0))])

    pool = snapshot["pool"]
    emit("repro_service_pool_bytes", "gauge",
         "Global memory pool size (0 when unbounded).",
         [("", pool["total"])])
    emit("repro_service_leased_bytes", "gauge",
         "Bytes currently leased to running submissions.",
         [("", pool["leased"])])
    emit("repro_service_active_leases", "gauge",
         "Live memory leases.", [("", pool["active_leases"])])

    emit("repro_service_stall_seconds_total", "counter",
         "Machine idle time by attributed cause.",
         [(f'{{cause="{_esc(cause)}"}}', seconds)
          for cause, seconds in sorted(snapshot["stalls"].items())])

    workers = snapshot.get("workers")
    if workers:
        emit("repro_service_worker_up", "gauge",
             "1 while the worker process is alive and ready.",
             [(f'{{worker="{row["id"]}"}}',
               1.0 if row["state"] == "up" else 0.0) for row in workers])
        emit("repro_service_worker_active", "gauge",
             "Submissions in flight on each worker.",
             [(f'{{worker="{row["id"]}"}}', row["active"])
              for row in workers])
        emit("repro_service_worker_queued", "gauge",
             "Submissions queued coordinator-side for each worker.",
             [(f'{{worker="{row["id"]}"}}', row["queued"])
              for row in workers])
        emit("repro_service_worker_completed_total", "counter",
             "Submissions each worker finished successfully.",
             [(f'{{worker="{row["id"]}"}}', row["completed"])
              for row in workers])
        emit("repro_service_worker_steals_total", "counter",
             "Jobs each worker stole from a backlogged peer.",
             [(f'{{worker="{row["id"]}"}}', row["steals"])
              for row in workers])
        emit("repro_service_worker_restarts_total", "counter",
             "Times each worker slot was respawned after a death.",
             [(f'{{worker="{row["id"]}"}}', row["restarts"])
              for row in workers])

    slo = snapshot.get("slo")
    if slo:
        emit("repro_service_slo_compliance", "gauge",
             "Fraction of events meeting each objective since start.",
             [(f'{{objective="{_esc(o["objective"])}"}}', o["compliance"])
              for o in slo])
        emit("repro_service_slo_alerting", "gauge",
             "1 while any burn-rate window of the objective is firing.",
             [(f'{{objective="{_esc(o["objective"])}"}}',
               1.0 if o["alerting"] else 0.0) for o in slo])
        emit("repro_service_slo_burn_rate", "gauge",
             "Error-budget burn rate per objective and window.",
             [(f'{{objective="{_esc(o["objective"])}",window="{label}"}}',
               window["burn_rate"])
              for o in slo for label, window in sorted(o["windows"].items())])
    archive = snapshot.get("archive")
    if archive is not None:
        emit("repro_service_archive_records_total", "counter",
             "Telemetry records written to the archive.",
             [("", archive["records_written"])])
        emit("repro_service_archive_dropped_total", "counter",
             "Records shed because the archive queue was full.",
             [("", archive["dropped_total"])])
        emit("repro_service_archive_queue_depth", "gauge",
             "Records waiting for the archive writer thread.",
             [("", archive["queued"])])
        emit("repro_service_archive_segments_sealed_total", "counter",
             "Segments rotated and gzip-sealed so far.",
             [("", archive["segments_sealed"])])

    tenants = snapshot["tenants"]
    for field, kind, help_text in (
            ("in_flight", "gauge", "Per-tenant submissions in flight."),
            ("completed", "counter", "Per-tenant completed submissions."),
            ("failed", "counter", "Per-tenant failed submissions."),
            ("rejected", "counter", "Per-tenant refused submissions."),
            ("mean_wait_s", "gauge",
             "Per-tenant mean admission wait (seconds).")):
        suffix = "_total" if kind == "counter" else ""
        emit(f"repro_service_tenant_{field}{suffix}", kind, help_text,
             [(f'{{tenant="{_esc(t["name"])}"}}', t[field])
              for t in tenants])
    return "\n".join(lines) + "\n"
