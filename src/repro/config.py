"""Simulation and engine configuration.

:class:`SimulationParameters` carries Table 1 of the paper verbatim plus
the engine knobs the paper describes in prose (queue sizes, batch size,
benefit materialization threshold, timeout, ...).  A single instance is
shared by every runtime component of one simulated execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.errors import ConfigurationError

#: Average per-tuple waiting time of a wrapper that has no particular
#: problem (Section 5.1.3): sequential read at the source plus a 100 Mb/s
#: network comes to 20 µs per 40-byte tuple.
W_MIN_DEFAULT = 20e-6


@dataclass
class SimulationParameters:
    """All knobs of one simulated execution.

    The first block is Table 1 of the paper; the second block is engine
    configuration from the text; the third block is methodology knobs.
    """

    # --- Table 1: simulation parameters -------------------------------
    cpu_mips: float = 100.0                  #: CPU speed (MIPS)
    disk_latency: float = 17e-3              #: rotational latency (s)
    disk_seek_time: float = 5e-3             #: seek time (s)
    disk_transfer_rate: float = 6_000_000.0  #: bytes/s
    io_cache_pages: int = 8                  #: I/O cache size (pages)
    io_cpu_instructions: float = 3000.0      #: CPU cost to perform an I/O
    num_local_disks: int = 1                 #: mediator disks
    tuple_size: int = 40                     #: bytes
    page_size: int = 8192                    #: bytes
    move_tuple_instructions: float = 100.0   #: move a tuple
    hash_search_instructions: float = 100.0  #: search for match in hash table
    produce_tuple_instructions: float = 50.0  #: produce a result tuple
    network_bandwidth_bits: float = 100e6    #: bits/s
    message_instructions: float = 200_000.0  #: send/receive a message

    # --- engine configuration (from the text) --------------------------
    #: tuples per network message; wrappers ship whole pages.  One page
    #: per message makes the per-tuple receive cost ≈ 10 µs, which (with
    #: the ~3 µs of operator work) keeps every remote PC critical at
    #: w_min = 20 µs — exactly the regime Section 4.3 describes.
    message_pages: int = 1
    #: communication-queue capacity per wrapper, in messages ("a queue of
    #: a given size"); a full queue suspends the wrapper (window protocol).
    queue_capacity_messages: int = 4
    #: tuples the DQP processes per scheduling quantum (Section 3.2);
    #: 0 means "one message".
    batch_tuples: int = 0
    #: "Notice that batch size can vary dynamically" (footnote 1 of the
    #: paper): when enabled, the DQP sizes each batch to half the
    #: fragment's current backlog, between one message and
    #: ``adaptive_batch_max_messages`` messages — big batches when data
    #: piled up (fewer switches), small ones when it trickles
    #: (responsiveness).
    adaptive_batching: bool = False
    adaptive_batch_max_messages: int = 8
    #: CPU overhead charged when the DQP switches between query fragments.
    context_switch_instructions: float = 500.0
    #: DQP service discipline: "priority" is the paper's rule (always
    #: return to the highest-priority fragment with data, Section 3.2);
    #: "round-robin" ignores priorities among data-ready fragments — the
    #: ablation showing what the SP's total order contributes.
    dqp_discipline: str = "priority"
    #: CPU cost of one planning phase (computing a scheduling plan must be
    #: cheap "compared to the average processing time of one execution
    #: phase", Section 3.3).
    planning_instructions: float = 20_000.0
    #: benefit materialization threshold (Section 4.4); experiments use 1.
    bmt: float = 1.0
    #: a fragment is "sparse" when its per-tuple CPU demand is at most
    #: this fraction of its per-tuple arrival interval (c_p/w_p).  Sparse
    #: fragments are served at top priority: their rare batches barely
    #: disturb anyone, and serving them immediately keeps their (slow)
    #: wrapper from blocking on the window protocol.  Dense fragments
    #: would hog a strict-priority processor, so pipeline chains outrank
    #: them (see DsePolicy).
    sparse_demand_threshold: float = 0.5
    #: relative delivery-rate change that triggers a RateChange event.
    rate_change_threshold: float = 0.5
    #: relative cardinality error (observed vs estimated at a blocking
    #: edge) above which the DQO flags a re-optimization opportunity
    #: (Section 3.1 / [9]).
    reoptimization_threshold: float = 0.5
    #: let the DQO *act* on misestimates by swapping the build/probe
    #: sides of still-pending joins (QEP-level adaptation); off by
    #: default so the baseline strategies match the paper exactly.
    enable_reoptimization: bool = False
    #: corrected build estimate must exceed the corrected probe estimate
    #: by this factor before a swap is worth the plan churn.
    reopt_swap_margin: float = 1.2
    #: stall duration after which the DQP raises TimeOut (Section 3.2).
    timeout: float = 60.0
    #: abort the query after this many *consecutive* TimeOut events
    #: (0 = keep waiting forever).  A full system would escalate to
    #: phase-2 query scrambling instead of aborting.
    max_consecutive_timeouts: int = 0
    #: total memory available to the query (bytes); the experiments assume
    #: enough memory for a classical execution (Section 5), and 256 MB
    #: comfortably holds every hash table of the Figure 5 workload.
    query_memory_bytes: int = 256 * 1024 * 1024
    #: react to broker grow offers: when the query's memory lease grows
    #: mid-flight (another query released its lease), the DQS re-runs
    #: the planning phase against the larger budget and stops the MFs of
    #: chains that were degraded for memory but now fit.  Off by default
    #: — the paper's model is a static budget.
    dynamic_budget_replanning: bool = False
    #: pages written/read per temp-relation I/O (write-behind / prefetch
    #: granularity).  Large sequential chunks amortize the 22 ms of
    #: positioning so that spilling a tuple costs ~8 µs of disk time —
    #: below w_min, matching Section 5.2's "w_min is higher than the time
    #: to write a tuple on the local disk".  (The 8-page I/O *cache* of
    #: Table 1 is a separate knob: ``io_cache_pages``.)
    io_chunk_pages: int = 64
    #: let PC degradation materialize into *query memory* when the
    #: estimate fits ("materialization can occur in memory or on disk
    #: depending on the available resources", Section 2.2); off by
    #: default to match the paper's disk-based accounting.
    allow_memory_temps: bool = False
    #: model contention on the mediator's inbound network link explicitly
    #: (off by default: per-tuple waiting times already include network
    #: time, as in Section 5.1.3).
    model_link_contention: bool = False
    #: register named metrics (counters/gauges/histograms) during the
    #: run; off by default so benchmarks see a near-no-op null registry.
    #: Stall attribution and the decision audit log are always on.
    telemetry_enabled: bool = False
    #: virtual-time interval between occupancy samples (memory, queue
    #: depths, delivery rates); 0 disables the periodic sampler.  Only
    #: effective together with ``telemetry_enabled``.
    telemetry_sample_interval: float = 0.0
    #: record the causal span tree (query → phases → fragments → batches
    #: and stall intervals) during the run; independent of
    #: ``telemetry_enabled``.  Off by default: a disabled recorder never
    #: contributes hook callables, so the DQP batch loop pays nothing.
    telemetry_spans: bool = False

    # --- methodology -----------------------------------------------------
    #: default average per-tuple waiting time for "no problem" wrappers.
    w_min: float = W_MIN_DEFAULT
    #: number of repetitions averaged per measurement (paper: 3).
    repetitions: int = 3

    def __post_init__(self):
        self.validate()

    # -- derived values ----------------------------------------------------
    @property
    def tuples_per_page(self) -> int:
        """Whole tuples fitting in one page."""
        return max(1, self.page_size // self.tuple_size)

    @property
    def tuples_per_message(self) -> int:
        """Whole tuples shipped per network message."""
        return self.tuples_per_page * self.message_pages

    @property
    def network_bandwidth_bytes(self) -> float:
        """Network bandwidth in bytes/s."""
        return self.network_bandwidth_bits / 8.0

    @property
    def effective_batch_tuples(self) -> int:
        """DQP batch size in tuples (defaults to one message)."""
        return self.batch_tuples if self.batch_tuples > 0 else self.tuples_per_message

    def instructions_seconds(self, instructions: float) -> float:
        """Convert an instruction count to seconds on this CPU."""
        return instructions / (self.cpu_mips * 1e6)

    def receive_cpu_seconds_per_tuple(self) -> float:
        """Mediator CPU time per tuple spent receiving messages."""
        per_message = self.instructions_seconds(self.message_instructions)
        return per_message / self.tuples_per_message

    def io_seconds_per_tuple(self) -> float:
        """Rough disk time per tuple of sequential temp I/O.

        Used for the ``IO_p`` term of the benefit materialization
        indicator: transfer time of the tuple's share of a page plus the
        per-chunk positioning cost amortized over a full I/O chunk.
        """
        transfer = self.tuple_size / self.disk_transfer_rate
        chunk_overhead = (self.disk_latency + self.disk_seek_time) / (
            self.io_chunk_pages * self.tuples_per_page)
        return transfer + chunk_overhead

    # -- housekeeping ------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` for out-of-range values."""
        positive = {
            "cpu_mips": self.cpu_mips,
            "disk_transfer_rate": self.disk_transfer_rate,
            "tuple_size": self.tuple_size,
            "page_size": self.page_size,
            "network_bandwidth_bits": self.network_bandwidth_bits,
            "message_pages": self.message_pages,
            "queue_capacity_messages": self.queue_capacity_messages,
            "io_chunk_pages": self.io_chunk_pages,
            "io_cache_pages": self.io_cache_pages,
            "adaptive_batch_max_messages": self.adaptive_batch_max_messages,
            "timeout": self.timeout,
            "query_memory_bytes": self.query_memory_bytes,
            "repetitions": self.repetitions,
            "num_local_disks": self.num_local_disks,
        }
        for name, value in positive.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        non_negative = {
            "disk_latency": self.disk_latency,
            "disk_seek_time": self.disk_seek_time,
            "io_cpu_instructions": self.io_cpu_instructions,
            "move_tuple_instructions": self.move_tuple_instructions,
            "hash_search_instructions": self.hash_search_instructions,
            "produce_tuple_instructions": self.produce_tuple_instructions,
            "message_instructions": self.message_instructions,
            "context_switch_instructions": self.context_switch_instructions,
            "planning_instructions": self.planning_instructions,
            "batch_tuples": self.batch_tuples,
            "max_consecutive_timeouts": self.max_consecutive_timeouts,
            "bmt": self.bmt,
            "rate_change_threshold": self.rate_change_threshold,
            "reoptimization_threshold": self.reoptimization_threshold,
            "reopt_swap_margin": self.reopt_swap_margin,
            "w_min": self.w_min,
            "telemetry_sample_interval": self.telemetry_sample_interval,
        }
        for name, value in non_negative.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.page_size < self.tuple_size:
            raise ConfigurationError("page_size must be >= tuple_size")
        if self.dqp_discipline not in ("priority", "round-robin"):
            raise ConfigurationError(
                f"dqp_discipline must be 'priority' or 'round-robin', "
                f"got {self.dqp_discipline!r}")

    def with_overrides(self, **overrides: Any) -> "SimulationParameters":
        """A copy with some fields replaced (validates the result)."""
        return replace(self, **overrides)

    def table1_rows(self) -> list[tuple[str, str]]:
        """Rows of the paper's Table 1, formatted for reports."""
        return [
            ("CPU Speed", f"{self.cpu_mips:g} Mips"),
            ("Disk Latency - Seek Time - Transfer Rate",
             f"{self.disk_latency * 1e3:g} ms - {self.disk_seek_time * 1e3:g} ms - "
             f"{self.disk_transfer_rate / 1e6:g} MB/s"),
            ("I/O Cache Size", f"{self.io_cache_pages} pages"),
            ("Perform an I/O", f"{self.io_cpu_instructions:g} Instr."),
            ("Number of Local Disks", f"{self.num_local_disks}"),
            ("Tuple Size - Page Size",
             f"{self.tuple_size} bytes - {self.page_size // 1024} Kb"),
            ("Move a Tuple", f"{self.move_tuple_instructions:g} Inst."),
            ("Search for Match in Hash Table",
             f"{self.hash_search_instructions:g} Inst."),
            ("Produce a Result Tuple", f"{self.produce_tuple_instructions:g} Inst."),
            ("Network Bandwidth", f"{self.network_bandwidth_bits / 1e6:g} Mbs"),
            ("Send/Receive a Message", f"{self.message_instructions:g} Inst."),
        ]
