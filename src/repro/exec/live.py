"""Live sources and the wall-clock query engine.

The counterpart of :class:`repro.wrappers.source.Wrapper` /
:class:`repro.core.engine.QueryEngine` for the :class:`AsyncioKernel`
backend: batches arrive from *real* async callables or async generators
with real (jittery, unpredictable) delays, and the unchanged DQO → DQS →
DQP stack schedules around them.  This is the setting the paper's
strategies were designed for — the simulator only ever emulated it.

* :class:`LiveWrapper` — bridges one async batch source into the
  mediator's communication manager.  An :mod:`asyncio` feeder task pulls
  batches and hands them to a kernel-side pump process, which delivers
  through ``CommunicationManager.deliver`` so the window protocol,
  per-message CPU costs and rate estimation all apply exactly as in the
  simulation.
* :func:`jittered_batches` — a ready-made async source: ships a relation
  in message-sized batches, sleeping a jittered per-tuple wait between
  batches (the live analogue of the paper's uniform-[0, 2w] delay model).
* :class:`LiveQueryEngine` — builds a :class:`World` on an
  :class:`AsyncioKernel`, runs one strategy against live sources and
  returns the same :class:`ExecutionResult` as the simulated engine.
"""

from __future__ import annotations

import asyncio
from collections import deque
from pathlib import Path
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Generator,
    Mapping,
    Optional,
    Union,
)

import numpy as np

from repro.common.errors import ConfigurationError, SimulationError
from repro.config import SimulationParameters
from repro.exec.aio import AsyncioKernel
from repro.exec.core import SimEvent
from repro.observability.flight import (
    ENTRY_DECISION,
    ENTRY_PHASE,
    ENTRY_SAMPLE,
    ENTRY_STALL,
    FlightRecorder,
    StallWatchdog,
)
from repro.observability.live import MetricsPublisher, build_live_snapshot
from repro.observability.server import ObservabilityServer

#: a live batch source: an async iterator of tuple counts, or an async
#: callable returning the next count (``None`` meaning end-of-stream).
BatchSource = Union[AsyncIterator[int], Callable[[], Awaitable[Optional[int]]]]


async def jittered_batches(cardinality: int, tuples_per_batch: int,
                           mean_wait: float, rng: np.random.Generator,
                           jitter: float = 1.0) -> AsyncIterator[int]:
    """Ship ``cardinality`` tuples in batches with jittered real delays.

    Before each batch the source sleeps ``count * w`` seconds where ``w``
    is drawn uniformly from ``[(1 - jitter) * mean_wait,
    (1 + jitter) * mean_wait]`` — with the default ``jitter=1`` that is
    the paper's uniform-[0, 2w] per-tuple wait, applied per batch.
    """
    if cardinality < 0 or tuples_per_batch < 1:
        raise ConfigurationError(
            f"bad live source shape: cardinality={cardinality}, "
            f"tuples_per_batch={tuples_per_batch}")
    if not 0.0 <= jitter <= 1.0:
        raise ConfigurationError(f"jitter must be in [0, 1], got {jitter}")
    remaining = cardinality
    while remaining > 0:
        count = min(tuples_per_batch, remaining)
        wait = float(rng.uniform(1.0 - jitter, 1.0 + jitter)) * mean_wait
        delay = count * wait
        if delay > 0:
            await asyncio.sleep(delay)
        yield count
        remaining -= count


class LiveWrapper:
    """One real (async) source feeding the mediator.

    Mirrors the simulated wrapper's external surface (``name``,
    ``tuples_sent``, ``production_time``, ``blocked_time``,
    ``finished_at``) so engine result collection works unchanged.
    """

    def __init__(self, kernel: AsyncioKernel, name: str, cm: Any,
                 source: BatchSource):
        self.kernel = kernel
        self._name = name
        self.cm = cm
        self._source = source
        self.tuples_sent = 0
        self.production_time = 0.0      # real seconds between batches
        self.blocked_time = 0.0         # real seconds inside deliver()
        self.finished_at: Optional[float] = None
        self._inbox: deque[tuple[int, bool, float]] = deque()
        self._data: Optional[SimEvent] = None
        self._delivered = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._pump_process: Any = None

    @property
    def name(self) -> str:
        return self._name

    def start(self) -> None:
        """Register with the CM, start the feeder task and pump process."""
        if self._task is not None:
            raise SimulationError(f"live wrapper {self.name!r} started twice")
        self.cm.register_source(self.name)
        self._pump_process = self.kernel.process(
            self._pump(), name=f"live:{self.name}")
        self._task = asyncio.ensure_future(self._feed())

    def stop(self) -> None:
        """Cancel the feeder task (used on engine failure paths)."""
        if self._task is not None and not self._task.done():
            self._task.cancel()

    def _aiter(self) -> AsyncIterator[int]:
        source = self._source
        if hasattr(source, "__anext__"):
            return source  # type: ignore[return-value]

        async def _poll() -> AsyncIterator[int]:
            while True:
                count = await source()  # type: ignore[operator]
                if count is None:
                    return
                yield count

        return _poll()

    async def _feed(self) -> None:
        """asyncio side: pull batches, timestamp them, wake the pump.

        Production is backpressured batch-by-batch, matching the
        simulated wrapper: the next batch is not pulled from the source
        until the previous one has cleared ``deliver`` (and therefore
        the window protocol).  Without this the source would free-run
        into the unbounded inbox and the mediator could never slow a
        producer down.
        """
        loop = asyncio.get_running_loop()
        last = loop.time()
        try:
            async for count in self._aiter():
                now = loop.time()
                self._delivered.clear()
                self._push(int(count), False, now - last)
                await self._delivered.wait()
                last = loop.time()
        finally:
            self._push(0, True, 0.0)

    def _push(self, count: int, eof: bool, production: float) -> None:
        self._inbox.append((count, eof, production))
        if self._data is not None and not self._data.triggered:
            self._data.succeed()

    def _pump(self) -> Generator[SimEvent, Any, None]:
        """Kernel side: drain the inbox through the window protocol."""
        while True:
            while self._inbox:
                count, eof, production = self._inbox.popleft()
                self.production_time += production
                before = self.kernel.now
                yield from self.cm.deliver(self.name, count, eof=eof,
                                           production_seconds=production)
                self.blocked_time += self.kernel.now - before
                self.tuples_sent += count
                self._delivered.set()
                if eof:
                    self.finished_at = self.kernel.now
                    return
            self._data = self.kernel.event(name=f"live-data:{self.name}")
            yield self._data
            self._data = None

    def __repr__(self) -> str:
        return (f"LiveWrapper({self.name!r}, sent={self.tuples_sent}, "
                f"eof={self.finished_at is not None})")


class QueryRun:
    """One query's lifetime, attached to a (possibly shared) kernel.

    The piece of :class:`LiveQueryEngine` that is *per query* rather than
    *per kernel*: live wrappers, the DQO → DQS → DQP stack, the driving
    process, and result collection.  :class:`LiveQueryEngine` builds a
    fresh kernel for exactly one run; :mod:`repro.service` keeps one
    kernel alive indefinitely and attaches/detaches an unbounded stream
    of runs, many in flight at once, each on its own query-view
    :class:`~repro.core.runtime.World` sharing the machine.

    ``sources`` maps every source relation of the plan to a *factory*
    returning a fresh :data:`BatchSource`.
    """

    def __init__(self, kernel: AsyncioKernel, world: Any, qep: Any,
                 policy: Any,
                 sources: Mapping[str, Callable[[], BatchSource]],
                 name: str = "engine"):
        self.kernel = kernel
        self.world = world
        self.qep = qep
        self.policy = policy
        self.sources = sources
        self.name = name
        self.wrappers: list[LiveWrapper] = []
        self.runtime: Any = None
        self.scheduler: Any = None
        self.processor: Any = None
        self.optimizer: Any = None
        self.main: Any = None

    @property
    def strategy(self) -> str:
        return getattr(self.policy, "name", type(self.policy).__name__)

    def start(self) -> Any:
        """Attach: start the sources and the driving engine process.

        Returns the main :class:`~repro.exec.core.Process`; it is born
        defused, so a failure surfaces through :meth:`result` (or through
        whoever joins it) rather than crashing the shared kernel.
        """
        from repro.core.dqo import DynamicQEPOptimizer
        from repro.core.dqp import DynamicQueryProcessor
        from repro.core.dqs import DynamicQueryScheduler
        from repro.core.runtime import QueryRuntime

        if self.main is not None:
            raise SimulationError(f"query run {self.name!r} started twice")
        for relation in self.qep.source_relations():
            wrapper = LiveWrapper(self.kernel, relation, self.world.cm,
                                  self.sources[relation]())
            wrapper.start()
            self.wrappers.append(wrapper)
        self.runtime = QueryRuntime(self.world, self.qep)
        self.scheduler = DynamicQueryScheduler(self.runtime, self.policy)
        self.processor = DynamicQueryProcessor(self.runtime)
        self.optimizer = DynamicQEPOptimizer(self.runtime, self.scheduler,
                                             self.processor)
        self.main = self.kernel.process(self.optimizer.run(), name=self.name)
        self.main.defused = True
        return self.main

    def snapshot(self) -> Any:
        """A live snapshot of this run (see :func:`build_live_snapshot`)."""
        return build_live_snapshot(self.world, self.runtime, self.processor,
                                   self.strategy)

    def detach(self) -> None:
        """Stop the source feeder tasks (idempotent; failure paths too)."""
        for wrapper in self.wrappers:
            wrapper.stop()

    def check_complete(self) -> None:
        """Raise unless the run finished cleanly (same checks as before)."""
        from repro.core.events import EndOfQEP

        if self.main is None or not self.main.triggered:
            raise SimulationError(
                f"query run {self.name!r} has not finished")
        if self.main.failure is not None:
            raise self.main.failure
        if not isinstance(self.main.value, EndOfQEP):
            raise SimulationError(
                f"live engine ended without EndOfQEP: {self.main.value!r}")
        if not self.runtime.all_done:
            raise SimulationError("kernel idle but query incomplete")

    def result(self, trace: bool = False) -> Any:
        """Validate completion and collect the :class:`ExecutionResult`."""
        from repro.core.engine import collect_execution_result

        self.check_complete()
        return collect_execution_result(self.world, self.runtime,
                                        self.scheduler, self.processor,
                                        self.optimizer, self.wrappers,
                                        self.main.value, trace=trace)


class LiveQueryEngine:
    """Runs one query with one strategy against live async sources.

    The exact engine stack of :class:`repro.core.engine.QueryEngine` —
    same DQO / DQS / DQP, same mediator, same telemetry — but the world
    is built on an :class:`AsyncioKernel` and the sources are
    :class:`LiveWrapper` instances, so response times are wall-clock and
    arrival order is genuinely unpredictable.

    ``sources`` maps every source relation of the plan to a *factory*
    returning a fresh :data:`BatchSource` (factories, because one
    engine run consumes the stream).

    The live observability plane is opt-in per run:

    * ``serve_port`` (an int, 0 for ephemeral) starts an
      :class:`~repro.observability.server.ObservabilityServer` next to
      the run — ``/metrics``, ``/healthz`` and ``/stream`` answer for
      the duration of the run, fed by a fresh snapshot on every sampler
      tick.  The bound server is exposed as :attr:`server` while the run
      is in flight.
    * ``flight_dump`` arms a :class:`FlightRecorder` (and, with
      ``stall_after`` / ``deadline``, a :class:`StallWatchdog`): a run
      that crashes, wedges, or overruns its deadline leaves a loadable
      post-mortem at that path instead of nothing.
    * ``span_dump`` arms the causal span recorder (wall-clock spans on
      this backend) and writes the JSON + chrome-trace export there when
      the run ends — success or failure.
    """

    def __init__(self, catalog: Any, qep: Any, policy: Any,
                 sources: Mapping[str, Callable[[], BatchSource]],
                 params: Optional[SimulationParameters] = None,
                 seed: int = 0, trace: bool = False,
                 serve_port: Optional[int] = None,
                 serve_host: str = "127.0.0.1",
                 flight_dump: Optional[Union[str, Path]] = None,
                 flight_capacity: int = 2048,
                 span_dump: Optional[Union[str, Path]] = None,
                 stall_after: Optional[float] = None,
                 deadline: Optional[float] = None,
                 on_serve: Optional[Callable[[ObservabilityServer], None]] = None,
                 memory_bytes: Optional[int] = None,
                 broker: Optional[Any] = None):
        from repro.plan.validation import validate_qep

        self.catalog = catalog
        self.qep = qep
        self.policy = policy
        self.params = params if params is not None else SimulationParameters()
        self.seed = seed
        self.trace = trace
        #: per-query budget override (None: the configured default).
        self.memory_bytes = memory_bytes
        #: optional :class:`~repro.resources.broker.MemoryBroker` to draw
        #: the query's lease from — the same resource-governance plane as
        #: the simulator backend, bound to this run's AsyncioKernel.
        self.broker = broker
        validate_qep(qep)
        self.sources = dict(sources)
        missing = set(qep.source_relations()) - set(self.sources)
        if missing:
            raise ConfigurationError(
                f"no live source for relation(s): {sorted(missing)}")
        if (stall_after is not None or deadline is not None) \
                and flight_dump is None:
            raise ConfigurationError(
                "stall_after/deadline need a flight_dump path to dump to")
        self.serve_port = serve_port
        self.serve_host = serve_host
        self.flight_dump = Path(flight_dump) if flight_dump is not None else None
        self.flight_capacity = flight_capacity
        self.span_dump = Path(span_dump) if span_dump is not None else None
        self.stall_after = stall_after
        self.deadline = deadline
        self.on_serve = on_serve
        #: live-plane handles, populated for the duration of :meth:`run`.
        self.server: Optional[ObservabilityServer] = None
        self.publisher: Optional[MetricsPublisher] = None
        self.recorder: Optional[FlightRecorder] = None

    def _attach_flight(self, world: Any) -> FlightRecorder:
        """Arm the flight recorder and hook it into the telemetry feeds."""
        recorder = FlightRecorder(capacity=self.flight_capacity)
        world.telemetry.flight = recorder
        world.telemetry.audit.on_record = lambda record: recorder.record(
            ENTRY_DECISION, record.time, name=record.kind,
            subject=record.subject)
        world.telemetry.stalls.on_record = lambda interval: recorder.record(
            ENTRY_STALL, interval.ended, cause=interval.cause,
            duration=interval.duration)
        return recorder

    async def run(self) -> Any:
        """Execute once on the asyncio backend; returns ExecutionResult."""
        from repro.core.runtime import World

        kernel = AsyncioKernel()
        world = World(self.params, seed=self.seed, trace=self.trace,
                      kernel=kernel, memory_bytes=self.memory_bytes,
                      broker=self.broker)
        recorder = None
        if self.flight_dump is not None:
            recorder = self.recorder = self._attach_flight(world)
        if self.span_dump is not None and world.telemetry.spans is None:
            # Arm the recorder before the DQP is built so its compiled
            # hook table includes the span callables.
            from repro.observability.spans import SpanRecorder
            world.telemetry.spans = SpanRecorder(kernel)
        publisher = None
        if self.serve_port is not None:
            publisher = self.publisher = MetricsPublisher()
            self.server = ObservabilityServer(
                publisher, host=self.serve_host, port=self.serve_port).start()
            if self.on_serve is not None:
                self.on_serve(self.server)

        query = QueryRun(kernel, world, self.qep, self.policy, self.sources,
                         name="engine")
        main = query.start()

        def _snapshot() -> Any:
            return query.snapshot()

        def _on_sample(sample: Any) -> None:
            snapshot = _snapshot()
            if recorder is not None:
                recorder.record(ENTRY_SAMPLE, sample.time,
                                memory_used=sample.memory_used_bytes)
                recorder.latest_snapshot = snapshot
            if publisher is not None:
                publisher.publish(snapshot)

        # Note: an empty FlightRecorder is falsy (it has __len__), so the
        # identity checks here are load-bearing.
        on_sample = (_on_sample if recorder is not None
                     or publisher is not None else None)
        if world.telemetry.sampling:
            world.telemetry.start_sampler(world.memory, world.cm,
                                          on_sample=on_sample)
            main.add_callback(lambda _event: world.telemetry.stop_sampler())
        if publisher is not None:
            publisher.publish(_snapshot())  # valid scrape before first tick

        watchdog = None
        run_task = asyncio.ensure_future(kernel.run(until_event=main))
        if recorder is not None and (self.stall_after is not None
                                     or self.deadline is not None):
            loop = asyncio.get_running_loop()

            def _abort(reason: str, path: Path) -> None:
                loop.call_soon_threadsafe(run_task.cancel)

            recorder.record(ENTRY_PHASE, kernel.now, name="run-start")
            watchdog = StallWatchdog(recorder, self.flight_dump,
                                     stall_after=self.stall_after,
                                     deadline=self.deadline, on_fire=_abort)
            watchdog.start()

        try:
            try:
                await run_task
            except asyncio.CancelledError:
                if watchdog is not None and watchdog.fired_reason is not None:
                    raise SimulationError(
                        f"live run aborted by watchdog "
                        f"({watchdog.fired_reason}); flight recorder "
                        f"dumped to {self.flight_dump}") from None
                raise

            query.check_complete()
            if recorder is not None:
                recorder.record(ENTRY_PHASE, kernel.now, name="run-end")
        except BaseException as exc:
            if recorder is not None and watchdog is not None \
                    and watchdog.fired_reason is not None:
                pass  # the watchdog already dumped with its own reason
            elif recorder is not None and self.flight_dump is not None \
                    and not isinstance(exc, asyncio.CancelledError):
                recorder.latest_snapshot = _snapshot()
                recorder.dump(self.flight_dump, reason="crash",
                              error=repr(exc))
            raise
        finally:
            if watchdog is not None:
                watchdog.stop()
            if self.span_dump is not None \
                    and world.telemetry.spans is not None:
                # Written on success *and* failure, like the flight dump.
                world.telemetry.spans.write_json(self.span_dump)
            query.detach()
            if publisher is not None:
                publisher.publish(_snapshot())  # final state for /stream
                publisher.close()
            if self.server is not None:
                self.server.stop()
                self.server = None

        return query.result(trace=self.trace)
