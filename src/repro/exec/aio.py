"""The wall-clock execution backend on top of :mod:`asyncio`.

:class:`AsyncioKernel` drives the *same* generator processes as the
virtual-time :class:`repro.sim.engine.Simulator` — same events, same
``yield`` protocol, same (priority, insertion-order) tie-break for
events that fall due together — but time is real: timeouts sleep on the
asyncio event loop and external :mod:`asyncio` tasks (live sources) may
trigger kernel events at any moment.

Semantics compared to the simulator:

* ``now`` is seconds since ``run`` first started (wall clock).  While a
  batch of already-due events drains, ``now`` is frozen at the latest
  due deadline, so zero-delay event chains share one logical timestamp
  and their relative order is exactly the simulator's.
* ``run`` is a coroutine.  With neither ``until`` nor ``until_event``
  it returns when the event heap drains (the simulator's semantic);
  with ``until_event`` it keeps waiting for externally triggered events
  until that event has been processed — the mode engines use, since a
  live source can wake an otherwise-idle kernel at any time.
* Determinism is *per timing*: given identical arrival timings the
  interleaving is identical.  Real sources do not give identical
  timings — that is the point of this backend.
"""

from __future__ import annotations

import asyncio
import heapq
from typing import Optional

from repro.common.errors import SimulationError
from repro.exec.core import KernelBase, SimEvent

#: drain at most this many due events before yielding to the asyncio
#: loop, so live feeder tasks are never starved by long callback chains.
_DRAIN_QUANTUM = 64


class AsyncioKernel(KernelBase):
    """Real-time kernel: a deadline heap serviced between real sleeps."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[tuple[float, int, int, SimEvent]] = []
        self._sequence = 0
        self._processed_events = 0
        self._now = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._origin: Optional[float] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._stop_requested = False

    @property
    def now(self) -> float:  # type: ignore[override]
        """Seconds since ``run`` first started (0.0 before that)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed since construction."""
        return self._processed_events

    @property
    def wall_now(self) -> float:
        """Real elapsed seconds since ``run`` first started.

        ``now`` is the *dispatch* clock: it only advances when events
        fire, so between events (an idle kernel waiting on live
        sources) it reports the time of the last dispatch.  Callers
        timestamping external arrivals — the service stamping a
        submission that came in over HTTP — need the real clock, or an
        idle gap before the arrival is billed to its latency.
        """
        if self._loop is not None and self._origin is not None:
            return max(self._now, self._wall())
        return self._now

    # -- shutdown ------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask a running :meth:`run` to return at the next dispatch
        boundary (clean shutdown hook for daemon/worker hosts).

        Already-due events that were popped keep their callbacks; nothing
        in flight is interrupted — the loop simply stops picking up new
        work and returns.  Idempotent; a no-op once ``run`` returned.
        """
        self._stop_requested = True
        if self._wakeup is not None:
            self._wakeup.set()

    def request_stop_threadsafe(self) -> None:
        """Thread-safe :meth:`request_stop` (callable off the loop)."""
        loop = self._loop
        if loop is not None:
            loop.call_soon_threadsafe(self.request_stop)
        else:
            self._stop_requested = True

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._sequence += 1
        heapq.heappush(self._heap,
                       (self._now + delay, priority, self._sequence, event))
        if self._wakeup is not None:
            # Wake the run loop: a feeder task may schedule mid-sleep.
            self._wakeup.set()

    # -- running ---------------------------------------------------------
    def _wall(self) -> float:
        assert self._loop is not None and self._origin is not None
        return self._loop.time() - self._origin

    async def _sleep(self, seconds: Optional[float]) -> None:
        """Sleep until ``seconds`` elapse or something new is scheduled."""
        assert self._wakeup is not None
        self._wakeup.clear()
        try:
            await asyncio.wait_for(self._wakeup.wait(), timeout=seconds)
        except asyncio.TimeoutError:
            pass

    async def run(self, until: Optional[float] = None,
                  until_event: Optional[SimEvent] = None) -> None:
        """Drive events in real time; a coroutine, unlike the simulator.

        ``until`` bounds the run in kernel seconds.  ``until_event``
        keeps the kernel alive through empty-heap moments (waiting for
        live sources) until that event has been processed.
        """
        if self._loop is not None:
            raise SimulationError("AsyncioKernel.run() is not reentrant")
        self._loop = asyncio.get_running_loop()
        # Align the wall clock with any pre-run scheduling done at now=0.
        self._origin = self._loop.time() - self._now
        self._wakeup = asyncio.Event()
        try:
            drained = 0
            while True:
                if self._stop_requested:
                    break
                if until_event is not None and until_event.processed:
                    break
                if until is not None and self._now >= until:
                    break
                while self._heap and self._heap[0][3].cancelled:
                    heapq.heappop(self._heap)
                if not self._heap:
                    if until_event is None:
                        break
                    await self._sleep(None)
                    self._now = max(self._now, self._wall())
                    continue
                deadline = self._heap[0][0]
                wall = self._wall()
                if deadline > wall:
                    pause = deadline - wall
                    if until is not None:
                        pause = min(pause, max(0.0, until - wall))
                    await self._sleep(pause)
                    self._now = max(self._now, self._wall())
                    drained = 0
                    continue
                _, _priority, _seq, event = heapq.heappop(self._heap)
                # Freeze `now` at the due deadline while draining, so
                # same-deadline chains keep simulator-identical order.
                self._now = max(self._now, deadline)
                self._processed_events += 1
                event._run_callbacks()
                drained += 1
                if drained >= _DRAIN_QUANTUM:
                    drained = 0
                    await asyncio.sleep(0)
        finally:
            self._loop = None
            self._origin = None
            self._wakeup = None
            self._stop_requested = False
        self._raise_unhandled_failures()

    def __repr__(self) -> str:
        return (f"AsyncioKernel(now={self._now:g}, "
                f"pending={len(self._heap)})")
