"""Backend-neutral event machinery and generator processes.

Every execution backend (the virtual-time :class:`repro.sim.engine.Simulator`,
the wall-clock :class:`repro.exec.aio.AsyncioKernel`) drives the same
three building blocks:

* :class:`SimEvent` — a one-shot event that can succeed (with a value)
  or fail (with an exception), and on which processes can wait;
* :class:`Process` — a Python generator driven by the kernel; each
  ``yield``-ed event suspends the process until the event triggers;
* :class:`KernelBase` — the factory surface shared by all backends.

What a backend adds is *when* a scheduled event's callbacks run: a
virtual-time kernel pops a heap and jumps the clock, a real-time kernel
sleeps.  Both order events scheduled for the same deadline by
``(priority, insertion order)``, so process interleaving is identical
across backends given identical event timings.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.common.errors import SimulationError

# Scheduling priorities: lower runs first among events at the same time.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

_PENDING = "pending"
_TRIGGERED = "triggered"  # scheduled on the heap, callbacks not yet run
_PROCESSED = "processed"  # callbacks have run

#: the generator type driven by :class:`Process`.
ProcessGenerator = Generator["SimEvent", Any, Any]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries an arbitrary payload describing why the
    process was interrupted (e.g. a replanning request).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event.

    Callbacks registered via :meth:`add_callback` run when the kernel
    processes the event.  A process that ``yield``-s an event is resumed
    with :attr:`value` (or has the failure exception thrown into it).
    """

    #: a cancelled event's callbacks never run; kernels drop its heap
    #: entry lazily when they reach it (see :meth:`Timeout.cancel`).
    cancelled = False

    def __init__(self, sim: "KernelBase", name: str = ""):
        self.sim = sim
        self.name = name
        self.value: Any = None
        self.failure: Optional[BaseException] = None
        self._state = _PENDING
        self._callbacks: list[Callable[["SimEvent"], None]] = []

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self.triggered and self.failure is None

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "SimEvent":
        """Mark the event successful and schedule its callbacks now."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self.value = value
        self._state = _TRIGGERED
        self.sim._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "SimEvent":
        """Mark the event failed; waiters get ``exception`` thrown into them."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self.failure = exception
        self._state = _TRIGGERED
        self.sim._schedule(self, delay=0.0, priority=priority)
        return self

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback runs
        immediately (synchronously).
        """
        if self._state == _PROCESSED:
            callback(self)
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["SimEvent"], None]) -> None:
        """Unregister a callback previously added (no-op if absent)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {self._state}>"


class Timeout(SimEvent):
    """An event that succeeds after a fixed delay (virtual or wall-clock)."""

    def __init__(self, sim: "KernelBase", delay: float, value: Any = None,
                 priority: int = PRIORITY_NORMAL):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Constant name: timeouts are the single most-minted event kind
        # (one per CPU slice), and the f-string was measurable there.
        # The delay is still on the instance for debugging.
        super().__init__(sim, name="timeout")
        self.delay = delay
        self.value = value
        self._state = _TRIGGERED
        sim._schedule(self, delay=delay, priority=priority)

    def cancel(self) -> None:
        """Withdraw the timeout before it occurs: callbacks never run.

        The heap entry is discarded lazily when the kernel reaches it, so
        a waiter that arms a guard timeout on every wait (the DQP stall
        loop) does not keep the kernel alive — or the heap growing — for
        ``delay`` seconds after every wait ends early.
        """
        if self._state == _PROCESSED:
            raise SimulationError(f"cannot cancel elapsed timeout {self!r}")
        self.cancelled = True


class AnyOf(SimEvent):
    """Succeeds as soon as *any* child event succeeds.

    The value is a dict mapping each already-triggered child to its value.
    A failing child fails the composite.
    """

    def __init__(self, sim: "KernelBase", events: Iterable[SimEvent]):
        super().__init__(sim, name="any_of")
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf needs at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, child: SimEvent) -> None:
        if self.triggered:
            return
        if child.failure is not None:
            self.fail(child.failure)
        else:
            self.succeed(self._collect())

    def _collect(self) -> dict[SimEvent, Any]:
        # `processed` (callbacks ran), not `triggered`: a Timeout is born
        # scheduled/triggered but has not *occurred* until processed.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def detach(self) -> None:
        """Unhook :meth:`_on_child` from children that never triggered.

        A composite whose winner has been seen keeps its pending children
        alive through their callback lists; a waiter that re-waits on the
        same children (the DQP stall loop) calls this to stop the dead
        composites from accumulating.
        """
        for event in self.events:
            if not event.triggered:
                event.remove_callback(self._on_child)


class AllOf(SimEvent):
    """Succeeds when *all* child events have succeeded.

    The value is a dict mapping every child to its value.  The first
    failing child fails the composite.
    """

    def __init__(self, sim: "KernelBase", events: Iterable[SimEvent]):
        super().__init__(sim, name="all_of")
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            raise SimulationError("AllOf needs at least one event")
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, child: SimEvent) -> None:
        if self.triggered:
            return
        if child.failure is not None:
            self.fail(child.failure)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev.value for ev in self.events})


class Process(SimEvent):
    """A generator driven by the kernel.

    The process is itself an event: it succeeds with the generator's return
    value when the generator ends, or fails with the exception that escaped
    it.  Other processes can therefore ``yield`` a process to join it.
    """

    def __init__(self, sim: "KernelBase", generator: ProcessGenerator,
                 name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: set to True by anyone who handles this process's failure; an
        #: un-defused failure is re-raised by the kernel's ``run``.
        self.defused = False
        self._waiting_on: Optional[SimEvent] = None
        # Bootstrap: resume the generator at time `now` via an urgent event.
        start = SimEvent(sim, name=f"start:{self.name}")
        start.succeed(priority=PRIORITY_URGENT)
        start.add_callback(self._resume)
        self._waiting_on = start

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The process stops waiting on its current event (that event itself
        is unaffected and may still trigger later).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._resume)
            self._waiting_on = None
        wakeup = SimEvent(self.sim, name=f"interrupt:{self.name}")
        wakeup.failure = Interrupt(cause)
        wakeup._state = _TRIGGERED
        self.sim._schedule(wakeup, delay=0.0, priority=PRIORITY_URGENT)
        wakeup.add_callback(self._resume)
        self._waiting_on = wakeup

    def _resume(self, event: SimEvent) -> None:
        self._waiting_on = None
        try:
            if event.failure is not None:
                if isinstance(event, Process):
                    event.defused = True
                target = self.generator.throw(event.failure)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An uncaught interrupt terminates the process "normally" with
            # the interrupt as its value marker; anything else is an error.
            self.fail(exc)
            return
        except BaseException as exc:  # noqa: BLE001 - forward real failures
            self.fail(exc)
            self.sim._note_failed_process(self)
            return
        if not isinstance(target, SimEvent):
            self.generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded {target!r}, expected a SimEvent"))
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError(
                "yielded event belongs to a different kernel"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class KernelBase:
    """Event factories and failure accounting shared by every backend.

    A backend supplies two things on top of this base: a clock
    (:attr:`now`) and :meth:`_schedule`, which arranges for an event's
    callbacks to run ``delay`` seconds from now, ordering equal-deadline
    events by ``(priority, insertion order)``.
    """

    #: current time in seconds (virtual or since-start wall clock).
    now: float

    def __init__(self) -> None:
        self._failed_processes: list[Process] = []

    # -- event factories ---------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """A fresh pending event."""
        return SimEvent(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value=value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start driving ``generator`` as a process (begins at current time)."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        """Composite event: first child to succeed."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        """Composite event: all children succeeded."""
        return AllOf(self, events)

    # -- backend contract --------------------------------------------------
    def _schedule(self, event: SimEvent, delay: float, priority: int) -> None:
        raise NotImplementedError

    # -- failure accounting ------------------------------------------------
    def _note_failed_process(self, process: Process) -> None:
        self._failed_processes.append(process)

    def _raise_unhandled_failures(self) -> None:
        for process in self._failed_processes:
            if not process.defused and process.failure is not None:
                raise SimulationError(
                    f"process {process.name!r} died: {process.failure!r}"
                ) from process.failure
