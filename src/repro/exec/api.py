"""The :class:`Kernel` protocol — what policy code may assume.

Everything the scheduling layers (DQO / DQS / DQP, runtime, mediator,
wrappers, observability) use from an execution backend is captured here:
a clock, event/timeout factories, generator processes and composite
waits.  ``run`` is the *driver's* entry point, not the policy layers'
— the virtual-time backend blocks until the event heap drains, the
asyncio backend returns an awaitable — so only engine front-ends call
it, and they know which backend they built.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Protocol, runtime_checkable

from repro.exec.core import AllOf, AnyOf, Process, ProcessGenerator, SimEvent, Timeout


@runtime_checkable
class Kernel(Protocol):
    """Structural contract of an execution backend.

    Implementations: :class:`repro.sim.engine.Simulator` (deterministic
    virtual time) and :class:`repro.exec.aio.AsyncioKernel` (wall clock
    over :mod:`asyncio`).  Policy code annotates kernels with this
    protocol and never imports a concrete backend.
    """

    #: current time in seconds.  Virtual-time backends jump it from event
    #: to event; real-time backends report seconds since ``run`` started.
    now: float

    def event(self, name: str = "") -> SimEvent:
        """A fresh pending one-shot event."""
        ...

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds ``delay`` seconds from now."""
        ...

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Drive ``generator`` as a process starting at the current time."""
        ...

    def any_of(self, events: Iterable[SimEvent]) -> AnyOf:
        """Composite event: succeeds with the first child that succeeds."""
        ...

    def all_of(self, events: Iterable[SimEvent]) -> AllOf:
        """Composite event: succeeds once all children have succeeded."""
        ...

    def run(self, until: Optional[float] = None) -> Any:
        """Drive events; semantics are backend-specific (see class docs)."""
        ...
