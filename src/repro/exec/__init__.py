"""Backend-neutral execution kernel.

The scheduling layers of this reproduction (DQO / DQS / DQP, the
mediator, the wrappers) are *policy*; how tuples actually arrive and how
time advances is *mechanism*.  This package defines the mechanism
contract:

* :class:`Kernel` — the structural protocol every backend satisfies:
  ``now``, ``event()``, ``timeout()``, ``process()``, ``any_of()``,
  ``all_of()``, ``run()`` plus the ``PRIORITY_*`` constants;
* :class:`KernelBase` + the event machinery (:class:`SimEvent`,
  :class:`Timeout`, :class:`AnyOf`, :class:`AllOf`, :class:`Process`,
  :class:`Interrupt`) shared by every backend;
* :class:`repro.sim.engine.Simulator` — the deterministic virtual-time
  backend (events at equal times processed in (priority, insertion)
  order; seeded runs are bit-identical);
* :class:`repro.exec.aio.AsyncioKernel` — the wall-clock backend that
  drives the *same* generator processes on top of :mod:`asyncio`
  (imported lazily; see :mod:`repro.exec.aio`).

Policy code imports event types and priorities from here and annotates
kernels as :class:`Kernel`; it must never import a concrete backend.
"""

from repro.exec.api import Kernel
from repro.exec.core import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    AllOf,
    AnyOf,
    Interrupt,
    KernelBase,
    Process,
    SimEvent,
    Timeout,
)

#: preferred backend-neutral alias for :class:`SimEvent`.
Event = SimEvent

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Kernel",
    "KernelBase",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "Process",
    "SimEvent",
    "Timeout",
]
