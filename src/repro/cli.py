"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's tables/figures and runs ad-hoc executions without
writing any code:

* ``table1`` — print the simulation parameters (Table 1);
* ``plan`` — print the Figure 5 QEP and its pipeline chains;
* ``fig6`` — the one-slowed-relation sweep (``--relation F`` for Fig. 7);
* ``fig8`` — the uniform-slowdown gain sweep;
* ``run`` — one execution of one strategy, with optional slow sources;
* ``metrics`` — run one strategy with telemetry and export the metrics,
  stall breakdown and decision log (JSON / CSV / Prometheus text);
* ``trace`` — run one strategy traced and write the Chrome timeline plus
  the decision audit log;
* ``live`` — SEQ vs DSE against *real* jittery asyncio sources on the
  wall-clock execution backend; ``--serve`` exposes /metrics, /healthz
  and an SSE /stream while the run is in flight, ``--flight-dump`` (with
  ``--stall-after`` / ``--deadline``) arms the flight-recorder watchdog;
* ``serve`` — the always-on multi-tenant query service: one shared
  wall-clock kernel accepting JSON submissions over HTTP, with
  per-tenant priorities/quotas, a governed memory pool, SSE progress
  streaming and graceful SIGTERM drain;
* ``submit`` — POST one (or ``--count`` many) submissions to a serving
  daemon; ``--wait`` polls until they finish;
* ``watch`` — tail a daemon's SSE snapshot stream as JSON lines;
* ``top`` — terminal dashboard attached to a serving live run or a
  ``repro serve`` daemon (or ``--replay`` of a flight-recorder dump);
* ``multiquery`` — the Section 6 throughput experiment; ``--global-memory``
  sweeps mediator-wide memory pools (with ``--admission`` picking the
  queueing policy) to expose the throughput-vs-response-time tradeoff of
  resource governance;
* ``bench`` — the canonical performance suite; writes ``BENCH_PR10.json``
  and gates regressions against a committed baseline via ``--compare``;
* ``explain`` — record one run's causal span tree and print the
  attributed critical path (``--vs STRATEGY`` diffs two runs,
  ``--bench-diff`` two committed bench reports, ``--from`` a saved
  span export).

Every sweep accepts ``--csv PATH`` to export the series for plotting,
and ``--jobs N`` / ``--cache-dir DIR`` / ``--no-cache`` to shard the
independent runs across worker processes and serve repeats from the
content-addressed run cache (results are identical to a serial run).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Optional, Sequence

from repro.config import SimulationParameters
from repro.core.engine import QueryEngine
from repro.core.strategies import lower_bound, make_policy
from repro.experiments import (
    figure5_workload,
    format_table,
    run_multiquery_experiment,
    run_slowdown_experiment,
    run_uniform_slowdown_experiment,
)
from repro.experiments.report import write_csv
from repro.experiments.slowdown import STRATEGIES
from repro.wrappers.delays import UniformDelay


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dynamic Query Scheduling in Data "
                    "Integration Systems' (ICDE 2000)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1 (simulation parameters)")

    plan = sub.add_parser("plan", help="print the Figure 5 QEP")
    _common(plan)

    fig6 = sub.add_parser("fig6", help="one slowed-down relation sweep "
                                       "(Figure 6; use --relation F for "
                                       "Figure 7)")
    _common(fig6)
    fig6.add_argument("--relation", default="A",
                      help="relation to slow down (default A)")
    fig6.add_argument("--retrieval-times", type=float, nargs="+",
                      default=[2.0, 4.0, 6.0, 8.0],
                      help="total retrieval times of the slowed relation (s)")
    fig6.add_argument("--csv", help="write the series to this CSV file")
    _parallel(fig6)

    fig8 = sub.add_parser("fig8", help="uniform slowdown gain sweep (Figure 8)")
    _common(fig8)
    fig8.add_argument("--waits-us", type=float, nargs="+",
                      default=[5, 10, 15, 20, 35, 50, 80, 120],
                      help="per-tuple waits in µs")
    fig8.add_argument("--csv", help="write the series to this CSV file")
    _parallel(fig8)

    run = sub.add_parser("run", help="run one strategy once")
    _common(run)
    run.add_argument("--strategy", default="DSE",
                     help="SEQ, MA, DSE, DSE-ND or DPHJ (default DSE)")
    run.add_argument("--slow", action="append", default=[],
                     metavar="REL:FACTOR",
                     help="slow one relation by a factor of w_min "
                          "(repeatable), e.g. --slow F:10")
    run.add_argument("--error", action="append", default=[],
                     metavar="JOIN:FACTOR",
                     help="inject a cardinality estimation error on a "
                          "join's actual output (repeatable), e.g. "
                          "--error J1:3")
    run.add_argument("--reopt", action="store_true",
                     help="let the DQO swap misoriented pending joins")
    run.add_argument("--trace", action="store_true",
                     help="print the scheduler's trace events")
    run.add_argument("--timeline", action="store_true",
                     help="print the per-fragment schedule")
    run.add_argument("--chrome-trace", metavar="PATH",
                     help="write a chrome://tracing timeline JSON")
    run.add_argument("--trace-out", metavar="PATH",
                     help="write the Chrome/Perfetto trace JSON to PATH "
                          "(implies collecting trace events)")
    run.add_argument("--spans-out", metavar="PATH",
                     help="record the causal span tree and write its JSON "
                          "export (plus a .trace.json chrome sibling) to "
                          "PATH; analyze it with `repro explain --from`")

    metrics = sub.add_parser(
        "metrics", help="run one strategy with telemetry and export "
                        "metrics/stalls/decisions")
    _common(metrics)
    metrics.add_argument("--strategy", default="DSE",
                         help="SEQ, MA, DSE or DSE-ND (default DSE)")
    metrics.add_argument("--slow", action="append", default=[],
                         metavar="REL:FACTOR",
                         help="slow one relation by a factor of w_min "
                              "(repeatable), e.g. --slow F:10")
    metrics.add_argument("--sample-interval", type=float, default=0.05,
                         help="virtual-time sampling interval in seconds "
                              "(0 disables periodic samples)")
    metrics.add_argument("--json", metavar="PATH",
                         help="write only the JSON export to PATH")
    metrics.add_argument("--csv", metavar="PATH",
                         help="write only the CSV export to PATH")
    metrics.add_argument("--prom", metavar="PATH",
                         help="write only the Prometheus text export to PATH")
    metrics.add_argument("--out", default="telemetry",
                         help="directory receiving all three exports when no "
                              "single format is selected (default ./telemetry)")
    metrics.add_argument("--from", dest="from_path", metavar="PATH",
                         help="skip the run: load a previously written "
                              "metrics JSON export and summarize/re-export it")

    trace = sub.add_parser(
        "trace", help="run one strategy traced; write the Chrome timeline "
                      "and print the decision audit log")
    _common(trace)
    trace.add_argument("--strategy", default="DSE",
                       help="SEQ, MA, DSE or DSE-ND (default DSE)")
    trace.add_argument("--slow", action="append", default=[],
                       metavar="REL:FACTOR",
                       help="slow one relation by a factor of w_min")
    trace.add_argument("--out", default="trace.json",
                       help="Chrome trace output path (default ./trace.json)")
    trace.add_argument("--from", dest="from_path", metavar="PATH",
                       help="skip the run: load a previously written Chrome "
                            "trace (or flight-recorder dump) and summarize it")

    anatomy = sub.add_parser(
        "anatomy", help="side-by-side response-time anatomy of strategies")
    _common(anatomy)
    anatomy.add_argument("--strategies", nargs="+",
                         default=["SEQ", "MA", "DSE"])
    anatomy.add_argument("--slow", action="append", default=[],
                         metavar="REL:FACTOR",
                         help="slow one relation by a factor of w_min")

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every table/figure into a directory")
    _common(reproduce)
    reproduce.add_argument("--outdir", default="results",
                           help="output directory (default ./results)")
    _parallel(reproduce)

    live = sub.add_parser(
        "live", help="run strategies against real asyncio sources "
                     "(wall-clock backend)")
    live.add_argument("--scale", type=float, default=0.02,
                      help="workload scale factor (default 0.02 — live runs "
                           "are wall-clock, keep them small)")
    live.add_argument("--seed", type=int, default=7)
    live.add_argument("--strategy", action="append", dest="strategies",
                      default=None, metavar="NAME",
                      help="strategy to run, repeatable "
                           "(default: SEQ and DSE)")
    live.add_argument("--slow", action="append", default=None,
                      metavar="REL:FACTOR",
                      help="slow one live source by this factor "
                           "(repeatable; default A:10)")
    live.add_argument("--wait-us", type=float, default=200.0,
                      help="mean per-tuple wait of a normal source in µs "
                           "(default 200)")
    live.add_argument("--jitter", type=float, default=1.0,
                      help="delay jitter in [0, 1]: each batch waits "
                           "count * w with w uniform in "
                           "[(1-jitter)*mean, (1+jitter)*mean] (default 1)")
    live.add_argument("--timeline", action="store_true",
                      help="print the per-fragment schedule of each run")
    live.add_argument("--assert-dse-not-slower", action="store_true",
                      help="exit non-zero unless DSE's response time is "
                           "<= SEQ's (CI smoke check; requires both "
                           "strategies to run)")
    live.add_argument("--serve", type=int, metavar="PORT", default=None,
                      help="serve /metrics, /healthz and /stream on this "
                           "port while each run is in flight (0 = ephemeral; "
                           "the bound address is printed)")
    live.add_argument("--sample-interval", type=float, default=0.1,
                      help="wall-clock telemetry sampling interval in "
                           "seconds; live snapshots are published on each "
                           "tick (default 0.1, 0 disables)")
    live.add_argument("--flight-dump", metavar="PATH", default=None,
                      help="arm the flight recorder; a crashed, stalled or "
                           "overrunning run dumps its last moments to PATH")
    live.add_argument("--stall-after", type=float, metavar="S", default=None,
                      help="abort + dump when no batch completes for S wall "
                           "seconds (needs --flight-dump)")
    live.add_argument("--deadline", type=float, metavar="S", default=None,
                      help="abort + dump when one run exceeds S wall seconds "
                           "(needs --flight-dump)")
    live.add_argument("--span-dump", metavar="PATH", default=None,
                      help="record each run's causal span tree on the "
                           "wall-clock backend and write the export to PATH "
                           "(the strategy name is suffixed when several "
                           "strategies run)")

    serve = sub.add_parser(
        "serve", help="run the always-on multi-tenant query service "
                      "(JSON submissions over HTTP, SSE progress, "
                      "graceful SIGTERM drain)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9100,
                       help="HTTP port (0 = ephemeral; the bound address "
                            "is printed)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--global-memory", default=None, metavar="SIZE",
                       help="mediator-wide memory pool, e.g. 64M (suffixes "
                            "K/M/G; 'inf'/'none' = ungoverned). Governed "
                            "pools queue submissions through the admission "
                            "controller")
    serve.add_argument("--admission", default="priority",
                       choices=["fifo", "priority", "none"],
                       help="admission ordering for a governed pool "
                            "(default priority — tenants with higher "
                            "priority admit first)")
    serve.add_argument("--tenant", action="append", dest="tenants",
                       default=None,
                       metavar="NAME[:PRI[:MAX_ACTIVE[:MEMORY]]]",
                       help="declare a tenant with admission priority and "
                            "quotas, repeatable (e.g. gold:2, "
                            "batch:0:8:64M); unknown tenants are "
                            "auto-registered at priority 0 unless "
                            "--strict-tenants")
    serve.add_argument("--strict-tenants", action="store_true",
                       help="refuse submissions from undeclared tenants")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="execution-plane worker processes (default 1 = "
                            "run queries in-process). N > 1 shards the "
                            "machine memory pool into N static carve-outs "
                            "and dispatches least-loaded-first with work "
                            "stealing")
    serve.add_argument("--worker-window", type=int, default=None,
                       metavar="W",
                       help="in-flight submissions per worker before "
                            "backlog queues coordinator-side where it is "
                            "stealable (default 4; needs --workers > 1)")
    serve.add_argument("--publish-interval", type=float, default=1.0,
                       help="seconds between /stream snapshot frames "
                            "(default 1)")
    serve.add_argument("--flight-dump", metavar="PATH", default=None,
                       help="arm the machine-level flight recorder; the "
                            "drain flushes it to PATH")
    serve.add_argument("--span-dump", metavar="PATH", default=None,
                       help="record the machine-wide causal span tree and "
                            "write it to PATH at drain")
    serve.add_argument("--archive-dir", metavar="DIR", default=None,
                       help="write the durable telemetry archive (segmented "
                            "JSONL: outcomes, snapshots, decisions, span "
                            "summaries, SLO alerts) under DIR; query it "
                            "offline with `repro history`")
    serve.add_argument("--archive-segment", default="4M", metavar="SIZE",
                       help="rotate archive segments at this size "
                            "(default 4M; suffixes K/M/G)")
    serve.add_argument("--archive-retention", default="256M", metavar="SIZE",
                       help="delete the oldest sealed segments once the "
                            "archive exceeds this many bytes (default 256M)")
    serve.add_argument("--archive-retention-age", type=float,
                       default=7 * 24 * 3600.0, metavar="SECONDS",
                       help="delete sealed segments older than this "
                            "(default 7 days)")
    serve.add_argument("--slo", action="append", dest="slos", default=None,
                       metavar="TENANT:METRIC<=SECONDS@PERCENT%",
                       help="declare a per-tenant latency objective, "
                            "repeatable (e.g. gold:p99<=30s@99.5%%; tenant "
                            "'*' covers all traffic). Burn-rate alerts "
                            "surface on /slo, the SSE stream and the "
                            "archive")
    serve.add_argument("--slo-fast-window", type=float, default=300.0,
                       metavar="SECONDS",
                       help="fast burn-rate window (default 300s @ burn "
                            "14.4)")
    serve.add_argument("--slo-slow-window", type=float, default=3600.0,
                       metavar="SECONDS",
                       help="slow burn-rate window (default 3600s @ burn "
                            "6.0)")

    history = sub.add_parser(
        "history", help="query a service telemetry archive offline "
                        "(written by `repro serve --archive-dir`)")
    history.add_argument("archive_dir", metavar="DIR",
                         help="the archive directory to read")
    history.add_argument("--since", type=float, default=None,
                         metavar="EPOCH",
                         help="ignore records before this epoch time "
                              "(values <= 0 are relative to now: "
                              "--since -3600 = the last hour)")
    history.add_argument("--until", type=float, default=None,
                         metavar="EPOCH",
                         help="ignore records after this epoch time "
                              "(<= 0 relative to now)")
    history.add_argument("--tenant", default=None,
                         help="only this tenant's outcomes")
    history.add_argument("--slo", action="append", dest="slos", default=None,
                         metavar="SPEC",
                         help="objectives for --slo-report (same grammar "
                              "as `repro serve --slo`)")
    history.add_argument("--slo-report", action="store_true",
                         help="print per-objective compliance over the "
                              "selected range (needs --slo)")
    history.add_argument("--alerts", action="store_true",
                         help="also list archived SLO alert transitions")
    history.add_argument("--diff", nargs=2, metavar=("WINDOW_A", "WINDOW_B"),
                         default=None,
                         help="compare two time windows START..END "
                              "(epoch or <=0-relative seconds, e.g. "
                              "--diff -7200..-3600 -3600..0)")
    history.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of text")

    submit = sub.add_parser(
        "submit", help="POST query submissions to a serving daemon")
    submit.add_argument("--connect", default="127.0.0.1:9100",
                        metavar="URL", help="the daemon's address "
                                            "(default 127.0.0.1:9100)")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--strategy", default="DSE")
    submit.add_argument("--scale", type=float, default=0.02)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--wait-us", type=float, default=200.0,
                        help="mean per-tuple source wait in µs (default 200)")
    submit.add_argument("--jitter", type=float, default=1.0)
    submit.add_argument("--slow", action="append", default=None,
                        metavar="REL:FACTOR",
                        help="slow one source by this factor (repeatable)")
    submit.add_argument("--priority", type=float, default=None,
                        help="admission priority override "
                             "(default: the tenant's priority)")
    submit.add_argument("--memory", default=None, metavar="SIZE",
                        help="declared working set, e.g. 8M (default: the "
                             "engine's query_memory_bytes)")
    submit.add_argument("--count", type=int, default=1,
                        help="submissions to send (default 1; seeds "
                             "increment per submission)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until every submission finished and "
                             "print the outcomes")

    watch = sub.add_parser(
        "watch", help="tail a daemon's SSE snapshot stream as JSON lines")
    watch.add_argument("--connect", default="127.0.0.1:9100", metavar="URL",
                       help="the daemon's address (default 127.0.0.1:9100)")
    watch.add_argument("--frames", type=int, default=0,
                       help="stop after this many frames (0 = until the "
                            "stream ends)")

    top = sub.add_parser(
        "top", help="terminal dashboard for a live run or daemon "
                    "(attach to `repro live --serve` or `repro serve`)")
    top.add_argument("--connect", default="127.0.0.1:9100", metavar="HOST:PORT",
                     help="the /stream endpoint of a serving live run or "
                          "`repro serve` daemon (default 127.0.0.1:9100; "
                          "URLs are accepted)")
    top.add_argument("--replay", metavar="DUMP", default=None,
                     help="render the final snapshot of a flight-recorder "
                          "dump instead of connecting")
    top.add_argument("--once", action="store_true",
                     help="print one frame to stdout and exit (no curses)")
    top.add_argument("--interval", type=float, default=0.5,
                     help="screen refresh interval in seconds (default 0.5)")

    multi = sub.add_parser("multiquery",
                           help="concurrent queries (Section 6 future work)")
    _common(multi)
    multi.add_argument("--queries", type=int, default=4)
    multi.add_argument("--inter-arrival", type=float, default=0.0,
                       help="seconds between query arrivals")
    multi.add_argument("--strategies", nargs="+", default=["SEQ", "DSE"])
    multi.add_argument("--waits-us", type=float, nargs="+", default=[20, 100])
    multi.add_argument("--global-memory", nargs="+", default=None,
                       metavar="SIZE",
                       help="mediator-wide memory pools to sweep, e.g. "
                            "--global-memory 128K 1M inf (suffixes K/M/G; "
                            "'inf' or 'none' = ungoverned). Governed points "
                            "queue queries through the admission controller "
                            "and re-plan on budget grows")
    multi.add_argument("--admission", default="fifo",
                       choices=["fifo", "priority", "none"],
                       help="admission policy for governed pools "
                            "(default fifo)")
    multi.add_argument("--query-memory", default=None, metavar="SIZE",
                       help="initial per-query budget (default: "
                            "the configured query_memory_bytes)")
    multi.add_argument("--min-memory", default=None, metavar="SIZE",
                       help="minimum working set a query must be granted "
                            "before it is admitted")
    multi.add_argument("--max-memory", default=None, metavar="SIZE",
                       help="largest budget a query's lease may grow to "
                            "when the broker offers reclaimed memory")
    multi.add_argument("--csv", help="write the series to this CSV file")
    _parallel(multi)

    bench = sub.add_parser(
        "bench", help="run the canonical performance suite and write the "
                      "benchmark report JSON")
    bench.add_argument("--out", default="BENCH_PR10.json",
                       help="report path (default ./BENCH_PR10.json)")
    bench.add_argument("--jobs", type=int, default=0,
                       help="worker processes for the parallel sweep case "
                            "(default 0 = one per core)")
    bench.add_argument("--scale", type=float, default=0.2,
                       help="workload scale of the bench cases (default 0.2)")
    bench.add_argument("--retrieval-times", type=float, nargs="+",
                       default=[2.0, 5.0, 8.0],
                       help="sweep points of the fig6 bench case")
    bench.add_argument("--repetitions", type=int, default=1)
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--best-of", type=int, default=3,
                       help="repeats of the micro cases; best is kept")
    bench.add_argument("--service-submissions", type=int, default=300,
                       help="submissions of the service_loadtest case "
                            "(default 300; the committed baseline uses "
                            "the full 10k run)")
    bench.add_argument("--service-rate", type=float, default=200.0,
                       help="open-loop arrival rate of the service case "
                            "in submissions/s (default 200)")
    bench.add_argument("--service-workers", type=int, default=2,
                       help="worker processes of the "
                            "service_loadtest_workers case (default 2; "
                            "0 or 1 skips the case)")
    bench.add_argument("--assert-speedup", type=float, metavar="X",
                       help="exit non-zero unless the parallel sweep is at "
                            "least X times faster than serial (CI gate)")
    bench.add_argument("--assert-worker-speedup", type=float, metavar="X",
                       help="exit non-zero unless the multi-worker service "
                            "qps is at least X times the single-kernel qps "
                            "(skipped on hosts with < 4 cores)")
    bench.add_argument("--compare", metavar="BASELINE.json", default=None,
                       help="compare the fresh report against this committed "
                            "report and exit non-zero on regression")
    bench.add_argument("--max-regression", default="10%", metavar="PCT",
                       help="regression budget for --compare, e.g. '10%%' "
                            "(default 10%%; CI uses a looser budget because "
                            "absolute rates are host-relative)")

    explain = sub.add_parser(
        "explain", help="record one run's span tree and print the "
                        "attributed critical path (SEQ-vs-DSE diffs, "
                        "bench-report diffs, saved span exports)")
    _common(explain)
    explain.add_argument("--strategy", default="DSE",
                         help="SEQ, MA, DSE or DSE-ND (default DSE)")
    explain.add_argument("--vs", metavar="STRATEGY", default=None,
                         help="also run this strategy on identical sources "
                              "and print the per-category span diff "
                              "(e.g. --strategy DSE --vs SEQ)")
    explain.add_argument("--slow", action="append", default=[],
                         metavar="REL:FACTOR",
                         help="slow one relation by a factor of w_min "
                              "(repeatable), e.g. --slow C:10")
    explain.add_argument("--segments", type=int, default=8,
                         help="longest critical-path segments to list "
                              "(default 8)")
    explain.add_argument("--spans-out", metavar="PATH",
                         help="also write the recorded span export (plus "
                              "its .trace.json chrome sibling) to PATH")
    explain.add_argument("--from", dest="from_path", metavar="PATH",
                         help="skip the run: explain a span export written "
                              "by --spans-out / `repro run --spans-out` / "
                              "`repro live --span-dump`")
    explain.add_argument("--bench-diff", nargs=2, metavar=("BASE", "CURRENT"),
                         default=None,
                         help="skip the run: diff two committed bench "
                              "report JSONs case by case")

    return parser


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (1.0 = paper size)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--repetitions", type=int, default=1)


def _parallel(parser: argparse.ArgumentParser) -> None:
    """Sharding/caching options shared by every sweep subcommand."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for independent runs "
                             "(default 1 = serial, 0 = one per core)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed run cache directory; "
                             "repeated runs are served from disk")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass --cache-dir (recompute everything)")


def _runner_from(args: argparse.Namespace) -> "SweepRunner":
    from repro.parallel.engine import SweepRunner
    try:
        return SweepRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                           use_cache=not args.no_cache)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "table1": _cmd_table1,
        "plan": _cmd_plan,
        "fig6": _cmd_fig6,
        "fig8": _cmd_fig8,
        "run": _cmd_run,
        "metrics": _cmd_metrics,
        "trace": _cmd_trace,
        "anatomy": _cmd_anatomy,
        "live": _cmd_live,
        "serve": _cmd_serve,
        "history": _cmd_history,
        "submit": _cmd_submit,
        "watch": _cmd_watch,
        "top": _cmd_top,
        "multiquery": _cmd_multiquery,
        "reproduce": _cmd_reproduce,
        "bench": _cmd_bench,
        "explain": _cmd_explain,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


# -- commands ---------------------------------------------------------------

def _cmd_table1(args: argparse.Namespace) -> int:
    params = SimulationParameters()
    print(format_table(["Parameter", "Value"], params.table1_rows(),
                       title="Table 1: Simulation parameters"))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    workload = figure5_workload(scale=args.scale)
    print("Query:", workload.tree.render())
    print()
    print(workload.qep.describe())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters()
    if args.relation not in workload.relation_names:
        raise SystemExit(f"unknown relation {args.relation!r}; choose from "
                         f"{workload.relation_names}")
    points = run_slowdown_experiment(
        workload, args.relation, list(args.retrieval_times), params,
        repetitions=args.repetitions, base_seed=args.seed,
        runner=_runner_from(args))
    headers = ["retrieval_s"] + STRATEGIES + ["LWB"]
    rows = [p.row() for p in points]
    figure = "Figure 7" if args.relation == "F" else "Figure 6"
    print(format_table(headers, rows,
                       title=f"{figure}: slowing {args.relation}"))
    if args.csv:
        print("wrote", write_csv(args.csv, headers, rows))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters()
    points = run_uniform_slowdown_experiment(
        workload, [w * 1e-6 for w in args.waits_us], params,
        repetitions=args.repetitions, base_seed=args.seed,
        runner=_runner_from(args))
    headers = ["w_min_us", "SEQ_s", "DSE_s", "gain_pct", "LWB_s"]
    rows = [p.row() for p in points]
    print(format_table(headers, rows, title="Figure 8: DSE gain vs w_min"))
    if args.csv:
        print("wrote", write_csv(args.csv, headers, rows))
    return 0


def _parse_slow(specs: list[str]) -> dict[str, float]:
    slow = {}
    for spec in specs:
        try:
            relation, factor = spec.split(":")
            slow[relation] = float(factor)
        except ValueError:
            raise SystemExit(f"bad --slow spec {spec!r}; expected REL:FACTOR")
    return slow


def _cmd_run(args: argparse.Namespace) -> int:
    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters().with_overrides(
        enable_reoptimization=args.reopt,
        telemetry_spans=bool(args.spans_out))
    slow = _parse_slow(args.slow)
    unknown = set(slow) - set(workload.relation_names)
    if unknown:
        raise SystemExit(f"unknown relation(s) in --slow: {sorted(unknown)}")
    errors = _parse_slow(args.error)  # same REL:FACTOR syntax
    waits = {name: params.w_min * slow.get(name, 1.0)
             for name in workload.relation_names}
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}
    collect_trace = args.trace or bool(args.trace_out)

    if args.strategy.upper() == "DPHJ":
        if args.spans_out:
            raise SystemExit("--spans-out needs the DQP engine; DPHJ "
                             "records no scheduling spans")
        from repro.core.symmetric import SymmetricHashJoinEngine
        result = SymmetricHashJoinEngine(
            workload.catalog, workload.tree, delays, params=params,
            seed=args.seed, trace=collect_trace).run()
        print(result.summary())
        print(f"LWB: {lower_bound(workload.qep, waits, params):.3f}s")
        if args.trace_out:
            from repro.experiments.trace_export import write_chrome_trace
            print("trace:", write_chrome_trace(args.trace_out, result))
        return 0

    qep = workload.qep
    if errors:
        from repro.common.errors import PlanError
        from repro.plan import build_qep
        try:
            qep = build_qep(workload.catalog, workload.tree,
                            actual_output_factors=errors)
        except PlanError as exc:
            raise SystemExit(str(exc)) from None
    engine = QueryEngine(workload.catalog, qep,
                         make_policy(args.strategy), delays, params=params,
                         seed=args.seed, trace=collect_trace)
    result = engine.run()
    print(result.summary())
    if result.reopt_opportunities:
        print("misestimates detected:", ", ".join(result.reopt_opportunities))
    if result.reopt_swaps:
        print("joins swapped:", ", ".join(result.reopt_swaps))
    print(f"LWB: {lower_bound(qep, waits, params):.3f}s")
    if args.timeline:
        print()
        print(result.render_timeline())
    if args.chrome_trace or args.trace_out:
        from repro.experiments.trace_export import write_chrome_trace
        for path in (args.chrome_trace, args.trace_out):
            if path:
                print("chrome trace:", write_chrome_trace(path, result))
    if args.spans_out and result.spans is not None:
        from repro.observability import write_spans_json
        print("spans:", write_spans_json(result.spans, args.spans_out))
    if args.trace and result.tracer is not None:
        print()
        for category in ["plan", "degrade", "mf-stop", "chain-complete",
                         "memory-split", "reopt-opportunity", "reopt-swap"]:
            for event in result.tracer.filter(category):
                print(event)
    return 0


def _run_with_telemetry(args: argparse.Namespace, sample_interval: float,
                        trace: bool):
    """One telemetry-enabled execution shared by ``metrics`` and ``trace``."""
    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters().with_overrides(
        telemetry_enabled=True,
        telemetry_sample_interval=sample_interval)
    slow = _parse_slow(args.slow)
    unknown = set(slow) - set(workload.relation_names)
    if unknown:
        raise SystemExit(f"unknown relation(s) in --slow: {sorted(unknown)}")
    waits = {name: params.w_min * slow.get(name, 1.0)
             for name in workload.relation_names}
    delays = {name: UniformDelay(wait) for name, wait in waits.items()}
    engine = QueryEngine(workload.catalog, workload.qep,
                         make_policy(args.strategy), delays, params=params,
                         seed=args.seed, trace=trace)
    return engine.run()


def _summarize_snapshot(snapshot: dict) -> None:
    """Print the run-level summary of a loaded metrics snapshot."""
    print(f"{snapshot['strategy']}: {snapshot['response_time']:.3f}s "
          f"({snapshot['result_tuples']} tuples, "
          f"stall {snapshot['stall_time']:.3f}s, "
          f"{len(snapshot['decisions'])} decisions, "
          f"{len(snapshot['metrics'])} metrics, "
          f"{len(snapshot['samples'])} samples)")
    if snapshot["stall_breakdown"]:
        print("stall breakdown:")
        for cause, seconds in sorted(snapshot["stall_breakdown"].items(),
                                     key=lambda item: (-item[1], item[0])):
            print(f"  {cause:<24} {seconds:.6f}s")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.common.errors import ConfigurationError
    from repro.observability import (
        load_metrics_json,
        telemetry_snapshot,
        write_metrics_csv,
        write_metrics_json,
        write_metrics_prometheus,
    )

    if args.from_path:
        try:
            snapshot = load_metrics_json(args.from_path)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _summarize_snapshot(snapshot)
        wrote = [writer(snapshot, path)
                 for path, writer in ((args.json, write_metrics_json),
                                      (args.csv, write_metrics_csv),
                                      (args.prom, write_metrics_prometheus))
                 if path]
        for path in wrote:
            print("wrote", path)
        return 0

    result = _run_with_telemetry(args, args.sample_interval, trace=False)
    print(result.summary())
    print("stall breakdown:")
    for cause, seconds in result.stall_by_cause().items():
        print(f"  {cause:<24} {seconds:.6f}s")
    if result.decisions:
        print(f"decisions ({len(result.decisions)}):")
        for record in result.decisions:
            print(" ", record)

    snapshot = telemetry_snapshot(result)
    explicit = [(args.json, write_metrics_json),
                (args.csv, write_metrics_csv),
                (args.prom, write_metrics_prometheus)]
    wrote = []
    if any(path for path, _ in explicit):
        for path, writer in explicit:
            if path:
                wrote.append(writer(snapshot, path))
    else:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        stem = f"metrics-{result.strategy.lower()}"
        wrote = [
            write_metrics_json(snapshot, out / f"{stem}.json"),
            write_metrics_csv(snapshot, out / f"{stem}.csv"),
            write_metrics_prometheus(snapshot, out / f"{stem}.prom"),
        ]
    for path in wrote:
        print("wrote", path)
    return 0


def _summarize_trace_file(path: str) -> int:
    """Summarize an existing Chrome trace or flight-recorder dump."""
    import json
    from collections import Counter
    from pathlib import Path

    from repro.common.errors import ConfigurationError
    from repro.observability import load_flight_dump

    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"error: trace file not found: {path}", file=sys.stderr)
        return 2
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: unreadable trace file {path}: {exc}", file=sys.stderr)
        return 2

    if isinstance(data, dict) and "entries" in data and "reason" in data:
        try:
            dump = load_flight_dump(path)  # validates version/layout
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        kinds = Counter(entry.kind for entry in dump["entries"])
        print(f"flight-recorder dump: reason={dump['reason']} "
              f"recorded={dump['recorded']} dropped={dump['dropped']}")
        for kind, count in kinds.most_common():
            print(f"  {kind:<10} {count}")
        if dump["entries"]:
            first, last = dump["entries"][0], dump["entries"][-1]
            print(f"  window: t={first.time:.3f}s .. t={last.time:.3f}s")
        return 0

    events = (data.get("traceEvents")
              if isinstance(data, dict) else data)
    if not isinstance(events, list):
        print(f"error: {path} is neither a Chrome trace nor a "
              f"flight-recorder dump", file=sys.stderr)
        return 2
    categories = Counter(event.get("cat", "?") for event in events
                         if event.get("ph") != "M")
    print(f"chrome trace: {len(events)} events")
    for category, count in categories.most_common(12):
        print(f"  {category:<20} {count}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.trace_export import write_chrome_trace

    if args.from_path:
        return _summarize_trace_file(args.from_path)

    result = _run_with_telemetry(args, sample_interval=0.0, trace=True)
    print(result.summary())
    if result.decisions:
        print(f"decisions ({len(result.decisions)}):")
        for record in result.decisions:
            print(" ", record)
    print("chrome trace:", write_chrome_trace(args.out, result))
    return 0


def _cmd_anatomy(args: argparse.Namespace) -> int:
    from repro.experiments.analysis import comparison_report
    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters()
    slow = _parse_slow(args.slow)
    unknown = set(slow) - set(workload.relation_names)
    if unknown:
        raise SystemExit(f"unknown relation(s) in --slow: {sorted(unknown)}")
    waits = {name: params.w_min * slow.get(name, 1.0)
             for name in workload.relation_names}
    results = {}
    for strategy in args.strategies:
        delays = {name: UniformDelay(wait) for name, wait in waits.items()}
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy(strategy), delays, params=params,
                             seed=args.seed)
        results[strategy] = engine.run()
    print(comparison_report(results,
                            title="Response-time anatomy (Figure 5 workload)"))
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    import asyncio
    import zlib

    import numpy as np

    from repro.common.errors import ConfigurationError, SimulationError
    from repro.exec.live import LiveQueryEngine, jittered_batches

    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters().with_overrides(
        telemetry_enabled=True,
        telemetry_sample_interval=max(0.0, args.sample_interval))
    slow = _parse_slow(args.slow if args.slow is not None else ["A:10"])
    unknown = set(slow) - set(workload.relation_names)
    if unknown:
        raise SystemExit(f"unknown relation(s) in --slow: {sorted(unknown)}")
    strategies = args.strategies if args.strategies else ["SEQ", "DSE"]
    if args.assert_dse_not_slower and not {"SEQ", "DSE"} <= {
            s.upper() for s in strategies}:
        raise SystemExit("--assert-dse-not-slower needs both SEQ and DSE "
                         "in --strategy")
    cards = {name: workload.catalog.relation(name).cardinality
             for name in workload.relation_names}
    base_wait = args.wait_us * 1e-6

    def sources():
        # Fresh factories per run; per-relation streams are seeded from
        # (seed, crc32(name)) so every strategy faces the same delays.
        def factory(rel: str):
            def make():
                rng = np.random.default_rng(
                    [args.seed, zlib.crc32(rel.encode())])
                return jittered_batches(
                    cards[rel], params.tuples_per_message,
                    base_wait * slow.get(rel, 1.0), rng, jitter=args.jitter)
            return make
        return {rel: factory(rel) for rel in workload.relation_names}

    slow_desc = ", ".join(f"{rel}x{factor:g}"
                          for rel, factor in sorted(slow.items())) or "none"
    print(f"live sources: scale={args.scale:g}, mean wait "
          f"{args.wait_us:g}µs/tuple, slow: {slow_desc}")
    results = {}
    for strategy in strategies:
        span_dump = args.span_dump
        if span_dump is not None and len(strategies) > 1:
            from pathlib import Path
            p = Path(span_dump)
            span_dump = p.with_name(
                f"{p.stem}-{strategy.lower()}{p.suffix or '.json'}")
        try:
            engine = LiveQueryEngine(
                workload.catalog, workload.qep, make_policy(strategy),
                sources(), params=params, seed=args.seed,
                serve_port=args.serve, flight_dump=args.flight_dump,
                stall_after=args.stall_after, deadline=args.deadline,
                span_dump=span_dump,
                on_serve=lambda server: print(
                    f"observability plane: {server.url}/metrics "
                    f"| /healthz | /stream", flush=True))
        except ConfigurationError as exc:
            raise SystemExit(str(exc)) from None
        try:
            result = asyncio.run(engine.run())
        except SimulationError as exc:
            if engine.recorder is not None \
                    and "watchdog" in str(exc):
                print(f"FAIL: {exc}")
                return 1
            raise
        results[strategy.upper()] = result
        print(result.summary())
        stalls = ", ".join(f"{cause} {seconds:.3f}s" for cause, seconds
                           in result.stall_by_cause().items())
        print(f"  stalls: {stalls or 'none'}")
        if span_dump is not None:
            print(f"  spans: {span_dump}")
        if args.timeline:
            print(result.render_timeline())

    if "SEQ" in results and "DSE" in results:
        seq, dse = results["SEQ"], results["DSE"]
        if seq.response_time > 0:
            gain = 100.0 * (1 - dse.response_time / seq.response_time)
            print(f"DSE vs SEQ: {gain:+.1f}% "
                  f"({seq.response_time:.3f}s -> {dse.response_time:.3f}s)")
        if args.assert_dse_not_slower and (dse.response_time
                                           > seq.response_time):
            print("FAIL: DSE was slower than SEQ on the live backend")
            return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError
    from repro.observability.top import (
        render_top,
        replay_snapshot,
        run_top,
        stream_snapshots,
    )

    try:
        if args.replay:
            snapshot = replay_snapshot(args.replay)
            if snapshot is None:
                print("error: the dump holds no live snapshot (the run "
                      "had no sampler tick before it ended)",
                      file=sys.stderr)
                return 2
            print("\n".join(render_top(snapshot)))
            return 0
        if args.once:
            # Alert frames can interleave with snapshots; --once wants
            # the first renderable snapshot, not an alert.
            snapshot = next(
                (frame for frame in stream_snapshots(args.connect)
                 if frame.get("kind") != "alert"), None)
            print("\n".join(render_top(snapshot)))
            return 0
        return run_top(args.connect, interval=args.interval)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.common.errors import ConfigurationError
    from repro.resources import TenantSpec
    from repro.service import QueryService, ServiceServer
    from repro.service.slo import parse_slo_specs

    try:
        tenants = [TenantSpec.parse(text) for text in (args.tenants or [])]
        pool = (_parse_size(args.global_memory, "--global-memory")
                if args.global_memory is not None else None)
        archive_options = None
        if args.archive_dir is not None:
            segment = _parse_size(args.archive_segment, "--archive-segment")
            retention = _parse_size(args.archive_retention,
                                    "--archive-retention")
            if segment is None or retention is None:
                raise SystemExit("--archive-segment/--archive-retention "
                                 "must be finite sizes")
            archive_options = {
                "max_segment_bytes": segment,
                "retention_bytes": retention,
                "retention_age_s": args.archive_retention_age,
            }
        slos = parse_slo_specs(args.slos) if args.slos else None
        slo_options = {"fast_window_s": args.slo_fast_window,
                       "slow_window_s": args.slo_slow_window}
        service = QueryService(
            seed=args.seed, global_memory_bytes=pool,
            admission=args.admission, tenants=tenants,
            strict_tenants=args.strict_tenants,
            publish_interval_s=args.publish_interval,
            flight_dump=args.flight_dump, span_dump=args.span_dump,
            archive_dir=args.archive_dir, archive_options=archive_options,
            slos=slos, slo_options=slo_options if slos else None,
            workers=args.workers, worker_window=args.worker_window)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None

    async def _serve() -> None:
        await service.start()
        server = ServiceServer(service, host=args.host,
                               port=args.port).start()
        loop = asyncio.get_running_loop()

        def _on_signal(name: str) -> None:
            print(f"{name}: draining ({service.active} in flight; "
                  f"new submissions get 503)", flush=True)
            service.drain()

        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, _on_signal, sig.name)
        print(f"serving on {server.url}", flush=True)
        print(f"  endpoints: POST /submit /drain | GET /metrics /healthz "
              f"/slo /stream /submissions", flush=True)
        if args.workers > 1:
            print(f"  execution plane: {args.workers} worker processes "
                  f"(work-stealing, window {service.backend.window})",
                  flush=True)
        if service.archive is not None:
            print(f"  archiving telemetry under "
                  f"{service.archive.directory} "
                  f"(query with `repro history`)", flush=True)
        try:
            await service.wait_drained()
        finally:
            await service.stop()
            server.stop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(sig)
        print(f"drained: {service.completed} completed, "
              f"{service.failed} failed, {service.rejected} rejected",
              flush=True)

    asyncio.run(_serve())
    return 0


def _submit_one(host: str, port: int, payload: "dict[str, Any]",
                timeout: float = 10.0) -> "tuple[int, dict[str, Any]]":
    import http.client
    import json as json_mod

    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("POST", "/submit", json_mod.dumps(payload),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        body = response.read().decode("utf-8", errors="replace")
        try:
            data = json_mod.loads(body)
        except json_mod.JSONDecodeError:
            data = {"error": body.strip() or f"HTTP {response.status}"}
        return response.status, data
    finally:
        conn.close()


def _cmd_submit(args: argparse.Namespace) -> int:
    import http.client
    import json as json_mod
    import time as time_mod

    from repro.common.errors import ConfigurationError
    from repro.observability.top import _parse_endpoint

    try:
        host, port = _parse_endpoint(args.connect)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    slow = _parse_slow(args.slow) if args.slow else {}
    base = {"tenant": args.tenant, "strategy": args.strategy,
            "scale": args.scale, "wait_us": args.wait_us,
            "jitter": args.jitter}
    if slow:
        base["slow"] = slow
    if args.priority is not None:
        base["priority"] = args.priority
    if args.memory is not None:
        base["memory_bytes"] = _parse_size(args.memory, "--memory")

    ids = []
    try:
        for index in range(args.count):
            status, data = _submit_one(
                host, port, dict(base, seed=args.seed + index))
            if status != 202:
                print(f"error: HTTP {status}: "
                      f"{data.get('error', 'submission refused')}",
                      file=sys.stderr)
                return 1
            ids.append(data["id"])
            print(f"{data['id']} {data['tenant']} {data['state']}")

        if not args.wait:
            return 0
        failed = 0
        for submission_id in ids:
            while True:
                conn = http.client.HTTPConnection(host, port, timeout=10.0)
                try:
                    conn.request("GET", f"/submissions/{submission_id}")
                    response = conn.getresponse()
                    body = response.read()
                finally:
                    conn.close()
                if response.status != 200:
                    print(f"error: {submission_id}: HTTP {response.status} "
                          f"(finished submissions age out of the daemon)",
                          file=sys.stderr)
                    failed += 1
                    break
                record = json_mod.loads(body)
                if record["state"] in ("done", "failed"):
                    break
                time_mod.sleep(0.2)
            else:
                continue
            if response.status != 200:
                continue
            if record["state"] == "failed":
                failed += 1
                print(f"{submission_id} failed: {record.get('error')}")
            else:
                outcome = record.get("outcome") or {}
                print(f"{submission_id} done: "
                      f"{outcome.get('result_tuples', 0)} tuples in "
                      f"{record['latency_s']:.3f}s "
                      f"(admission wait {record['admission_wait']:.3f}s)")
        return 1 if failed else 0
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach {host}:{port}: {exc} "
              f"(is `repro serve` running?)", file=sys.stderr)
        return 2


def _cmd_watch(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.common.errors import ConfigurationError
    from repro.observability.top import (
        stream_snapshots_reconnect,
        worker_transitions,
    )

    def _notice(delay: float, attempt: int) -> None:
        print(f"stream dropped; reconnecting in {delay:.1f}s "
              f"(attempt {attempt})", file=sys.stderr, flush=True)

    frames = 0
    previous: "dict[str, Any] | None" = None
    try:
        # fail_fast: a never-reachable endpoint is one crisp error (exit
        # 2), not a 20-second silent retry ladder.
        for snapshot in stream_snapshots_reconnect(args.connect,
                                                   on_reconnect=_notice,
                                                   fail_fast=True):
            if snapshot.get("kind") == "alert":
                # Alerts go to stderr so `watch | jq` pipelines over the
                # snapshot stream stay clean; the JSON line still has
                # everything (objective, window, burn rate, state).
                print(f"ALERT {json_mod.dumps(snapshot, sort_keys=True)}",
                      file=sys.stderr, flush=True)
                continue
            # Worker up/down transitions ride stderr for the same
            # reason: the stdout stream stays pure snapshot JSON.
            for notice in worker_transitions(previous, snapshot):
                print(f"WORKER {notice}", file=sys.stderr, flush=True)
            previous = snapshot
            print(json_mod.dumps(snapshot, sort_keys=True), flush=True)
            frames += 1
            if args.frames and frames >= args.frames:
                return 0
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.common.errors import ConfigurationError
    from repro.service.history import (
        diff_windows,
        load_alerts,
        load_outcomes,
        resolve_time,
        slo_report,
        summarize_outcomes,
    )
    from repro.service.slo import parse_slo_specs

    try:
        if args.diff is not None:
            diff = diff_windows(args.archive_dir, args.diff[0],
                                args.diff[1], tenant=args.tenant)
            if args.json:
                print(json_mod.dumps(diff, indent=2, sort_keys=True))
            else:
                _print_history_diff(diff)
            return 0

        since = resolve_time(args.since)
        until = resolve_time(args.until)
        records, reader = load_outcomes(args.archive_dir, since=since,
                                        until=until, tenant=args.tenant)
        if reader.skipped_lines or reader.skipped_segments:
            print(f"warning: skipped {reader.skipped_lines} corrupt "
                  f"line(s) and {reader.skipped_segments} unreadable "
                  f"segment(s)", file=sys.stderr)
        summary = summarize_outcomes(records)
        report: "dict[str, Any]" = {
            "archive": args.archive_dir,
            "segments_read": reader.segments_read,
            "skipped_lines": reader.skipped_lines,
            "skipped_segments": reader.skipped_segments,
            "summary": summary,
        }
        if args.slo_report:
            if not args.slos:
                print("error: --slo-report needs at least one --slo "
                      "objective", file=sys.stderr)
                return 2
            report["slo"] = slo_report(records, parse_slo_specs(args.slos))
        if args.alerts:
            report["alerts"] = load_alerts(args.archive_dir, since=since,
                                           until=until)
        if args.json:
            print(json_mod.dumps(report, indent=2, sort_keys=True))
        else:
            _print_history_text(report)
        return 0
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _print_history_text(report: "dict[str, Any]") -> None:
    summary = report["summary"]
    latency = summary["latency"]
    print(f"archive {report['archive']}: {summary['outcomes']} outcomes "
          f"({summary['completed']} ok, {summary['failed']} failed) "
          f"over {summary['span_s']:.1f}s "
          f"[{report['segments_read']} segment(s)]")
    print(f"  latency p50={latency['p50_s'] * 1e3:.1f}ms "
          f"p95={latency['p95_s'] * 1e3:.1f}ms "
          f"p99={latency['p99_s'] * 1e3:.1f}ms "
          f"max={latency['max_s'] * 1e3:.1f}ms  "
          f"throughput={summary['throughput_qps']:.1f} q/s")
    for name, tenant in summary["tenants"].items():
        print(f"  tenant {name:<12} {tenant['completed']:>6} done  "
              f"p50={tenant['p50_s'] * 1e3:.1f}ms "
              f"p99={tenant['p99_s'] * 1e3:.1f}ms")
    for objective in report.get("slo", []):
        status = "MET" if objective["met"] else "MISSED"
        print(f"  slo {objective['objective']:<28} {status}  "
              f"compliance={objective['compliance'] * 100:.3f}% "
              f"({objective['bad']}/{objective['events']} bad, "
              f"budget spent {objective['budget_spent'] * 100:.0f}%)")
    for alert in report.get("alerts", []):
        print(f"  alert t={alert['t']:.3f} {alert['state']:<9} "
              f"{alert['objective']} [{alert['window']}] "
              f"burn={alert['burn_rate']:.1f}")


def _print_history_diff(report: "dict[str, Any]") -> None:
    for label in ("window_a", "window_b"):
        window = report[label]
        summary = window["summary"]
        print(f"{label}: [{window['since']:.3f} .. {window['until']:.3f}] "
              f"{summary['outcomes']} outcomes, "
              f"{summary['throughput_qps']:.1f} q/s")
    print(f"{'METRIC':<16} {'A':>12} {'B':>12} {'DELTA':>12} {'RATIO':>8}")
    for metric, delta in report["deltas"].items():
        ratio = (f"{delta['ratio']:.3f}" if delta["ratio"] is not None
                 else "-")
        print(f"{metric:<16} {delta['a']:>12.4f} {delta['b']:>12.4f} "
              f"{delta['delta']:>+12.4f} {ratio:>8}")


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import generate_all
    out = generate_all(args.outdir, scale=args.scale,
                       repetitions=args.repetitions, seed=args.seed,
                       progress=lambda step: print(f"[{step}]", flush=True),
                       runner=_runner_from(args))
    print(f"report and CSV series written to {out.resolve()}")
    return 0


def _parse_size(text: str, flag: str) -> Optional[int]:
    """Parse a memory size like ``512``, ``128K``, ``2M``, ``1G``.

    ``inf``/``none`` mean "no pool" (ungoverned) and return ``None``.
    """
    lowered = text.strip().lower()
    if lowered in ("inf", "none", "unbounded"):
        return None
    multiplier = 1
    for suffix, factor in (("k", 1024), ("m", 1024 ** 2), ("g", 1024 ** 3)):
        if lowered.endswith(suffix):
            lowered, multiplier = lowered[:-1], factor
            break
    try:
        value = int(float(lowered) * multiplier)
    except ValueError:
        raise SystemExit(
            f"bad {flag} size {text!r}; expected bytes with an optional "
            f"K/M/G suffix, or 'inf'") from None
    if value <= 0:
        raise SystemExit(f"{flag} must be positive, got {text!r}")
    return value


def _cmd_multiquery(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError

    workload = figure5_workload(scale=args.scale)
    pools = ([_parse_size(text, "--global-memory")
              for text in args.global_memory]
             if args.global_memory else None)
    governed = pools is not None and any(p is not None for p in pools)
    params = SimulationParameters().with_overrides(
        # Governed runs exercise the full resource-governance plane:
        # leases shrink on release, grow offers go out, and running
        # queries re-plan degraded chains when their budget grows.
        dynamic_budget_replanning=governed)
    try:
        points = run_multiquery_experiment(
            workload, list(args.strategies),
            [w * 1e-6 for w in args.waits_us], params,
            num_queries=args.queries, inter_arrival=args.inter_arrival,
            seed=args.seed, runner=_runner_from(args),
            global_memories=pools, admission=args.admission,
            memory_bytes=_parse_size(args.query_memory, "--query-memory")
            if args.query_memory else None,
            min_memory_bytes=_parse_size(args.min_memory, "--min-memory")
            if args.min_memory else None,
            max_memory_bytes=_parse_size(args.max_memory, "--max-memory")
            if args.max_memory else None)
    except ConfigurationError as exc:
        # e.g. a min working set that exceeds the pool: a usage error,
        # not an engine bug — report it like one.
        raise SystemExit(str(exc)) from None
    headers = ["strategy", "w_us", "pool", "mean_resp_s", "makespan_s",
               "queries_per_s", "cpu", "queued", "mean_wait_s"]
    rows = [p.row() for p in points]
    print(format_table(headers, rows,
                       title=f"{args.queries} concurrent queries"))
    if args.csv:
        print("wrote", write_csv(args.csv, headers, rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError
    from repro.parallel.bench import run_bench_suite, write_bench_json
    from repro.parallel.trend import (
        compare_reports,
        load_bench_report,
        parse_percent,
    )

    if args.jobs < 0:
        raise SystemExit(f"jobs must be >= 1 (or 0 = auto), got {args.jobs}")
    baseline = None
    if args.compare:
        try:  # fail fast, before spending minutes on the suite
            baseline = load_bench_report(args.compare)
            budget = parse_percent(args.max_regression)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    report = run_bench_suite(
        jobs=args.jobs, scale=args.scale,
        retrieval_times=list(args.retrieval_times),
        repetitions=args.repetitions, seed=args.seed,
        best_of=args.best_of,
        service_submissions=args.service_submissions,
        service_rate=args.service_rate,
        service_workers=args.service_workers,
        progress=lambda step: print(f"[{step}]", flush=True))
    derived = report["derived"]
    print(f"dqp batch loop : {derived['dqp_batches_per_sec']:12,.0f} "
          f"batches/s")
    print(f"kernel dispatch: {derived['kernel_events_per_sec']:12,.0f} "
          f"events/s")
    speedup = derived["parallel_speedup"]
    if speedup is None:
        print(f"parallel sweep : n/a (single-core host, "
              f"--jobs {report['config']['jobs']})")
    else:
        print(f"parallel sweep : {speedup:.2f}x speedup at "
              f"--jobs {report['config']['jobs']} "
              f"({report['host']['cpu_count']} cores)")
    print(f"warm cache     : {100 * derived['warm_cache_fraction']:.1f}% of "
          f"serial wall-clock")
    print(f"service        : {derived['service_qps']:,.1f} q/s sustained "
          f"(p50 {1e3 * derived['service_p50_latency_s']:.1f}ms, "
          f"p99 {1e3 * derived['service_p99_latency_s']:.1f}ms)")
    worker_speedup = derived.get("service_worker_speedup")
    if worker_speedup is not None:
        print(f"worker pool    : {worker_speedup:.2f}x service qps at "
              f"--service-workers {report['config']['service_workers']}")
    elif report["config"]["service_workers"] > 1:
        print(f"worker pool    : n/a ({report['host']['cpu_count']}-core "
              f"host; needs >= 4 cores for a meaningful ratio)")
    print("wrote", write_bench_json(report, args.out))
    if args.assert_speedup is not None:
        if speedup is None:
            print("skipping --assert-speedup: single-core host cannot "
                  "demonstrate a parallel speedup")
        elif speedup < args.assert_speedup:
            print(f"FAIL: parallel speedup {speedup:.2f}x "
                  f"< required {args.assert_speedup:g}x")
            return 1
    if args.assert_worker_speedup is not None:
        if worker_speedup is None:
            print("skipping --assert-worker-speedup: needs the "
                  "multi-worker case and a >= 4-core host")
        elif worker_speedup < args.assert_worker_speedup:
            print(f"FAIL: worker-pool speedup {worker_speedup:.2f}x "
                  f"< required {args.assert_worker_speedup:g}x")
            return 1
    if baseline is not None:
        comparisons = compare_reports(baseline, report, budget)
        print(f"compare vs {args.compare} "
              f"(budget {100 * budget:g}%):")
        regressed = []
        for comparison in comparisons:
            flag = ""
            if comparison.regressed(budget):
                regressed.append(comparison)
                flag = "  << REGRESSION"
            print("  " + "  ".join(comparison.row()) + flag)
        if regressed:
            print(f"FAIL: {len(regressed)} metric(s) regressed more than "
                  f"{100 * budget:g}% vs {args.compare}")
            return 1
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.common.errors import ConfigurationError
    from repro.observability import (
        explain_spans,
        format_bench_diff,
        format_explanation,
        format_explanation_diff,
        load_spans,
        write_spans_json,
    )

    if args.bench_diff:
        from repro.parallel.trend import load_bench_report
        base_path, current_path = args.bench_diff
        try:
            base = load_bench_report(base_path)
            current = load_bench_report(current_path)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_bench_diff(base, current,
                                base_label=base_path,
                                current_label=current_path))
        return 0

    if args.from_path:
        try:
            spans = load_spans(args.from_path)
            explanation = explain_spans(spans)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_explanation(explanation, top_segments=args.segments))
        return 0

    workload = figure5_workload(scale=args.scale)
    params = SimulationParameters().with_overrides(telemetry_spans=True)
    slow = _parse_slow(args.slow)
    unknown = set(slow) - set(workload.relation_names)
    if unknown:
        raise SystemExit(f"unknown relation(s) in --slow: {sorted(unknown)}")
    waits = {name: params.w_min * slow.get(name, 1.0)
             for name in workload.relation_names}

    def run_one(strategy: str):
        # Fresh delay objects per run so both strategies face identical
        # sources (the per-wrapper RNG streams are seeded by the engine).
        delays = {name: UniformDelay(wait) for name, wait in waits.items()}
        engine = QueryEngine(workload.catalog, workload.qep,
                             make_policy(strategy), delays, params=params,
                             seed=args.seed)
        result = engine.run()
        return result, explain_spans(result.spans,
                                     strategy=result.strategy)

    result, explanation = run_one(args.strategy)
    print(format_explanation(explanation, top_segments=args.segments))
    if args.spans_out and result.spans is not None:
        print()
        print("spans:", write_spans_json(result.spans, args.spans_out))
    if args.vs:
        _, other = run_one(args.vs)
        print()
        print(format_explanation(other, top_segments=args.segments))
        print()
        print(format_explanation_diff(explanation, other))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
