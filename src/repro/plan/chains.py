"""Dependency analysis over pipeline chains.

Blocking edges induce the *blocks* relation of Section 4.1: chain ``b``
blocks chain ``p`` when ``b``'s terminal mat fills the build side of a
join that ``p`` probes.  ``ancestors(p)`` is the set of chains blocking
``p``; ``ancestors*`` its transitive closure.  A chain is C-schedulable
once every chain in ``ancestors*(p)`` has terminated.
"""

from __future__ import annotations

from repro.common.errors import PlanError
from repro.plan.qep import QEP


def direct_ancestors(qep: QEP) -> dict[str, set[str]]:
    """Map each chain name to the names of chains that directly block it."""
    feeders = {chain.feeds.name: chain.name
               for chain in qep.chains if chain.feeds is not None}
    ancestors: dict[str, set[str]] = {chain.name: set() for chain in qep.chains}
    for chain in qep.chains:
        for join in chain.probe_joins():
            try:
                ancestors[chain.name].add(feeders[join.name])
            except KeyError:
                raise PlanError(
                    f"chain {chain.name!r} probes join {join.name!r} "
                    "but no chain feeds it") from None
    return ancestors


def ancestor_closure(qep: QEP) -> dict[str, set[str]]:
    """Transitive closure of :func:`direct_ancestors` (``ancestors*``)."""
    direct = direct_ancestors(qep)
    closure: dict[str, set[str]] = {}

    def resolve(name: str, trail: tuple[str, ...]) -> set[str]:
        if name in closure:
            return closure[name]
        if name in trail:
            cycle = " -> ".join(trail + (name,))
            raise PlanError(f"cyclic blocking dependency: {cycle}")
        result = set(direct[name])
        for parent in direct[name]:
            result |= resolve(parent, trail + (name,))
        closure[name] = result
        return result

    for chain in qep.chains:
        resolve(chain.name, ())
    return closure


def iterator_order(qep: QEP) -> list[str]:
    """The sequential (iterator-model) execution order of the chains.

    This is simply the QEP's stored chain order, after checking that it is
    a valid topological order of the blocking dependencies — every chain's
    ancestors appear before it.
    """
    closure = ancestor_closure(qep)
    seen: set[str] = set()
    for chain in qep.chains:
        missing = closure[chain.name] - seen
        if missing:
            raise PlanError(
                f"chain {chain.name!r} appears before its ancestor(s) "
                f"{sorted(missing)} in the QEP order")
        seen.add(chain.name)
    return [chain.name for chain in qep.chains]
