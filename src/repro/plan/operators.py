"""Physical operators and join specifications.

Operators are *descriptions*: the runtime charges their CPU/memory costs
during simulation, but operators themselves hold only static structure and
cardinality estimates.  All operators are unary at this level — the binary
hash join appears as a :class:`MatOp` (hash-table build, the blocking
side) in the producer chain and a :class:`ProbeOp` in the consumer chain,
mirroring how the paper splits a QEP at blocking edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import PlanError


@dataclass
class JoinSpec:
    """One hash join of the QEP.

    ``estimated_build_cardinality`` / ``estimated_output_cardinality`` come
    from the optimizer's annotations; the matching ``actual_*`` values are
    what the simulation really produces (they differ when the workload
    injects estimation error).  ``fanout`` is the number of result tuples
    produced per probe-input tuple.
    """

    name: str
    build_relations: tuple[str, ...]
    probe_relations: tuple[str, ...]
    #: product of the selectivities of the join edges crossing between the
    #: build and probe sides; per probe tuple, the expected number of
    #: matches is ``crossing_selectivity * build_cardinality``.
    crossing_selectivity: float
    estimated_build_cardinality: float = 0.0
    estimated_probe_cardinality: float = 0.0
    estimated_output_cardinality: float = 0.0
    actual_build_cardinality: Optional[float] = None
    actual_probe_cardinality: Optional[float] = None
    actual_output_cardinality: Optional[float] = None
    #: multiplier on the actual fanout relative to the estimate — the
    #: workload's injected estimation error (1.0 = estimates are exact).
    actual_fanout_factor: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise PlanError("join needs a name")
        if set(self.build_relations) & set(self.probe_relations):
            raise PlanError(f"join {self.name}: build and probe sides overlap")
        if not 0.0 < self.crossing_selectivity <= 1.0:
            raise PlanError(f"join {self.name}: crossing selectivity must be "
                            f"in (0, 1], got {self.crossing_selectivity}")
        if self.actual_build_cardinality is None:
            self.actual_build_cardinality = self.estimated_build_cardinality
        if self.actual_probe_cardinality is None:
            self.actual_probe_cardinality = self.estimated_probe_cardinality
        if self.actual_output_cardinality is None:
            self.actual_output_cardinality = self.estimated_output_cardinality

    @property
    def relations(self) -> tuple[str, ...]:
        return self.build_relations + self.probe_relations

    def estimated_fanout(self) -> float:
        """Estimated result tuples per probe-input tuple."""
        return self.crossing_selectivity * self.estimated_build_cardinality

    def actual_fanout(self) -> float:
        """Actual result tuples per probe-input tuple (the simulation truth)."""
        return (self.crossing_selectivity * self.actual_build_cardinality
                * self.actual_fanout_factor)

    def __str__(self) -> str:
        return (f"{self.name}(build={{{','.join(self.build_relations)}}}, "
                f"probe={{{','.join(self.probe_relations)}}})")


@dataclass
class Operator:
    """Base physical operator.

    ``estimated_input_cardinality`` / ``estimated_output_cardinality`` are
    per-execution totals; ``memory_bytes`` is the operator's ``mem(op)``
    annotation used for M-schedulability (Section 4.1).
    """

    name: str
    estimated_input_cardinality: float = 0.0
    estimated_output_cardinality: float = 0.0
    memory_bytes: int = 0

    def selectivity(self) -> float:
        """Output/input ratio (the operator's per-tuple fanout)."""
        if self.estimated_input_cardinality <= 0:
            return 0.0
        return self.estimated_output_cardinality / self.estimated_input_cardinality

    def __str__(self) -> str:
        return self.name


@dataclass
class ScanOp(Operator):
    """Consume tuples from a wrapper (or a temp relation after degradation).

    ``scan_selectivity`` models a local selection applied on arrival; the
    paper ignores it in the bmi formula "for ease of presentation" but the
    operator supports it.
    """

    relation: str = ""
    scan_selectivity: float = 1.0

    def __post_init__(self):
        if not self.relation:
            raise PlanError("scan needs a relation")
        if not 0.0 < self.scan_selectivity <= 1.0:
            raise PlanError(f"scan selectivity must be in (0,1], "
                            f"got {self.scan_selectivity}")


@dataclass
class ProbeOp(Operator):
    """Probe the hash table of ``join`` with incoming tuples (pipelined)."""

    join: Optional[JoinSpec] = None

    def __post_init__(self):
        if self.join is None:
            raise PlanError("probe needs a join spec")


@dataclass
class MatOp(Operator):
    """Materialize incoming tuples.

    Two flavours, as in the paper:

    * ``join`` set — the *hash-table build* feeding that join's blocking
      input; lives in query memory (``memory_bytes`` = table size).
    * ``join`` None — a temp-relation materialization (disk or memory,
      buffer manager decides); used by PC degradation and by the DQO when
      splitting a chain that does not fit in memory.
    """

    join: Optional[JoinSpec] = None

    @property
    def is_hash_build(self) -> bool:
        return self.join is not None


@dataclass
class OutputOp(Operator):
    """Deliver final result tuples to the user (root of the QEP)."""
